//! Cross-crate integration tests: the full pipeline from dataset generation
//! through workloads to the CPU/GPU architecture models.

use graphbig::framework::csr::Csr;
use graphbig::framework::trace::CountingTracer;
use graphbig::gpu::registry::{run_gpu_workload, GpuRunParams};
use graphbig::machine::{CoreModel, CpuConfig};
use graphbig::prelude::*;
use graphbig::workloads::harness::{run_traced, RunParams};
use graphbig::workloads::Workload;

fn small_params() -> RunParams {
    RunParams {
        gibbs_scale: 0.1,
        gibbs_sweeps: 2,
        bcentr_sources: 4,
        ..RunParams::default()
    }
}

#[test]
fn every_workload_runs_on_every_dataset_through_the_machine_model() {
    for d in Dataset::ALL {
        for w in Workload::ALL {
            let mut g = d.generate_with_vertices(150);
            let mut core = CoreModel::new(CpuConfig::small());
            let out = run_traced(w, &mut g, &small_params(), &mut core);
            let c = core.finish();
            assert!(c.instructions > 0, "{w} on {d} traced nothing");
            assert!(c.total_cycles() > 0.0, "{w} on {d} has no cycles");
            let (a, b, f, e) = c.cycles.fractions();
            assert!((a + b + f + e - 1.0).abs() < 1e-9, "{w} on {d} fractions");
            assert!(!out.description.is_empty());
        }
    }
}

#[test]
fn cpu_and_gpu_agree_on_shared_workload_results() {
    let g0 = Dataset::WatsonGene.generate_with_vertices(250);
    let csr = Csr::from_graph(&g0);
    let cfg = GpuConfig::tesla_k40();
    let p = GpuRunParams::default();

    // BFS reachability
    let mut g = g0.clone_topology();
    let cpu_bfs = graphbig::workloads::bfs::run(&mut g, csr.id_of(0));
    let gpu_bfs = run_gpu_workload(Workload::Bfs, &cfg, &csr, &p);
    assert_eq!(cpu_bfs.visited as f64, gpu_bfs.primary_metric);

    // Components
    let mut g = g0.clone_topology();
    let cpu_cc = graphbig::workloads::ccomp::run(&mut g);
    let gpu_cc = run_gpu_workload(Workload::CComp, &cfg, &csr, &p);
    assert_eq!(cpu_cc.components as f64, gpu_cc.primary_metric);

    // Triangles
    let mut g = g0.clone_topology();
    let cpu_tc = graphbig::workloads::tc::run(&mut g);
    let gpu_tc = run_gpu_workload(Workload::Tc, &cfg, &csr, &p);
    assert_eq!(cpu_tc.triangles as f64, gpu_tc.primary_metric);

    // Core decomposition
    let mut g = g0.clone_topology();
    let cpu_kc = graphbig::workloads::kcore::run(&mut g);
    let gpu_kc = run_gpu_workload(Workload::KCore, &cfg, &csr, &p);
    assert_eq!(cpu_kc.max_core as f64, gpu_kc.primary_metric);

    // Coloring
    let mut g = g0.clone_topology();
    let cpu_gc = graphbig::workloads::gcolor::run(&mut g);
    let gpu_gc = run_gpu_workload(Workload::GColor, &cfg, &csr, &p);
    assert_eq!(cpu_gc.colors as f64, gpu_gc.primary_metric);
}

#[test]
fn profiled_runs_are_deterministic() {
    // The event *stream* is deterministic (instructions, branches); cache
    // and TLB figures depend on real heap addresses, which shift between
    // allocations, so those are only required to be close.
    let run_once = || {
        let mut g = Dataset::Ldbc.generate_with_vertices(300);
        let mut core = CoreModel::new(CpuConfig::small());
        run_traced(Workload::Bfs, &mut g, &small_params(), &mut core);
        core.finish()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.branches, b.branches);
    assert_eq!(a.branch.mispredictions, b.branch.mispredictions);
    assert_eq!(a.loads, b.loads);
    let rel = (a.l3.misses as f64 - b.l3.misses as f64).abs() / a.l3.misses.max(1) as f64;
    assert!(
        rel < 0.15,
        "L3 misses drifted {rel}: {} vs {}",
        a.l3.misses,
        b.l3.misses
    );
}

#[test]
fn framework_fraction_matches_figure1_band() {
    // The paper reports an average of 76% in-framework time; traversal
    // workloads through the primitives should land in that neighbourhood.
    let mut g = Dataset::Ldbc.generate_with_vertices(500);
    let mut t = CountingTracer::new();
    run_traced(Workload::Bfs, &mut g, &small_params(), &mut t);
    let f = t.framework_fraction();
    assert!(f > 0.55 && f < 0.98, "framework fraction {f}");
}

#[test]
fn computation_type_ipc_ordering_holds() {
    // Figure 8's headline: IPC(CompProp) > IPC(CompStruct).
    let params = small_params();
    let ipc_of = |w: Workload| {
        let mut g = Dataset::Ldbc.generate_with_vertices(400);
        let mut core = CoreModel::new(CpuConfig::small());
        run_traced(w, &mut g, &params, &mut core);
        core.finish().ipc()
    };
    let gibbs = ipc_of(Workload::Gibbs);
    let bfs = ipc_of(Workload::Bfs);
    let dcentr = ipc_of(Workload::DCentr);
    assert!(
        gibbs > bfs && gibbs > dcentr,
        "CompProp should retire fastest: gibbs {gibbs}, bfs {bfs}, dcentr {dcentr}"
    );
}

#[test]
fn gpu_divergence_structure_holds_on_ldbc() {
    let g = Dataset::Ldbc.generate_with_vertices(1_500);
    let csr = Csr::from_graph(&g);
    let cfg = GpuConfig::tesla_k40();
    let p = GpuRunParams::default();
    let bdr_of = |w| run_gpu_workload(w, &cfg, &csr, &p).metrics.bdr;
    let kcore = bdr_of(Workload::KCore);
    let ccomp = bdr_of(Workload::CComp);
    let bfs = bdr_of(Workload::Bfs);
    let gcolor = bdr_of(Workload::GColor);
    assert!(kcore < bfs, "kCore {kcore} should stay below BFS {bfs}");
    assert!(ccomp < bfs, "edge-centric CComp {ccomp} below BFS {bfs}");
    assert!(
        gcolor > ccomp,
        "GColor {gcolor} is branch-heavy vs CComp {ccomp}"
    );
}

#[test]
fn edge_list_io_round_trips_a_generated_dataset() {
    let g = Dataset::CaRoad.generate_with_vertices(200);
    let mut buf = Vec::new();
    graphbig::datagen::edgelist::write_graph(&g, &mut buf).unwrap();
    let g2 = graphbig::datagen::edgelist::read_graph(buf.as_slice()).unwrap();
    assert_eq!(g2.num_arcs(), g.num_arcs());
    for (u, e) in g.arcs() {
        assert!(g2.has_edge(u, e.target), "lost {u}->{}", e.target);
    }
}

/// Clone-the-topology helper: regenerate a fresh graph with identical
/// structure (properties from workloads are not copied).
trait CloneTopology {
    fn clone_topology(&self) -> PropertyGraph;
}

impl CloneTopology for PropertyGraph {
    fn clone_topology(&self) -> PropertyGraph {
        let mut g = PropertyGraph::with_capacity(self.num_vertices());
        for &id in self.vertex_ids() {
            g.add_vertex_with_id(id).unwrap();
        }
        for (u, e) in self.arcs() {
            g.add_edge(u, e.target, e.weight).unwrap();
        }
        g
    }
}
