//! Property-based tests over cross-crate invariants, on the in-tree
//! harness (`graphbig_datagen::prop`): same invariants as the old proptest
//! suite, same 64-case budget, seeded generation + shrink-by-halving.

use graphbig::framework::coo::Coo;
use graphbig::framework::csr::Csr;
use graphbig::prelude::*;
use graphbig_datagen::prop::{check, Config};
use graphbig_datagen::rng::Rng;

/// Generator: a random edge list over `2..max_n` vertices.
fn edges_case(rng: &mut Rng, max_n: u64, max_m: usize) -> (u64, Vec<(u64, u64)>) {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(0..max_m);
    let edges = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    (n, edges)
}

fn build(n: u64, edges: &[(u64, u64)]) -> PropertyGraph {
    let mut g = PropertyGraph::with_capacity(n as usize);
    for _ in 0..n {
        g.add_vertex();
    }
    for &(u, v) in edges {
        // Shrinking may halve vertex counts below edge endpoints; skip the
        // out-of-range arcs so shrunk cases stay well-formed.
        if u < n && v < n {
            g.add_edge(u, v, 1.0).unwrap();
        }
    }
    g
}

/// Direction-optimizing BFS levels equal the sequential framework BFS on a
/// random graph, for 1-, 2- and 8-thread pools.
fn check_dir_opt_bfs_matches_sequential(n: u64, edges: &[(u64, u64)]) {
    use graphbig::framework::csr::BiCsr;
    use graphbig::runtime::ThreadPool;
    use graphbig::workloads::parallel;

    let mut g = build(n, edges);
    let csr = Csr::from_graph(&g);
    let source = csr.dense_of(0).expect("vertex 0 exists");
    graphbig::workloads::bfs::run(&mut g, 0);
    let seq: Vec<i64> = (0..csr.num_vertices() as u32)
        .map(|u| {
            graphbig::workloads::bfs::level_of(&g, csr.id_of(u))
                .map(|x| x as i64)
                .unwrap_or(-1)
        })
        .collect();
    let bi = BiCsr::directed(csr);
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let (levels, _) = parallel::bfs_dir_opt(&pool, &bi, source);
        assert_eq!(levels, seq, "{threads} threads");
        let (td, _) = parallel::bfs(&pool, bi.out(), source);
        assert_eq!(td, seq, "top-down, {threads} threads");
    }
}

/// Parallel ccomp labels induce the same partition as sequential ccomp on a
/// random graph, for 1-, 2- and 8-thread pools.
fn check_parallel_ccomp_matches_sequential(n: u64, edges: &[(u64, u64)]) {
    use graphbig::runtime::ThreadPool;
    use graphbig::workloads::parallel;

    let mut g = build(n, edges);
    let csr = Csr::from_graph(&g);
    let sym = csr.symmetrize();
    graphbig::workloads::ccomp::run(&mut g);
    let seq: Vec<i64> = (0..csr.num_vertices() as u32)
        .map(|u| graphbig::workloads::ccomp::component_of(&g, csr.id_of(u)).unwrap())
        .collect();
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let par = parallel::ccomp(&pool, &sym);
        // Same partition: pairs agree on "same component" both ways.
        let mut seq_to_par = std::collections::HashMap::new();
        let mut par_to_seq = std::collections::HashMap::new();
        for (i, (&s, &p)) in seq.iter().zip(par.iter()).enumerate() {
            assert_eq!(
                *seq_to_par.entry(s).or_insert(p),
                p,
                "vertex {i}, {threads} threads"
            );
            assert_eq!(
                *par_to_seq.entry(p).or_insert(s),
                s,
                "vertex {i}, {threads} threads"
            );
        }
    }
}

/// Parallel kcore numbers equal the sequential Matula–Beck peeler on a
/// random graph, for 1-, 2- and 8-thread pools.
fn check_parallel_kcore_matches_sequential(n: u64, edges: &[(u64, u64)]) {
    use graphbig::runtime::ThreadPool;
    use graphbig::workloads::parallel;

    let mut g = build(n, edges);
    let csr = Csr::from_graph(&g);
    let sym = csr.symmetrize();
    graphbig::workloads::kcore::run(&mut g);
    let seq: Vec<u32> = (0..csr.num_vertices() as u32)
        .map(|u| graphbig::workloads::kcore::core_of(&g, csr.id_of(u)).unwrap())
        .collect();
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        assert_eq!(parallel::kcore(&pool, &sym), seq, "{threads} threads");
    }
}

#[test]
fn csr_round_trips_topology() {
    check(
        "csr_round_trips_topology",
        Config::with_cases(64),
        |rng| edges_case(rng, 60, 200),
        |(n, edges)| {
            let g = build(*n, edges);
            let csr = Csr::from_graph(&g);
            assert_eq!(csr.num_vertices(), g.num_vertices());
            assert_eq!(csr.num_edges(), g.num_arcs());
            // every graph arc appears in the CSR and vice versa
            for (u, e) in g.arcs() {
                let du = csr.dense_of(u).unwrap();
                let dv = csr.dense_of(e.target).unwrap();
                assert!(csr.neighbors(du).contains(&dv));
            }
            let degree_sum: u64 = (0..csr.num_vertices() as u32)
                .map(|u| csr.degree(u) as u64)
                .sum();
            assert_eq!(degree_sum, g.num_arcs() as u64);
        },
    );
}

#[test]
fn coo_matches_csr() {
    check(
        "coo_matches_csr",
        Config::with_cases(64),
        |rng| edges_case(rng, 40, 120),
        |(n, edges)| {
            let g = build(*n, edges);
            let csr = Csr::from_graph(&g);
            let coo = Coo::from_csr(&csr);
            assert_eq!(coo.num_edges(), csr.num_edges());
            for i in 0..coo.num_edges() {
                let (u, v, _) = coo.edge(i);
                assert!(csr.neighbors(u).contains(&v));
            }
        },
    );
}

#[test]
fn deletion_keeps_graph_consistent() {
    check(
        "deletion_keeps_graph_consistent",
        Config::with_cases(64),
        |rng| {
            let (n, edges) = edges_case(rng, 40, 150);
            (n, edges, rng.gen_range(0u64..1000))
        },
        |(n, edges, seed)| {
            let mut g = build(*n, edges);
            let victims = graphbig::workloads::gup::pick_victims(&g, (*n / 3) as usize, *seed);
            graphbig::workloads::gup::run(&mut g, &victims);
            // arcs never dangle
            let mut arc_count = 0;
            for (u, e) in g.arcs() {
                assert!(g.find_vertex(u).is_some());
                assert!(g.find_vertex(e.target).is_some());
                arc_count += 1;
            }
            assert_eq!(arc_count, g.num_arcs());
            // parent lists mirror arcs
            for &id in g.vertex_ids() {
                for p in g.parents(id) {
                    assert!(g.has_edge(p, id), "parent {p} of {id} has no arc");
                }
            }
        },
    );
}

#[test]
fn bfs_levels_equal_unit_weight_dijkstra() {
    check(
        "bfs_levels_equal_unit_weight_dijkstra",
        Config::with_cases(64),
        |rng| edges_case(rng, 50, 200),
        |(n, edges)| {
            let mut g1 = build(*n, edges);
            let mut g2 = build(*n, edges);
            graphbig::workloads::bfs::run(&mut g1, 0);
            graphbig::workloads::spath::run(&mut g2, 0);
            for v in 0..*n {
                let level = graphbig::workloads::bfs::level_of(&g1, v).map(f64::from);
                let dist = graphbig::workloads::spath::distance_of(&g2, v);
                assert_eq!(level, dist, "vertex {v}");
            }
        },
    );
}

#[test]
fn coloring_is_always_proper() {
    check(
        "coloring_is_always_proper",
        Config::with_cases(64),
        |rng| edges_case(rng, 50, 200),
        |(n, edges)| {
            let mut g = build(*n, edges);
            graphbig::workloads::gcolor::run(&mut g);
            assert!(graphbig::workloads::gcolor::is_valid_coloring(&g));
        },
    );
}

#[test]
fn component_labels_partition() {
    check(
        "component_labels_partition",
        Config::with_cases(64),
        |rng| edges_case(rng, 50, 150),
        |(n, edges)| {
            let mut g = build(*n, edges);
            let r = graphbig::workloads::ccomp::run(&mut g);
            let mut labels = std::collections::HashSet::new();
            for &v in g.vertex_ids() {
                let l = graphbig::workloads::ccomp::component_of(&g, v).unwrap();
                labels.insert(l);
            }
            assert_eq!(labels.len() as u64, r.components);
            for (u, e) in g.arcs() {
                assert_eq!(
                    graphbig::workloads::ccomp::component_of(&g, u),
                    graphbig::workloads::ccomp::component_of(&g, e.target)
                );
            }
        },
    );
}

#[test]
fn moral_graph_marries_all_coparents() {
    check(
        "moral_graph_marries_all_coparents",
        Config::with_cases(64),
        |rng| edges_case(rng, 30, 80),
        |(n, edges)| {
            let g = build(*n, edges);
            let dag = graphbig::workloads::harness::orient_to_dag(&g);
            let (moral, _) = graphbig::workloads::tmorph::run(&dag);
            for &v in dag.vertex_ids() {
                let parents: Vec<_> = dag.parents(v).collect();
                // original edges undirected in the moral graph
                for &p in &parents {
                    assert!(moral.has_edge(p, v) && moral.has_edge(v, p));
                }
                // every pair of parents married
                for i in 0..parents.len() {
                    for j in (i + 1)..parents.len() {
                        if parents[i] != parents[j] {
                            assert!(
                                moral.has_edge(parents[i], parents[j]),
                                "co-parents {} and {} of {} not married",
                                parents[i],
                                parents[j],
                                v
                            );
                        }
                    }
                }
            }
        },
    );
}

#[test]
fn gpu_metrics_stay_in_bounds() {
    check(
        "gpu_metrics_stay_in_bounds",
        Config::with_cases(64),
        |rng| edges_case(rng, 40, 150),
        |(n, edges)| {
            let g = build(*n, edges);
            let csr = Csr::from_graph(&g);
            let cfg = GpuConfig::tesla_k40();
            let r = graphbig::gpu::bfs::run(&cfg, &csr, 0);
            assert!((0.0..=1.0).contains(&r.metrics.bdr));
            assert!((0.0..=1.0).contains(&r.metrics.mdr));
            assert!(r.metrics.read_throughput_gbps <= cfg.peak_bandwidth_gbps);
            assert!(r.metrics.ipc <= cfg.issue_per_sm + 1e-9);
        },
    );
}

#[test]
fn dir_opt_bfs_matches_sequential_on_random_graphs() {
    check(
        "dir_opt_bfs_matches_sequential_on_random_graphs",
        Config::with_cases(64),
        |rng| edges_case(rng, 50, 250),
        |(n, edges)| check_dir_opt_bfs_matches_sequential(*n, edges),
    );
}

#[test]
fn parallel_ccomp_partition_matches_sequential() {
    check(
        "parallel_ccomp_partition_matches_sequential",
        Config::with_cases(64),
        |rng| edges_case(rng, 50, 200),
        |(n, edges)| check_parallel_ccomp_matches_sequential(*n, edges),
    );
}

#[test]
fn parallel_kcore_matches_sequential_on_random_graphs() {
    check(
        "parallel_kcore_matches_sequential_on_random_graphs",
        Config::with_cases(64),
        |rng| edges_case(rng, 40, 180),
        |(n, edges)| check_parallel_kcore_matches_sequential(*n, edges),
    );
}

#[test]
fn kcore_members_have_k_core_neighbors() {
    check(
        "kcore_members_have_k_core_neighbors",
        Config::with_cases(64),
        |rng| edges_case(rng, 40, 150),
        |(n, edges)| {
            let mut g = build(*n, edges);
            let r = graphbig::workloads::kcore::run(&mut g);
            let k = r.max_core;
            // every max-core vertex has >= k neighbors (undirected, dedup) in the max core
            for &v in g.vertex_ids() {
                if graphbig::workloads::kcore::core_of(&g, v) == Some(k) && k > 0 {
                    let mut inside = std::collections::HashSet::new();
                    for e in g.neighbors(v) {
                        if e.target != v
                            && graphbig::workloads::kcore::core_of(&g, e.target)
                                .map(|c| c >= k)
                                .unwrap_or(false)
                        {
                            inside.insert(e.target);
                        }
                    }
                    for p in g.parents(v) {
                        if p != v
                            && graphbig::workloads::kcore::core_of(&g, p)
                                .map(|c| c >= k)
                                .unwrap_or(false)
                        {
                            inside.insert(p);
                        }
                    }
                    assert!(
                        inside.len() as u32 >= k,
                        "vertex {} has {} same-core neighbors, needs {}",
                        v,
                        inside.len(),
                        k
                    );
                }
            }
        },
    );
}
