//! Property-based tests (proptest) over cross-crate invariants.

use graphbig::framework::coo::Coo;
use graphbig::framework::csr::Csr;
use graphbig::prelude::*;
use proptest::prelude::*;

/// Strategy: a random edge list over `n` vertices.
fn edges_strategy(max_n: u64, max_m: usize) -> impl Strategy<Value = (u64, Vec<(u64, u64)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edge = (0..n, 0..n);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

fn build(n: u64, edges: &[(u64, u64)]) -> PropertyGraph {
    let mut g = PropertyGraph::with_capacity(n as usize);
    for _ in 0..n {
        g.add_vertex();
    }
    for &(u, v) in edges {
        g.add_edge(u, v, 1.0).unwrap();
    }
    g
}

/// Direction-optimizing BFS levels equal the sequential framework BFS on a
/// random graph, for 1-, 2- and 8-thread pools.
fn check_dir_opt_bfs_matches_sequential(n: u64, edges: &[(u64, u64)]) {
    use graphbig::framework::csr::BiCsr;
    use graphbig::runtime::ThreadPool;
    use graphbig::workloads::parallel;

    let mut g = build(n, edges);
    let csr = Csr::from_graph(&g);
    let source = csr.dense_of(0).expect("vertex 0 exists");
    graphbig::workloads::bfs::run(&mut g, 0);
    let seq: Vec<i64> = (0..csr.num_vertices() as u32)
        .map(|u| {
            graphbig::workloads::bfs::level_of(&g, csr.id_of(u))
                .map(|x| x as i64)
                .unwrap_or(-1)
        })
        .collect();
    let bi = BiCsr::directed(csr);
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let (levels, _) = parallel::bfs_dir_opt(&pool, &bi, source);
        assert_eq!(levels, seq, "{threads} threads");
        let (td, _) = parallel::bfs(&pool, bi.out(), source);
        assert_eq!(td, seq, "top-down, {threads} threads");
    }
}

/// Parallel ccomp labels induce the same partition as sequential ccomp on a
/// random graph, for 1-, 2- and 8-thread pools.
fn check_parallel_ccomp_matches_sequential(n: u64, edges: &[(u64, u64)]) {
    use graphbig::runtime::ThreadPool;
    use graphbig::workloads::parallel;

    let mut g = build(n, edges);
    let csr = Csr::from_graph(&g);
    let sym = csr.symmetrize();
    graphbig::workloads::ccomp::run(&mut g);
    let seq: Vec<i64> = (0..csr.num_vertices() as u32)
        .map(|u| graphbig::workloads::ccomp::component_of(&g, csr.id_of(u)).unwrap())
        .collect();
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let par = parallel::ccomp(&pool, &sym);
        // Same partition: pairs agree on "same component" both ways.
        let mut seq_to_par = std::collections::HashMap::new();
        let mut par_to_seq = std::collections::HashMap::new();
        for (i, (&s, &p)) in seq.iter().zip(par.iter()).enumerate() {
            assert_eq!(
                *seq_to_par.entry(s).or_insert(p),
                p,
                "vertex {i}, {threads} threads"
            );
            assert_eq!(
                *par_to_seq.entry(p).or_insert(s),
                s,
                "vertex {i}, {threads} threads"
            );
        }
    }
}

/// Parallel kcore numbers equal the sequential Matula–Beck peeler on a
/// random graph, for 1-, 2- and 8-thread pools.
fn check_parallel_kcore_matches_sequential(n: u64, edges: &[(u64, u64)]) {
    use graphbig::runtime::ThreadPool;
    use graphbig::workloads::parallel;

    let mut g = build(n, edges);
    let csr = Csr::from_graph(&g);
    let sym = csr.symmetrize();
    graphbig::workloads::kcore::run(&mut g);
    let seq: Vec<u32> = (0..csr.num_vertices() as u32)
        .map(|u| graphbig::workloads::kcore::core_of(&g, csr.id_of(u)).unwrap())
        .collect();
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        assert_eq!(parallel::kcore(&pool, &sym), seq, "{threads} threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_round_trips_topology((n, edges) in edges_strategy(60, 200)) {
        let g = build(n, &edges);
        let csr = Csr::from_graph(&g);
        prop_assert_eq!(csr.num_vertices(), g.num_vertices());
        prop_assert_eq!(csr.num_edges(), g.num_arcs());
        // every graph arc appears in the CSR and vice versa
        for (u, e) in g.arcs() {
            let du = csr.dense_of(u).unwrap();
            let dv = csr.dense_of(e.target).unwrap();
            prop_assert!(csr.neighbors(du).contains(&dv));
        }
        let degree_sum: u64 = (0..csr.num_vertices() as u32).map(|u| csr.degree(u) as u64).sum();
        prop_assert_eq!(degree_sum, g.num_arcs() as u64);
    }

    #[test]
    fn coo_matches_csr((n, edges) in edges_strategy(40, 120)) {
        let g = build(n, &edges);
        let csr = Csr::from_graph(&g);
        let coo = Coo::from_csr(&csr);
        prop_assert_eq!(coo.num_edges(), csr.num_edges());
        for i in 0..coo.num_edges() {
            let (u, v, _) = coo.edge(i);
            prop_assert!(csr.neighbors(u).contains(&v));
        }
    }

    #[test]
    fn deletion_keeps_graph_consistent((n, edges) in edges_strategy(40, 150), seed in 0u64..1000) {
        let mut g = build(n, &edges);
        let victims = graphbig::workloads::gup::pick_victims(&g, (n / 3) as usize, seed);
        graphbig::workloads::gup::run(&mut g, &victims);
        // arcs never dangle
        let mut arc_count = 0;
        for (u, e) in g.arcs() {
            prop_assert!(g.find_vertex(u).is_some());
            prop_assert!(g.find_vertex(e.target).is_some());
            arc_count += 1;
        }
        prop_assert_eq!(arc_count, g.num_arcs());
        // parent lists mirror arcs
        for &id in g.vertex_ids() {
            for p in g.parents(id) {
                prop_assert!(g.has_edge(p, id), "parent {p} of {id} has no arc");
            }
        }
    }

    #[test]
    fn bfs_levels_equal_unit_weight_dijkstra((n, edges) in edges_strategy(50, 200)) {
        let mut g1 = build(n, &edges);
        let mut g2 = build(n, &edges);
        graphbig::workloads::bfs::run(&mut g1, 0);
        graphbig::workloads::spath::run(&mut g2, 0);
        for v in 0..n {
            let level = graphbig::workloads::bfs::level_of(&g1, v).map(f64::from);
            let dist = graphbig::workloads::spath::distance_of(&g2, v);
            prop_assert_eq!(level, dist, "vertex {}", v);
        }
    }

    #[test]
    fn coloring_is_always_proper((n, edges) in edges_strategy(50, 200)) {
        let mut g = build(n, &edges);
        graphbig::workloads::gcolor::run(&mut g);
        prop_assert!(graphbig::workloads::gcolor::is_valid_coloring(&g));
    }

    #[test]
    fn component_labels_partition((n, edges) in edges_strategy(50, 150)) {
        let mut g = build(n, &edges);
        let r = graphbig::workloads::ccomp::run(&mut g);
        let mut labels = std::collections::HashSet::new();
        for &v in g.vertex_ids() {
            let l = graphbig::workloads::ccomp::component_of(&g, v).unwrap();
            labels.insert(l);
        }
        prop_assert_eq!(labels.len() as u64, r.components);
        for (u, e) in g.arcs() {
            prop_assert_eq!(
                graphbig::workloads::ccomp::component_of(&g, u),
                graphbig::workloads::ccomp::component_of(&g, e.target)
            );
        }
    }

    #[test]
    fn moral_graph_marries_all_coparents((n, edges) in edges_strategy(30, 80)) {
        let g = build(n, &edges);
        let dag = graphbig::workloads::harness::orient_to_dag(&g);
        let (moral, _) = graphbig::workloads::tmorph::run(&dag);
        for &v in dag.vertex_ids() {
            let parents: Vec<_> = dag.parents(v).collect();
            // original edges undirected in the moral graph
            for &p in &parents {
                prop_assert!(moral.has_edge(p, v) && moral.has_edge(v, p));
            }
            // every pair of parents married
            for i in 0..parents.len() {
                for j in (i + 1)..parents.len() {
                    if parents[i] != parents[j] {
                        prop_assert!(
                            moral.has_edge(parents[i], parents[j]),
                            "co-parents {} and {} of {} not married",
                            parents[i], parents[j], v
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gpu_metrics_stay_in_bounds((n, edges) in edges_strategy(40, 150)) {
        let g = build(n, &edges);
        let csr = Csr::from_graph(&g);
        let cfg = GpuConfig::tesla_k40();
        let r = graphbig::gpu::bfs::run(&cfg, &csr, 0);
        prop_assert!((0.0..=1.0).contains(&r.metrics.bdr));
        prop_assert!((0.0..=1.0).contains(&r.metrics.mdr));
        prop_assert!(r.metrics.read_throughput_gbps <= cfg.peak_bandwidth_gbps);
        prop_assert!(r.metrics.ipc <= cfg.issue_per_sm + 1e-9);
    }

    #[test]
    fn dir_opt_bfs_matches_sequential_on_random_graphs((n, edges) in edges_strategy(50, 250)) {
        check_dir_opt_bfs_matches_sequential(n, &edges);
    }

    #[test]
    fn parallel_ccomp_partition_matches_sequential((n, edges) in edges_strategy(50, 200)) {
        check_parallel_ccomp_matches_sequential(n, &edges);
    }

    #[test]
    fn parallel_kcore_matches_sequential_on_random_graphs((n, edges) in edges_strategy(40, 180)) {
        check_parallel_kcore_matches_sequential(n, &edges);
    }

    #[test]
    fn kcore_members_have_k_core_neighbors((n, edges) in edges_strategy(40, 150)) {
        let mut g = build(n, &edges);
        let r = graphbig::workloads::kcore::run(&mut g);
        let k = r.max_core;
        // every max-core vertex has >= k neighbors (undirected, dedup) in the max core
        for &v in g.vertex_ids() {
            if graphbig::workloads::kcore::core_of(&g, v) == Some(k) && k > 0 {
                let mut inside = std::collections::HashSet::new();
                for e in g.neighbors(v) {
                    if e.target != v
                        && graphbig::workloads::kcore::core_of(&g, e.target).map(|c| c >= k).unwrap_or(false)
                    {
                        inside.insert(e.target);
                    }
                }
                for p in g.parents(v) {
                    if p != v
                        && graphbig::workloads::kcore::core_of(&g, p).map(|c| c >= k).unwrap_or(false)
                    {
                        inside.insert(p);
                    }
                }
                prop_assert!(
                    inside.len() as u32 >= k,
                    "vertex {} has {} same-core neighbors, needs {}",
                    v, inside.len(), k
                );
            }
        }
    }
}
