#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint, format — fully offline.
#
# The workspace has no external dependencies (see
# scripts/check_hermetic.sh), so every cargo invocation runs with
# --locked --offline: CI fails if a registry dependency or an
# out-of-date Cargo.lock ever sneaks in.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--locked --offline)

echo "==> cargo build --release"
cargo build "${CARGO_FLAGS[@]}" --workspace --release

echo "==> cargo test -q"
cargo test "${CARGO_FLAGS[@]}" --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> hermetic dependency check"
scripts/check_hermetic.sh --fast

echo "==> engine serving smoke (LDBC-4k, 200-request mix, sequential oracle)"
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-engine --bin graphbig-serve -- \
  --vertices 4096 --mix traffic/smoke_200.json --oracle --quiet --emit /tmp/engine_smoke.json
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-bench --bin graphbig-report -- \
  --check results/golden_engine.json /tmp/engine_smoke.json

echo "==> chaos smoke (same mix under the committed fault plan, oracle + invariants)"
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-engine --features chaos --bin graphbig-serve -- \
  --vertices 4096 --mix traffic/smoke_200.json --faults traffic/faults_smoke.json \
  --oracle --quiet --emit /tmp/chaos_smoke.json
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-bench --bin graphbig-report -- \
  --check results/golden_chaos.json /tmp/chaos_smoke.json

echo "==> mutation drill (LDBC-4k mixed read/write mix, rebuild oracle, slow compaction)"
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-engine --features chaos --bin graphbig-serve -- \
  --vertices 4096 --mix traffic/mutate_200.json --faults traffic/faults_compact.json \
  --compact-threshold 40 --oracle --quiet --emit /tmp/mutation_drill.json
for key in '"mutation_oracle"' '"engine.mutations"' '"engine.compact.started"' \
           '"engine.completed.write"' '"chaos.invariants.mutations_sequenced"' \
           '"chaos.invariants.compaction_balanced"'; do
  grep -q "$key" /tmp/mutation_drill.json \
    || { echo "mutation drill manifest missing $key"; exit 1; }
done

echo "==> live SLO stats line (structure check on the graphbig.stats/v1 snapshot)"
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-engine --bin graphbig-serve -- \
  --vertices 4096 --mix traffic/smoke_200.json --stats-interval 50 --quiet \
  > /tmp/stats_lines.txt
grep -m1 '"schema":"graphbig.stats/v1"' /tmp/stats_lines.txt > /tmp/stats_line.json
for key in t_ms queue_depth in_flight_cost lanes p50_us p99_us p999_us ewma_us \
           p99_target_us p999_target_us; do
  grep -q "\"$key\"" /tmp/stats_line.json || { echo "stats line missing key: $key"; exit 1; }
done

echo "==> cache-coherence drill (hot mix, mid-mix republishes, sequential oracle)"
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-engine --features chaos --bin graphbig-serve -- \
  --vertices 4096 --mix traffic/hot_200.json --faults traffic/faults_republish.json \
  --oracle --quiet --emit /tmp/cache_drill.json
grep -q '"engine.cache.hit"' /tmp/cache_drill.json \
  || { echo "cache drill produced no cache-hit counter"; exit 1; }

echo "==> shared-traversal batching drill (BFS-heavy mix, coalesced MS-BFS, sequential oracle)"
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-engine --bin graphbig-serve -- \
  --vertices 4096 --mix traffic/batch_heavy.json --oracle --quiet --emit /tmp/batch_drill.json
for key in '"engine.batch.size"' '"engine.batch.coalesce_us"' '"batch_max"'; do
  grep -q "$key" /tmp/batch_drill.json \
    || { echo "batching drill manifest missing $key"; exit 1; }
done

echo "==> SLO gate drill (1us targets must fail graphbig-report --check)"
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-engine --bin graphbig-serve -- \
  --vertices 4096 --mix traffic/smoke_200.json --slo traffic/slo_tight.json \
  --oracle --quiet --emit /tmp/slo_regressed.json
if cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-bench --bin graphbig-report -- \
  --check results/golden_engine.json /tmp/slo_regressed.json; then
  echo "error: a manifest with missed SLO targets must fail --check"
  exit 1
fi

echo "==> flight recorder violation drill (injected double resolve must fail + dump)"
rm -f /tmp/flight_violation.json
if cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-engine --features chaos --bin graphbig-serve -- \
  --vertices 4096 --mix traffic/smoke_200.json --faults traffic/faults_violation.json \
  --quiet --flight-dump /tmp/flight_violation.json; then
  echo "error: a double-resolve fault plan must exit non-zero"
  exit 1
fi
for kind in double_resolve admit enqueue dequeue run resolve; do
  grep -q "\"$kind\"" /tmp/flight_violation.json \
    || { echo "flight dump missing $kind events"; exit 1; }
done

echo "==> flight recorder overhead (dir-opt BFS LDBC-64k, <=5% over paused)"
cargo bench "${CARGO_FLAGS[@]}" -p graphbig-bench --bench flight_recorder_overhead -- \
  --assert-overhead-pct=5 --emit /tmp/flight_overhead.json

echo "CI OK"
