#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint, format.
#
# Usage: scripts/ci.sh [--offline]
#   --offline is forwarded to every cargo invocation (vendored/patched
#   dependency environments).
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
if [[ "${1:-}" == "--offline" ]]; then
  OFFLINE=(--offline)
fi

echo "==> cargo build --release"
cargo build "${OFFLINE[@]}" --workspace --release

echo "==> cargo test -q"
cargo test "${OFFLINE[@]}" --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy "${OFFLINE[@]}" --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
