#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint, format — fully offline.
#
# The workspace has no external dependencies (see
# scripts/check_hermetic.sh), so every cargo invocation runs with
# --locked --offline: CI fails if a registry dependency or an
# out-of-date Cargo.lock ever sneaks in.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--locked --offline)

echo "==> cargo build --release"
cargo build "${CARGO_FLAGS[@]}" --workspace --release

echo "==> cargo test -q"
cargo test "${CARGO_FLAGS[@]}" --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> hermetic dependency check"
scripts/check_hermetic.sh --fast

echo "==> engine serving smoke (LDBC-4k, 200-request mix, sequential oracle)"
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-engine --bin graphbig-serve -- \
  --vertices 4096 --mix traffic/smoke_200.json --oracle --quiet --emit /tmp/engine_smoke.json
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-bench --bin graphbig-report -- \
  --check results/golden_engine.json /tmp/engine_smoke.json

echo "==> chaos smoke (same mix under the committed fault plan, oracle + invariants)"
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-engine --features chaos --bin graphbig-serve -- \
  --vertices 4096 --mix traffic/smoke_200.json --faults traffic/faults_smoke.json \
  --oracle --quiet --emit /tmp/chaos_smoke.json
cargo run "${CARGO_FLAGS[@]}" --release -p graphbig-bench --bin graphbig-report -- \
  --check results/golden_chaos.json /tmp/chaos_smoke.json

echo "CI OK"
