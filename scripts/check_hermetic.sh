#!/usr/bin/env bash
# Hermetic-build gate: the workspace must build, test, and resolve with
# ZERO packages from outside the repository.
#
# Two checks:
#   1. `cargo metadata` over the locked dependency graph: every resolved
#      package must be a `graphbig*` workspace member (path dependency).
#   2. A from-clean-target `cargo build --locked --offline` of every
#      target (libs, bins, tests, benches, examples): proves nothing in
#      the build needs the network or a pre-populated registry cache.
#
# Usage: scripts/check_hermetic.sh [--fast]
#   --fast skips the clean-target rebuild (check 2) for quick local runs;
#   CI always runs both.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> check 1: dependency closure is workspace-only"
META="$(mktemp)"
cargo metadata --format-version 1 --locked --offline > "$META"
python3 - "$META" <<'PY'
import json, sys
meta = json.load(open(sys.argv[1]))
workspace = set(meta["workspace_members"])
bad = []
for pkg in meta["packages"]:
    name, version, source = pkg["name"], pkg["version"], pkg.get("source")
    if pkg["id"] not in workspace:
        bad.append("%s %s (source: %s)" % (name, version, source))
    elif source is not None:
        bad.append("%s %s resolved from %s" % (name, version, source))
if bad:
    print("non-workspace packages in the dependency graph:")
    for b in bad:
        print("  -", b)
    sys.exit(1)
print("OK: %d packages, all workspace members" % len(meta["packages"]))
PY
rm -f "$META"

echo "==> cargo tree (for the log)"
cargo tree --locked --offline --workspace --edges normal,build,dev --depth 1

if [[ "${1:-}" == "--fast" ]]; then
  echo "==> check 2 skipped (--fast)"
  echo "HERMETIC OK (fast)"
  exit 0
fi

echo "==> check 2: offline build from a clean target directory"
CLEAN_TARGET="$(mktemp -d)"
trap 'rm -rf "$CLEAN_TARGET"' EXIT
CARGO_TARGET_DIR="$CLEAN_TARGET" cargo build --locked --offline --workspace --all-targets

echo "HERMETIC OK"
