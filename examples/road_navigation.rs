//! Route planning on a road network: the paper's man-made-network use case
//! with the SPath (Dijkstra) workload.
//!
//! Generates a CA-road-like perturbed grid, computes shortest routes from a
//! depot intersection, and reports reachability and route lengths — then
//! morphs a DAG view of the network (TMorph) to show the dynamic-graph
//! pipeline.
//!
//! Run with: `cargo run --release --example road_navigation [vertices]`

use graphbig::prelude::*;
use graphbig::workloads::harness::orient_to_dag;
use graphbig::workloads::{spath, tmorph};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    println!("generating road network with {n} intersections ...");
    let mut g = Dataset::CaRoad.generate_with_vertices(n);
    let stats = GraphStats::compute(&g);
    println!("  {stats}");

    // -- single-source shortest routes --------------------------------------
    let depot = g.vertex_ids()[0];
    let r = spath::run(&mut g, depot);
    println!(
        "\nDijkstra from depot {depot}: {} intersections reachable, farthest route {:.1} km",
        r.reached, r.max_distance
    );

    // route length distribution
    let mut reached: Vec<f64> = g
        .vertex_ids()
        .iter()
        .filter_map(|&v| spath::distance_of(&g, v))
        .collect();
    reached.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !reached.is_empty() {
        let pct = |p: f64| reached[((reached.len() - 1) as f64 * p) as usize];
        println!(
            "route length percentiles: p50 {:.1}  p90 {:.1}  p99 {:.1}",
            pct(0.50),
            pct(0.90),
            pct(0.99)
        );
    }

    // -- find the best-connected interchange --------------------------------
    let hub = g
        .vertex_ids()
        .iter()
        .copied()
        .max_by_key(|&v| g.out_degree(v).unwrap_or(0))
        .unwrap();
    println!(
        "\nbusiest interchange: {hub} with {} roads",
        g.out_degree(hub).unwrap()
    );

    // -- TMorph: moralize a one-way (DAG) view of the network ---------------
    let dag = orient_to_dag(&g);
    let (moral, m) = tmorph::run(&dag);
    println!(
        "\nTMorph on the one-way DAG view: {} moral edges ({} parent marriages), {} vertices",
        m.moral_edges,
        m.marriages,
        moral.num_vertices()
    );
}
