//! Quickstart: the vertex-centric property graph in five minutes.
//!
//! Builds a small property graph through the framework primitives, attaches
//! rich properties, runs BFS, and shows the two data representations of the
//! paper's Figure 2 — the dynamic vertex-centric structure and its static
//! CSR snapshot.
//!
//! Run with: `cargo run --example quickstart`

use graphbig::prelude::*;

fn main() {
    // -- build a graph through framework primitives ----------------------
    let mut g = PropertyGraph::new();
    let alice = g.add_vertex();
    let bob = g.add_vertex();
    let carol = g.add_vertex();
    let dave = g.add_vertex();

    g.set_vertex_prop(
        alice,
        graphbig::framework::property::keys::LABEL,
        Property::Text("alice".into()),
    )
    .unwrap();
    g.set_vertex_prop(
        bob,
        graphbig::framework::property::keys::LABEL,
        Property::Text("bob".into()),
    )
    .unwrap();

    g.add_edge(alice, bob, 1.0).unwrap();
    g.add_edge(alice, carol, 2.0).unwrap();
    g.add_edge(bob, dave, 1.0).unwrap();
    g.add_edge(carol, dave, 1.0).unwrap();

    println!("built {:?}", g);
    println!("alice's out-degree: {}", g.out_degree(alice).unwrap());
    println!("dave's parents: {:?}", g.parents(dave).collect::<Vec<_>>());

    // -- the vertex-centric representation (Figure 2c) -------------------
    println!("\nvertex-centric layout (per-vertex structures):");
    for v in g.vertices() {
        let label = v
            .props
            .get(graphbig::framework::property::keys::LABEL)
            .and_then(|p| p.as_text())
            .unwrap_or("-");
        let out: Vec<_> = v.out.iter().map(|e| e.target).collect();
        println!(
            "  vertex {} [{label}]: out {:?}, in-degree {}",
            v.id,
            out,
            v.in_degree()
        );
    }

    // -- the CSR snapshot (Figure 2b) -------------------------------------
    let csr = Csr::from_graph(&g);
    println!("\nCSR snapshot ({} bytes on device):", csr.byte_size());
    println!("  row offsets: {:?}", csr.row_offsets());
    println!("  columns:     {:?}", csr.col_indices());

    // -- run a workload ----------------------------------------------------
    let r = graphbig::workloads::bfs::run(&mut g, alice);
    println!(
        "\nBFS from alice: visited {} vertices, depth {}",
        r.visited, r.max_level
    );
    for v in [alice, bob, carol, dave] {
        println!(
            "  level of {v}: {:?}",
            graphbig::workloads::bfs::level_of(&g, v)
        );
    }

    // -- delete a vertex: the dynamic part --------------------------------
    g.delete_vertex(bob).unwrap();
    println!("\nafter deleting bob: {:?}", g);
    assert!(g.parents(dave).all(|p| p != bob));
    println!(
        "dave's remaining parents: {:?}",
        g.parents(dave).collect::<Vec<_>>()
    );
}
