//! Persisting graphs: binary snapshots and text edge lists.
//!
//! Generates a dataset, runs a workload that attaches result properties,
//! saves the enriched graph to a binary snapshot, reloads it, and verifies
//! the results survived — plus a round-trip through the SNAP-style text
//! edge-list format for interchange with other tools.
//!
//! Run with: `cargo run --release --example graph_persistence [vertices]`

use graphbig::datagen::edgelist;
use graphbig::framework::snapshot;
use graphbig::prelude::*;
use graphbig::workloads::{ccomp, dcentr};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    println!("generating watson-gene-like graph with {n} vertices ...");
    let mut g = Dataset::WatsonGene.generate_with_vertices(n);

    // enrich with analysis results
    let cc = ccomp::run(&mut g);
    let dc = dcentr::run(&mut g);
    println!(
        "analyzed: {} components, top centrality {:.4} at vertex {}",
        cc.components, dc.max_centrality, dc.max_vertex
    );

    // -- binary snapshot: everything survives -----------------------------
    let bytes = snapshot::save(&g);
    println!(
        "\nbinary snapshot: {} bytes ({:.1} B/arc)",
        bytes.len(),
        bytes.len() as f64 / g.num_arcs() as f64
    );
    let restored = snapshot::load(&bytes).expect("snapshot round-trips");
    assert_eq!(restored.num_vertices(), g.num_vertices());
    assert_eq!(restored.num_arcs(), g.num_arcs());
    let c0 = graphbig::workloads::ccomp::component_of(&restored, dc.max_vertex);
    assert_eq!(
        c0,
        graphbig::workloads::ccomp::component_of(&g, dc.max_vertex),
        "analysis properties survive the snapshot"
    );
    println!("restored graph matches, including per-vertex analysis properties.");

    // -- text edge list: topology-only interchange ------------------------
    let mut text = Vec::new();
    edgelist::write_graph(&g, &mut text).expect("write edge list");
    println!("\ntext edge list: {} bytes; first lines:", text.len());
    for line in String::from_utf8_lossy(&text).lines().take(4) {
        println!("  {line}");
    }
    let reparsed = edgelist::read_graph(text.as_slice()).expect("parse edge list");
    assert_eq!(reparsed.num_arcs(), g.num_arcs());
    println!(
        "re-parsed {} arcs — ready for exchange with SNAP-style tools.",
        reparsed.num_arcs()
    );
}
