//! Social-network analysis on an LDBC-like graph: the paper's "social
//! analysis" category end to end.
//!
//! Generates a synthetic social network, then finds influencers (degree +
//! betweenness centrality), communities (weakly connected components) and a
//! schedule coloring — all through the framework API.
//!
//! Run with: `cargo run --release --example social_analysis [vertices]`

use graphbig::prelude::*;
use graphbig::workloads::{bcentr, ccomp, dcentr, gcolor};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    println!("generating LDBC-like social graph with {n} persons ...");
    let mut g = Dataset::Ldbc.generate_with_vertices(n);
    println!("  {:?}", g);
    let stats = GraphStats::compute(&g);
    println!("  {stats}");

    // -- influencers -------------------------------------------------------
    let d = dcentr::run(&mut g);
    println!(
        "\nmost connected person: vertex {} (degree centrality {:.4})",
        d.max_vertex, d.max_centrality
    );
    let b = bcentr::run(&mut g, 16);
    println!(
        "most *between* person (16-source Brandes): vertex {} (score {:.1})",
        b.max_vertex, b.max_centrality
    );

    // -- communities --------------------------------------------------------
    let c = ccomp::run(&mut g);
    println!(
        "\ncommunities: {} weakly connected components, largest has {} members ({:.1}% of the network)",
        c.components,
        c.largest,
        c.largest as f64 / n as f64 * 100.0
    );

    // -- conflict-free scheduling ------------------------------------------
    let col = gcolor::run(&mut g);
    println!(
        "\nLuby-Jones coloring: {} colors in {} rounds (schedule any same-color set concurrently)",
        col.colors, col.rounds
    );
    assert!(gcolor::is_valid_coloring(&g), "coloring must be proper");

    // -- top-5 by degree centrality -----------------------------------------
    let mut scored: Vec<(VertexId, f64)> = g
        .vertex_ids()
        .iter()
        .filter_map(|&v| dcentr::centrality_of(&g, v).map(|c| (v, c)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 influencers by degree centrality:");
    for (v, c) in scored.iter().take(5) {
        println!("  vertex {v}: {c:.4}");
    }
}
