//! GPU characterization in miniature: run the 8 GPU workloads on a dataset
//! through the SIMT model and print the nvprof-style readout — a live view
//! of the paper's Figures 10 and 11.
//!
//! Run with: `cargo run --release --example gpu_divergence [vertices] [dataset]`
//! where dataset is one of: twitter knowledge watson roadnet ldbc

use graphbig::framework::csr::Csr;
use graphbig::gpu::registry::{run_gpu_workload, GpuRunParams};
use graphbig::prelude::*;
use graphbig::workloads::Workload;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    let dataset = match std::env::args().nth(2).as_deref() {
        Some("twitter") => Dataset::Twitter,
        Some("knowledge") => Dataset::KnowledgeRepo,
        Some("watson") => Dataset::WatsonGene,
        Some("roadnet") => Dataset::CaRoad,
        _ => Dataset::Ldbc,
    };
    println!("dataset {dataset} with {n} vertices on the modeled Tesla K40\n");
    let g = dataset.generate_with_vertices(n);
    let csr = Csr::from_graph(&g);
    let cfg = GpuConfig::tesla_k40();

    println!(
        "{:>8}  {:>6}  {:>6}  {:>10}  {:>9}  {:>8}  {:>10}",
        "workload", "BDR", "MDR", "read GB/s", "IPC", "time ms", "result"
    );
    for w in Workload::gpu_workloads() {
        let r = run_gpu_workload(w, &cfg, &csr, &GpuRunParams::default());
        println!(
            "{:>8}  {:>6.3}  {:>6.3}  {:>10.2}  {:>9.3}  {:>8.3}  {:>10}",
            w.short_name(),
            r.metrics.bdr,
            r.metrics.mdr,
            r.metrics.read_throughput_gbps,
            r.metrics.ipc,
            r.metrics.time_ms,
            r.primary_metric
        );
    }
    println!("\nhigh BDR = warp lanes idled by degree imbalance; high MDR = scattered 128-byte transactions.");
    println!(
        "Compare thread-centric (BFS, DCentr, GColor) against edge-centric (CComp, TC) designs."
    );
}
