//! Document recommendation over a bipartite knowledge repository — the
//! paper's IBM Knowledge Repo use case ("a document recommendation system
//! used by IBM internally").
//!
//! Generates the bipartite user–document access graph and recommends
//! documents to a user by two-hop co-access counts: documents opened by
//! users who opened the same documents as the target user.
//!
//! Run with: `cargo run --release --example knowledge_recommender [vertices]`

use std::collections::HashMap;

use graphbig::datagen::knowledge::{generate, KnowledgeConfig};
use graphbig::framework::property::keys;
use graphbig::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let cfg = KnowledgeConfig::with_vertices(n);
    println!(
        "generating knowledge repo: {} users, {} documents ...",
        cfg.num_users(),
        cfg.num_docs()
    );
    let g = generate(&cfg);
    println!("  {:?}", g);

    // pick the most active user
    let user = g
        .vertex_ids()
        .iter()
        .copied()
        .filter(|&v| is_user(&g, v))
        .max_by_key(|&v| g.out_degree(v).unwrap_or(0))
        .expect("graph has users");
    let my_docs: Vec<VertexId> = g.neighbors(user).map(|e| e.target).collect();
    println!("\ntarget user {user} accessed {} documents", my_docs.len());

    // two-hop co-access scoring: my docs -> their other readers -> docs
    let mut scores: HashMap<VertexId, u64> = HashMap::new();
    for &doc in &my_docs {
        for reader in g.parents(doc) {
            if reader == user {
                continue;
            }
            for e in g.neighbors(reader) {
                if !my_docs.contains(&e.target) {
                    *scores.entry(e.target).or_insert(0) += 1;
                }
            }
        }
    }
    let mut ranked: Vec<(VertexId, u64)> = scores.into_iter().collect();
    ranked.sort_by_key(|&(d, s)| (std::cmp::Reverse(s), d));

    println!("top-10 recommended documents (by co-access):");
    for (doc, score) in ranked.iter().take(10) {
        println!(
            "  doc {doc} (popularity {}): co-access score {score}",
            g.find_vertex(*doc).map(|v| v.in_degree()).unwrap_or(0)
        );
    }

    // information-network feature check (Table 2): large 2-hop neighborhoods
    let two_hop: std::collections::HashSet<VertexId> =
        my_docs.iter().flat_map(|&d| g.parents(d)).collect();
    println!(
        "\nthe user's 2-hop neighborhood spans {} other readers — the 'large small-hop neighbourhood' feature of information networks",
        two_hop.len()
    );
}

fn is_user(g: &PropertyGraph, v: VertexId) -> bool {
    g.get_vertex_prop(v, keys::LABEL)
        .and_then(|p| p.as_text())
        .map(|t| t == "user")
        .unwrap_or(false)
}
