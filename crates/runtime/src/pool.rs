//! A persistent SPMD thread pool.
//!
//! Workers are spawned once and parked on their channel; each parallel
//! region broadcasts one job to every worker and waits on a latch. This
//! keeps per-region overhead at two atomic operations per worker — cheap
//! enough to call inside iterative graph algorithms (level-synchronous BFS
//! runs one region per frontier level).

use std::any::Any;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use graphbig_telemetry::metrics::{HistogramSnapshot, MetricSink};

/// Completion latch: counts worker finishes and wakes the submitting thread.
/// A panic inside a region job is caught by the worker, parked in `payload`,
/// and re-thrown on the broadcasting thread after the region completes — a
/// worker panic must never hang the latch or kill the pool.
struct Latch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    condvar: Condvar,
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            mutex: Mutex::new(()),
            condvar: Condvar::new(),
            payload: Mutex::new(None),
        }
    }

    /// Park the first panic payload for the waiter; later ones are dropped.
    fn poison(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.payload.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(payload);
    }

    fn take_poison(&self) -> Option<Box<dyn Any + Send>> {
        self.payload
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    fn count_down(&self) {
        // Release pairs with the Acquire in `wait`: everything the worker
        // wrote is visible to the waiter once it observes zero.
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            let _guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
            self.condvar.notify_all();
        }
    }

    fn wait(&self) {
        let mut guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.condvar.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

type Job = Arc<dyn Fn(usize) + Send + Sync>;

enum Msg {
    Run(Job, Arc<Latch>),
    Exit,
}

/// Always-on lightweight pool accounting: broadcast regions, per-worker
/// dynamic-scheduler chunk grabs, and per-worker busy time. A few relaxed
/// atomics per region keep this cheap enough to leave unconditional; the
/// numbers feed [`ThreadPool::export_metrics`] and the run manifest.
#[derive(Debug)]
pub struct PoolStats {
    regions: AtomicU64,
    worker_panics: AtomicU64,
    chunks: Vec<AtomicU64>,
    busy_us: Vec<AtomicU64>,
    created: Instant,
}

impl PoolStats {
    fn new(threads: usize) -> Self {
        PoolStats {
            regions: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            chunks: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            busy_us: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            created: Instant::now(),
        }
    }

    /// Panics caught inside region jobs (each is re-thrown on the
    /// broadcasting thread; the worker itself survives).
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Count one dynamic-scheduler chunk executed by `worker` (called by
    /// the `parfor` loops).
    #[inline]
    pub fn record_chunk(&self, worker: usize) {
        self.chunks[worker].fetch_add(1, Ordering::Relaxed);
    }

    /// Broadcast regions executed so far.
    pub fn regions(&self) -> u64 {
        self.regions.load(Ordering::Relaxed)
    }

    /// Chunks executed by `worker` so far.
    pub fn chunks_of(&self, worker: usize) -> u64 {
        self.chunks[worker].load(Ordering::Relaxed)
    }

    /// Total chunks executed across all workers.
    pub fn total_chunks(&self) -> u64 {
        self.chunks.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Fraction of worker-seconds spent inside regions since pool
    /// creation (1.0 = every worker busy the whole time).
    pub fn utilization(&self) -> f64 {
        let wall_us = self.created.elapsed().as_micros() as f64;
        if wall_us <= 0.0 || self.busy_us.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.busy_us.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        (busy as f64 / (wall_us * self.busy_us.len() as f64)).min(1.0)
    }
}

/// A fixed-size pool of long-lived workers executing SPMD regions.
pub struct ThreadPool {
    senders: Vec<Sender<Msg>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<PoolStats>,
}

impl ThreadPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let stats = Arc::new(PoolStats::new(threads));
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker_idx in 0..threads {
            let (tx, rx) = channel::<Msg>();
            senders.push(tx);
            let stats = Arc::clone(&stats);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("graphbig-worker-{worker_idx}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                Msg::Run(job, latch) => {
                                    let t0 = Instant::now();
                                    // A panicking job must not kill the
                                    // worker or strand the latch: catch,
                                    // park the payload, and let `broadcast`
                                    // re-throw it on the caller's thread.
                                    let result = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| {
                                            let _region = graphbig_telemetry::span!("pool.region");
                                            job(worker_idx);
                                        }),
                                    );
                                    if let Err(payload) = result {
                                        stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                                        latch.poison(payload);
                                    }
                                    stats.busy_us[worker_idx].fetch_add(
                                        t0.elapsed().as_micros() as u64,
                                        Ordering::Relaxed,
                                    );
                                    latch.count_down();
                                }
                                Msg::Exit => break,
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }
        ThreadPool {
            senders,
            handles,
            stats,
        }
    }

    /// The pool's always-on accounting (regions, chunks, busy time).
    #[inline]
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Serialize pool state into any [`MetricSink`] under the
    /// `runtime.pool.*` schema: region/chunk counters, the chunk
    /// distribution across workers as a log₂ histogram, and utilization.
    pub fn export_metrics(&self, sink: &mut dyn MetricSink) {
        let stats = self.stats();
        sink.gauge("runtime.pool.threads", self.threads() as f64);
        sink.counter("runtime.pool.regions", stats.regions());
        sink.counter("runtime.pool.chunks", stats.total_chunks());
        sink.counter("runtime.pool.worker_panics", stats.worker_panics());
        sink.gauge("runtime.pool.utilization", stats.utilization());
        let mut buckets: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut sum = 0u64;
        for w in 0..self.threads() {
            let c = stats.chunks_of(w);
            sum += c;
            let le = if c == 0 {
                1
            } else {
                1u64 << graphbig_telemetry::metrics::bucket_index(c).min(63)
            };
            *buckets.entry(le).or_default() += 1;
        }
        sink.histogram(
            "runtime.pool.chunks_per_worker",
            HistogramSnapshot {
                count: self.threads() as u64,
                sum,
                buckets: buckets.into_iter().collect(),
            },
        );
    }

    /// Number of workers.
    #[inline]
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Run `f(worker_index)` on every worker simultaneously and wait for all
    /// of them to finish (an SPMD region).
    ///
    /// If any worker's job panics, the first panic payload is re-thrown here
    /// on the broadcasting thread *after* the region has fully completed —
    /// the workers themselves survive and the pool stays usable.
    ///
    /// # Panics
    /// Re-throws the first panic raised inside `f`, and panics under the
    /// chaos `runtime.pool.region` failpoint when a `Panic` fault fires.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if let Some(fault) = graphbig_chaos::failpoint!("runtime.pool.region") {
            if fault.is_panic() {
                panic!("{} at runtime.pool.region", graphbig_chaos::PANIC_MSG);
            }
        }
        // The channel's job type is 'static, but callers want to borrow
        // stack state. Erase the closure's lifetime and rely on the latch:
        // `broadcast` does not return until every worker has finished, so
        // the borrow is live for every dereference.
        struct SendRef(&'static (dyn Fn(usize) + Sync));
        unsafe impl Send for SendRef {}
        unsafe impl Sync for SendRef {}

        self.stats.regions.fetch_add(1, Ordering::Relaxed);
        let latch = Arc::new(Latch::new(self.senders.len()));
        // SAFETY: lifetime erasure justified by the latch wait below.
        let f_erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(&f as &(dyn Fn(usize) + Sync)) };
        let shared = Arc::new(SendRef(f_erased));
        for tx in &self.senders {
            let shared = Arc::clone(&shared);
            let job: Job = Arc::new(move |idx| (shared.0)(idx));
            tx.send(Msg::Run(job, Arc::clone(&latch)))
                .expect("worker channel open");
        }
        latch.wait();
        if let Some(payload) = latch.take_poison() {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Exit);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_on_every_worker() {
        let pool = ThreadPool::new(4);
        let hits = AtomicU64::new(0);
        pool.broadcast(|idx| {
            assert!(idx < 4);
            hits.fetch_add(1 << (idx * 8), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0x0101_0101);
    }

    #[test]
    fn broadcast_waits_for_completion() {
        let pool = ThreadPool::new(3);
        let sum = AtomicU64::new(0);
        pool.broadcast(|_| {
            for _ in 0..1000 {
                sum.fetch_add(1, Ordering::Relaxed);
            }
        });
        // all increments must be visible after broadcast returns
        assert_eq!(sum.load(Ordering::Relaxed), 3000);
    }

    #[test]
    fn sequential_regions_reuse_workers() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.broadcast(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let ran = AtomicU64::new(0);
        pool.broadcast(|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_count_regions_and_export_schema() {
        let pool = ThreadPool::new(3);
        for _ in 0..5 {
            pool.broadcast(|w| pool.stats().record_chunk(w));
        }
        assert_eq!(pool.stats().regions(), 5);
        assert_eq!(pool.stats().total_chunks(), 15);
        let mut sink: std::collections::BTreeMap<String, graphbig_telemetry::MetricValue> =
            Default::default();
        pool.export_metrics(&mut sink);
        use graphbig_telemetry::MetricValue;
        assert_eq!(sink["runtime.pool.regions"], MetricValue::Counter(5));
        assert_eq!(sink["runtime.pool.chunks"], MetricValue::Counter(15));
        assert_eq!(sink["runtime.pool.threads"], MetricValue::Gauge(3.0));
        match &sink["runtime.pool.chunks_per_worker"] {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.sum, 15);
                // every worker ran 5 chunks -> all in the [4, 8) bucket
                assert_eq!(h.buckets, vec![(8, 3)]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        let util = match sink["runtime.pool.utilization"] {
            MetricValue::Gauge(u) => u,
            _ => unreachable!(),
        };
        assert!((0.0..=1.0).contains(&util));
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(3);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(|idx| {
                if idx == 1 {
                    std::panic::panic_any("region job exploded");
                }
            });
        }))
        .expect_err("broadcast must re-throw the worker panic");
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "region job exploded");
        assert_eq!(pool.stats().worker_panics(), 1);
        // Workers survived: the next region runs on all of them.
        let hits = AtomicU64::new(0);
        pool.broadcast(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn every_worker_panicking_still_releases_the_latch() {
        let pool = ThreadPool::new(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(|_| panic!("all down"));
        }));
        assert!(caught.is_err());
        assert_eq!(pool.stats().worker_panics(), 4);
        let hits = AtomicU64::new(0);
        pool.broadcast(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn borrows_stack_state() {
        // the whole point of the latch design: closures may borrow locals
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        pool.broadcast(|idx| {
            let chunk = data.len() / 4;
            let lo = idx * chunk;
            let hi = if idx == 3 { data.len() } else { lo + chunk };
            let local: u64 = data[lo..hi].iter().sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}
