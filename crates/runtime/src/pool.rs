//! A persistent SPMD thread pool.
//!
//! Workers are spawned once and parked on their channel; each parallel
//! region broadcasts one job to every worker and waits on a latch. This
//! keeps per-region overhead at two atomic operations per worker — cheap
//! enough to call inside iterative graph algorithms (level-synchronous BFS
//! runs one region per frontier level).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

/// Completion latch: counts worker finishes and wakes the submitting thread.
struct Latch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    condvar: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            mutex: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    fn count_down(&self) {
        // Release pairs with the Acquire in `wait`: everything the worker
        // wrote is visible to the waiter once it observes zero.
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            let _guard = self.mutex.lock();
            self.condvar.notify_all();
        }
    }

    fn wait(&self) {
        let mut guard = self.mutex.lock();
        while self.remaining.load(Ordering::Acquire) != 0 {
            self.condvar.wait(&mut guard);
        }
    }
}

type Job = Arc<dyn Fn(usize) + Send + Sync>;

enum Msg {
    Run(Job, Arc<Latch>),
    Exit,
}

/// A fixed-size pool of long-lived workers executing SPMD regions.
pub struct ThreadPool {
    senders: Vec<Sender<Msg>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker_idx in 0..threads {
            let (tx, rx) = unbounded::<Msg>();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("graphbig-worker-{worker_idx}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                Msg::Run(job, latch) => {
                                    job(worker_idx);
                                    latch.count_down();
                                }
                                Msg::Exit => break,
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }
        ThreadPool { senders, handles }
    }

    /// Number of workers.
    #[inline]
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Run `f(worker_index)` on every worker simultaneously and wait for all
    /// of them to finish (an SPMD region).
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        // The channel's job type is 'static, but callers want to borrow
        // stack state. Erase the closure's lifetime and rely on the latch:
        // `broadcast` does not return until every worker has finished, so
        // the borrow is live for every dereference.
        struct SendRef(&'static (dyn Fn(usize) + Sync));
        unsafe impl Send for SendRef {}
        unsafe impl Sync for SendRef {}

        let latch = Arc::new(Latch::new(self.senders.len()));
        // SAFETY: lifetime erasure justified by the latch wait below.
        let f_erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(&f as &(dyn Fn(usize) + Sync)) };
        let shared = Arc::new(SendRef(f_erased));
        for tx in &self.senders {
            let shared = Arc::clone(&shared);
            let job: Job = Arc::new(move |idx| (shared.0)(idx));
            tx.send(Msg::Run(job, Arc::clone(&latch)))
                .expect("worker channel open");
        }
        latch.wait();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Exit);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_on_every_worker() {
        let pool = ThreadPool::new(4);
        let hits = AtomicU64::new(0);
        pool.broadcast(|idx| {
            assert!(idx < 4);
            hits.fetch_add(1 << (idx * 8), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0x0101_0101);
    }

    #[test]
    fn broadcast_waits_for_completion() {
        let pool = ThreadPool::new(3);
        let sum = AtomicU64::new(0);
        pool.broadcast(|_| {
            for _ in 0..1000 {
                sum.fetch_add(1, Ordering::Relaxed);
            }
        });
        // all increments must be visible after broadcast returns
        assert_eq!(sum.load(Ordering::Relaxed), 3000);
    }

    #[test]
    fn sequential_regions_reuse_workers() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.broadcast(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let ran = AtomicU64::new(0);
        pool.broadcast(|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn borrows_stack_state() {
        // the whole point of the latch design: closures may borrow locals
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        pool.broadcast(|idx| {
            let chunk = data.len() / 4;
            let lo = idx * chunk;
            let hi = if idx == 3 { data.len() } else { lo + chunk };
            let local: u64 = data[lo..hi].iter().sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}
