//! # graphbig-runtime
//!
//! The parallel substrate for the CPU workloads: a persistent [`ThreadPool`]
//! with SPMD-style parallel regions, dynamically scheduled
//! [`parfor`] loops, and a sense-reversing [`Barrier`].
//!
//! The paper runs its CPU workloads on a 16-core Xeon with threads pinned to
//! hardware cores; [`ThreadPool::new`] mirrors the thread-count knob (actual
//! affinity pinning is OS-specific and outside this library's scope — the
//! pool keeps one long-lived worker per requested core, which is the part
//! that matters for the workloads' structure).
//!
//! Built from scratch on `std::sync::mpsc` channels, `std` mutexes/condvars
//! and `std` atomics per the repository's from-scratch substrate rule — no
//! external synchronization crates; the design follows the guidance of
//! *Rust Atomics and Locks* (acquire/release pairs around the job latch,
//! condvar-backed waiting).

#![warn(missing_docs)]

pub mod barrier;
pub mod cancel;
pub mod frontier;
pub mod parfor;
pub mod pool;

pub use barrier::Barrier;
pub use cancel::{CancelToken, Cancelled};
pub use frontier::{ChunkedSink, Frontier};
pub use pool::ThreadPool;

/// Default worker count mirroring the paper's 16-core test machine.
pub const PAPER_CORES: usize = 16;
