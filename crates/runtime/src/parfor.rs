//! Dynamically scheduled parallel loops over index ranges.
//!
//! Graph workloads have wildly unbalanced per-vertex work (the degree
//! imbalance at the center of the paper's divergence analysis), so static
//! partitioning starves. [`parallel_for`] instead hands out fixed-size
//! chunks from a shared atomic cursor — classic dynamic (guided-ish)
//! scheduling.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool::ThreadPool;

/// Run `body(i)` for every `i` in `range`, distributing chunks of
/// `grain` indices dynamically across the pool's workers.
pub fn parallel_for<F>(pool: &ThreadPool, range: Range<usize>, grain: usize, body: F)
where
    F: Fn(usize) + Send + Sync,
{
    parallel_for_chunks(pool, range, grain, |chunk| {
        for i in chunk {
            body(i);
        }
    });
}

/// Like [`parallel_for`] but hands whole chunks to `body`, letting callers
/// hoist per-chunk state (thread-local buffers, tracers).
pub fn parallel_for_chunks<F>(pool: &ThreadPool, range: Range<usize>, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Send + Sync,
{
    let grain = grain.max(1);
    let start = range.start;
    let end = range.end;
    if start >= end {
        return;
    }
    let cursor = AtomicUsize::new(start);
    pool.broadcast(|_worker| loop {
        let lo = cursor.fetch_add(grain, Ordering::Relaxed);
        if lo >= end {
            break;
        }
        let hi = (lo + grain).min(end);
        body(lo..hi);
    });
}

/// Parallel map-reduce over a range: `map(i)` produces a value per index,
/// combined per worker with `fold` and across workers with `fold` again
/// starting from `identity`.
pub fn parallel_reduce<A, M, F>(
    pool: &ThreadPool,
    range: Range<usize>,
    grain: usize,
    identity: A,
    map: M,
    fold: F,
) -> A
where
    A: Clone + Send + Sync,
    M: Fn(usize) -> A + Send + Sync,
    F: Fn(A, A) -> A + Send + Sync,
{
    let partials: Vec<parking_lot::Mutex<A>> = (0..pool.threads())
        .map(|_| parking_lot::Mutex::new(identity.clone()))
        .collect();
    let grain = grain.max(1);
    let start = range.start;
    let end = range.end;
    if start < end {
        let cursor = AtomicUsize::new(start);
        pool.broadcast(|worker| {
            let mut local = identity.clone();
            loop {
                let lo = cursor.fetch_add(grain, Ordering::Relaxed);
                if lo >= end {
                    break;
                }
                let hi = (lo + grain).min(end);
                for i in lo..hi {
                    local = fold(local, map(i));
                }
            }
            let mut slot = partials[worker].lock();
            *slot = fold(slot.clone(), local);
        });
    }
    partials
        .into_iter()
        .map(parking_lot::Mutex::into_inner)
        .fold(identity, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(&pool, 0..n, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_a_no_op() {
        let pool = ThreadPool::new(2);
        let count = AtomicU64::new(0);
        parallel_for(&pool, 5..5, 16, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn chunks_partition_the_range() {
        let pool = ThreadPool::new(3);
        let seen = parking_lot::Mutex::new(Vec::new());
        parallel_for_chunks(&pool, 10..55, 10, |chunk| {
            seen.lock().push(chunk);
        });
        let mut chunks = seen.into_inner();
        chunks.sort_by_key(|c| c.start);
        let mut expect_start = 10;
        for c in &chunks {
            assert_eq!(c.start, expect_start);
            expect_start = c.end;
        }
        assert_eq!(expect_start, 55);
    }

    #[test]
    fn reduce_sums_correctly() {
        let pool = ThreadPool::new(4);
        let sum = parallel_reduce(&pool, 0..1001, 32, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(sum, 1000 * 1001 / 2);
    }

    #[test]
    fn reduce_with_max_operator() {
        let pool = ThreadPool::new(2);
        let max = parallel_reduce(
            &pool,
            0..500,
            7,
            0usize,
            |i| (i * 2654435761) % 1013,
            |a, b| a.max(b),
        );
        let expect = (0..500).map(|i| (i * 2654435761) % 1013).max().unwrap();
        assert_eq!(max, expect);
    }

    #[test]
    fn grain_zero_clamps() {
        let pool = ThreadPool::new(2);
        let count = AtomicU64::new(0);
        parallel_for(&pool, 0..10, 0, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }
}
