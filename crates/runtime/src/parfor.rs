//! Dynamically scheduled parallel loops over index ranges.
//!
//! Graph workloads have wildly unbalanced per-vertex work (the degree
//! imbalance at the center of the paper's divergence analysis), so static
//! partitioning starves. [`parallel_for`] instead hands out fixed-size
//! chunks from a shared atomic cursor — classic dynamic (guided-ish)
//! scheduling.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool::ThreadPool;

/// Run `body(i)` for every `i` in `range`, distributing chunks of
/// `grain` indices dynamically across the pool's workers.
pub fn parallel_for<F>(pool: &ThreadPool, range: Range<usize>, grain: usize, body: F)
where
    F: Fn(usize) + Send + Sync,
{
    parallel_for_chunks(pool, range, grain, |chunk| {
        for i in chunk {
            body(i);
        }
    });
}

/// Like [`parallel_for`] but hands whole chunks to `body`, letting callers
/// hoist per-chunk state (thread-local buffers, tracers).
pub fn parallel_for_chunks<F>(pool: &ThreadPool, range: Range<usize>, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Send + Sync,
{
    let grain = grain.max(1);
    let start = range.start;
    let end = range.end;
    if start >= end {
        return;
    }
    let cursor = AtomicUsize::new(start);
    pool.broadcast(|worker| loop {
        let lo = cursor.fetch_add(grain, Ordering::Relaxed);
        if lo >= end {
            break;
        }
        pool.stats().record_chunk(worker);
        let hi = (lo + grain).min(end);
        body(lo..hi);
    });
}

/// Split `0..n` into contiguous chunks of roughly `target` total weight,
/// where `weight_of(i)` is the cost of index `i` (for graph loops: the
/// vertex degree plus a constant). Unlike fixed-`grain` chunking this keeps
/// hub-heavy chunks small and leaf-only chunks large, so workers stealing
/// from the cursor see comparable work per grab.
///
/// Every index lands in exactly one chunk; a single over-weight index gets a
/// chunk of its own. The decomposition depends only on `n`, `target` and the
/// weights — never on thread count — which is what keeps chunk-indexed
/// merges deterministic.
pub fn weighted_chunks(
    n: usize,
    target: u64,
    weight_of: impl Fn(usize) -> u64,
) -> Vec<Range<usize>> {
    let target = target.max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for i in 0..n {
        acc += weight_of(i);
        if acc >= target {
            chunks.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        chunks.push(start..n);
    }
    chunks
}

/// Run `body(worker, chunk_idx, range)` for every chunk in `chunks`,
/// handing chunks out dynamically from a shared cursor. The chunk index
/// lets callers tag per-chunk output for deterministic,
/// schedule-independent merging; the worker index selects contention-free
/// per-worker buffers.
pub fn parallel_for_chunk_list<F>(pool: &ThreadPool, chunks: &[Range<usize>], body: F)
where
    F: Fn(usize, usize, Range<usize>) + Send + Sync,
{
    if chunks.is_empty() {
        return;
    }
    let cursor = AtomicUsize::new(0);
    pool.broadcast(|worker| loop {
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= chunks.len() {
            break;
        }
        pool.stats().record_chunk(worker);
        body(worker, c, chunks[c].clone());
    });
}

/// Parallel map-reduce over a range: `map(i)` produces a value per index,
/// combined per worker with `fold` and across workers with `fold` again
/// starting from `identity`.
pub fn parallel_reduce<A, M, F>(
    pool: &ThreadPool,
    range: Range<usize>,
    grain: usize,
    identity: A,
    map: M,
    fold: F,
) -> A
where
    A: Clone + Send + Sync,
    M: Fn(usize) -> A + Send + Sync,
    F: Fn(A, A) -> A + Send + Sync,
{
    let partials: Vec<std::sync::Mutex<A>> = (0..pool.threads())
        .map(|_| std::sync::Mutex::new(identity.clone()))
        .collect();
    let grain = grain.max(1);
    let start = range.start;
    let end = range.end;
    if start < end {
        let cursor = AtomicUsize::new(start);
        pool.broadcast(|worker| {
            let mut local = identity.clone();
            loop {
                let lo = cursor.fetch_add(grain, Ordering::Relaxed);
                if lo >= end {
                    break;
                }
                let hi = (lo + grain).min(end);
                for i in lo..hi {
                    local = fold(local, map(i));
                }
            }
            let mut slot = partials[worker].lock().unwrap_or_else(|e| e.into_inner());
            *slot = fold(slot.clone(), local);
        });
    }
    partials
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .fold(identity, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(&pool, 0..n, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_a_no_op() {
        let pool = ThreadPool::new(2);
        let count = AtomicU64::new(0);
        parallel_for(&pool, 5..5, 16, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn chunks_partition_the_range() {
        let pool = ThreadPool::new(3);
        let seen = std::sync::Mutex::new(Vec::new());
        parallel_for_chunks(&pool, 10..55, 10, |chunk| {
            seen.lock().unwrap().push(chunk);
        });
        let mut chunks = seen.into_inner().unwrap();
        chunks.sort_by_key(|c| c.start);
        let mut expect_start = 10;
        for c in &chunks {
            assert_eq!(c.start, expect_start);
            expect_start = c.end;
        }
        assert_eq!(expect_start, 55);
    }

    #[test]
    fn reduce_sums_correctly() {
        let pool = ThreadPool::new(4);
        let sum = parallel_reduce(&pool, 0..1001, 32, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(sum, 1000 * 1001 / 2);
    }

    #[test]
    fn reduce_with_max_operator() {
        let pool = ThreadPool::new(2);
        let max = parallel_reduce(
            &pool,
            0..500,
            7,
            0usize,
            |i| (i * 2654435761) % 1013,
            |a, b| a.max(b),
        );
        let expect = (0..500).map(|i| (i * 2654435761) % 1013).max().unwrap();
        assert_eq!(max, expect);
    }

    #[test]
    fn weighted_chunks_partition_and_balance() {
        // Degrees: one hub of weight 100 among unit-weight leaves.
        let w = |i: usize| if i == 5 { 100 } else { 1 };
        let chunks = weighted_chunks(20, 10, w);
        // Partition: contiguous, exhaustive, disjoint.
        let mut expect = 0;
        for c in &chunks {
            assert_eq!(c.start, expect);
            expect = c.end;
        }
        assert_eq!(expect, 20);
        // The hub terminates its own chunk instead of dragging neighbors in.
        let hub_chunk = chunks.iter().find(|c| c.contains(&5)).unwrap();
        assert_eq!(hub_chunk.end, 6);
    }

    #[test]
    fn weighted_chunks_depend_only_on_weights() {
        let a = weighted_chunks(1000, 64, |i| (i % 7) as u64);
        let b = weighted_chunks(1000, 64, |i| (i % 7) as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn chunk_list_runs_every_chunk_once() {
        let pool = ThreadPool::new(4);
        let chunks = weighted_chunks(5000, 100, |_| 3);
        let hits: Vec<AtomicU64> = (0..5000).map(|_| AtomicU64::new(0)).collect();
        let chunk_hits: Vec<AtomicU64> = (0..chunks.len()).map(|_| AtomicU64::new(0)).collect();
        parallel_for_chunk_list(&pool, &chunks, |_w, ci, range| {
            chunk_hits[ci].fetch_add(1, Ordering::Relaxed);
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(chunk_hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn grain_zero_clamps() {
        let pool = ThreadPool::new(2);
        let count = AtomicU64::new(0);
        parallel_for(&pool, 0..10, 0, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }
}
