//! Cooperative cancellation for long-running kernels.
//!
//! A [`CancelToken`] combines an explicit cancellation flag (shared through
//! an `Arc`, so any holder can cancel the others) with an optional wall-clock
//! deadline. Kernels poll [`CancelToken::check`] at frontier-level
//! boundaries — between supersteps, never inside the tight per-edge loops —
//! so cancellation costs one relaxed load plus one `Instant::now` per level
//! and a cancelled query abandons at most one level of work.
//!
//! The serving engine (`crates/engine`) hands every admitted query a token
//! carrying its deadline; dropping a request or missing the deadline turns
//! into an `Err(Cancelled)` from the kernel instead of a completed result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The error a cancellable kernel returns when its token fired. Carries no
/// payload: the caller that owns the token knows whether the cause was an
/// explicit cancel or a deadline (see [`CancelToken::deadline_passed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("query cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// A cloneable cancellation handle: an atomic flag shared across clones plus
/// an optional deadline fixed at construction.
///
/// Tokens also carry an optional *chaos key* identifying the request at the
/// `runtime.cancel.check` failpoint. Tokens without a key (the default —
/// including [`CancelToken::never`], which the sequential oracle uses) are
/// immune to injection even while a fault plan is armed.
///
/// Independently of the chaos key, a token can carry a *trace id* (the
/// engine's request id): when set, every [`CancelToken::check`] drops a
/// `kernel_step` event into the always-on flight recorder, so a failure
/// dump shows how far inside the kernel a request got. Untraced tokens
/// (id 0, the default) record nothing.
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
    key: u64,
    trace_id: u64,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken {
            flag: Arc::default(),
            deadline: None,
            key: graphbig_chaos::NO_KEY,
            trace_id: 0,
        }
    }
}

impl CancelToken {
    /// A token with no deadline that cancels only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that can never fire — the zero-cost way to run a cancellable
    /// kernel unconditionally (the non-cancellable public wrappers use it).
    pub fn never() -> Self {
        Self::default()
    }

    /// A token that also fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Tag this token with a chaos request key; the `runtime.cancel.check`
    /// failpoint uses it to decide deterministically whether to inject.
    pub fn with_chaos_key(mut self, key: u64) -> Self {
        self.key = key;
        self
    }

    /// The chaos key ([`graphbig_chaos::NO_KEY`] when untagged).
    pub fn chaos_key(&self) -> u64 {
        self.key
    }

    /// Tag this token with the engine's request id for flight recording;
    /// 0 (the default) means untraced.
    pub fn with_trace_id(mut self, id: u64) -> Self {
        self.trace_id = id;
        self
    }

    /// The flight-recorder trace id (0 when untraced).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// A token firing `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Request cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True when [`CancelToken::cancel`] was called on any clone (ignores
    /// the deadline).
    pub fn cancel_requested(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True when the deadline exists and has passed.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True when the token has fired for either reason.
    pub fn is_cancelled(&self) -> bool {
        self.cancel_requested() || self.deadline_passed()
    }

    /// The polling call kernels place at superstep boundaries.
    ///
    /// Under an armed fault plan, the `runtime.cancel.check` failpoint may
    /// delay here, force a cancellation (`Cancel` / `DeadlineExpire` both
    /// set the shared flag so every later check agrees), or panic — kernels
    /// run on the executor thread at superstep boundaries, where the
    /// engine's panic guard converts that into a `Failed` status.
    #[inline]
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.trace_id != 0 {
            use graphbig_telemetry::recorder;
            recorder::record(recorder::EventKind::KernelStep, self.trace_id, 0);
        }
        if let Some(fault) = graphbig_chaos::failpoint!("runtime.cancel.check", self.key) {
            use graphbig_chaos::FaultAction;
            match fault.action {
                FaultAction::Cancel | FaultAction::DeadlineExpire => {
                    self.cancel();
                    return Err(Cancelled);
                }
                FaultAction::Panic => {
                    panic!("{} at runtime.cancel.check", graphbig_chaos::PANIC_MSG)
                }
                _ => {}
            }
        }
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(t.cancel_requested());
        assert_eq!(t.check(), Err(Cancelled));
    }

    #[test]
    fn expired_deadline_fires_without_cancel() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.deadline_passed());
        assert!(t.is_cancelled());
        assert!(!t.cancel_requested(), "deadline is not an explicit cancel");
    }

    #[test]
    fn future_deadline_stays_live() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_some());
    }

    #[test]
    fn never_token_survives_everything_but_cancel() {
        let t = CancelToken::never();
        assert!(t.check().is_ok());
        t.cancel();
        assert!(t.check().is_err());
    }
}
