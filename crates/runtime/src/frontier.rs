//! Hybrid sparse/dense frontier engine for level-synchronous graph kernels.
//!
//! A frontier is the active vertex set of one superstep. Two representations
//! trade off against each other exactly as in Ligra and the GAP direction-
//! optimizing BFS:
//!
//! * **sparse** — an ordered `Vec<u32>` of vertices. Cheap to iterate when
//!   the frontier is a sliver of the graph; membership tests are impossible
//!   without a scan.
//! * **dense** — an [`AtomicBitmap`] over the whole vertex universe. O(1)
//!   membership (what bottom-up steps need), insertion dedup for free via
//!   `fetch_or`, but iteration always walks `n/64` words.
//!
//! [`Frontier`] switches between the two by occupancy: past
//! 1/[`DENSE_FRACTION`] of the universe the bitmap is smaller *and* faster
//! than the queue. [`ChunkedSink`] is the deterministic gather side: workers
//! emit per-chunk segments, and the merge orders segments by chunk index —
//! a total order fixed by the (thread-count-independent) chunk
//! decomposition — then compacts them with a prefix-sum copy. The result is
//! byte-identical output for any worker count or interleaving, without the
//! O(f log f) per-level vertex sort the first parallel BFS used.

use graphbig_framework::bitmap::AtomicBitmap;
use std::sync::{Mutex, MutexGuard};

/// Lock a slot, shrugging off poison: slot state is a plain buffer list, so
/// a panicking worker cannot leave it logically inconsistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A frontier goes dense past `universe / DENSE_FRACTION` members: at 5%
/// occupancy the bitmap (n bits) is far smaller than the queue (32n bits
/// worst case) and bottom-up scans start to pay off.
pub const DENSE_FRACTION: usize = 20;

/// Decide the representation for a frontier of `len` vertices drawn from a
/// `universe`-vertex graph.
#[inline]
pub fn should_be_dense(len: usize, universe: usize) -> bool {
    len * DENSE_FRACTION > universe
}

/// Active vertex set of one superstep, in whichever representation fits.
#[derive(Debug)]
pub enum Frontier {
    /// Vertex queue in deterministic (chunk-merge or ascending) order.
    Sparse(Vec<u32>),
    /// Membership bitmap plus its cached population count.
    Dense {
        /// One bit per vertex in the universe.
        bits: AtomicBitmap,
        /// Number of set bits (maintained by the producer).
        count: usize,
    },
}

impl Frontier {
    /// A frontier holding exactly the source vertex.
    pub fn singleton(v: u32) -> Self {
        Frontier::Sparse(vec![v])
    }

    /// Wrap a produced queue, converting to a bitmap if occupancy warrants.
    pub fn from_queue(queue: Vec<u32>, universe: usize) -> Self {
        if should_be_dense(queue.len(), universe) {
            let bits = AtomicBitmap::new(universe);
            for &v in &queue {
                bits.set(v as usize);
            }
            Frontier::Dense {
                count: queue.len(),
                bits,
            }
        } else {
            Frontier::Sparse(queue)
        }
    }

    /// Wrap a produced bitmap, converting to a queue if occupancy is low.
    /// The sparse order is ascending vertex id — deterministic by
    /// construction.
    pub fn from_bitmap(bits: AtomicBitmap, count: usize) -> Self {
        if should_be_dense(count, bits.len()) {
            Frontier::Dense { bits, count }
        } else {
            Frontier::Sparse(bits.to_vec())
        }
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        match self {
            Frontier::Sparse(q) => q.len(),
            Frontier::Dense { count, .. } => *count,
        }
    }

    /// True when no vertex is active (traversal finished).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True in the bitmap representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, Frontier::Dense { .. })
    }

    /// The queue, when sparse.
    pub fn as_sparse(&self) -> Option<&[u32]> {
        match self {
            Frontier::Sparse(q) => Some(q),
            Frontier::Dense { .. } => None,
        }
    }

    /// The bitmap, when dense.
    pub fn as_dense(&self) -> Option<&AtomicBitmap> {
        match self {
            Frontier::Sparse(_) => None,
            Frontier::Dense { bits, .. } => Some(bits),
        }
    }

    /// Force the dense representation (bottom-up steps need O(1) membership
    /// regardless of occupancy). `universe` sizes the bitmap when converting.
    pub fn ensure_dense(&mut self, universe: usize) {
        if let Frontier::Sparse(q) = self {
            let bits = AtomicBitmap::new(universe);
            for &v in q.iter() {
                bits.set(v as usize);
            }
            *self = Frontier::Dense {
                count: q.len(),
                bits,
            };
        }
    }

    /// Empty the frontier in place, keeping the current representation's
    /// allocation (queue capacity / bitmap words) so repeated queries on the
    /// same graph reuse buffers instead of reallocating per run.
    pub fn reset(&mut self) {
        match self {
            Frontier::Sparse(q) => q.clear(),
            Frontier::Dense { bits, count } => {
                bits.reset();
                *count = 0;
            }
        }
    }

    /// Membership test; O(1) dense, O(len) sparse.
    pub fn contains(&self, v: u32) -> bool {
        match self {
            Frontier::Sparse(q) => q.contains(&v),
            Frontier::Dense { bits, .. } => bits.get(v as usize),
        }
    }

    /// Visit every active vertex in the representation's deterministic
    /// order (queue order / ascending bit order).
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        match self {
            Frontier::Sparse(q) => q.iter().for_each(|&v| f(v)),
            Frontier::Dense { bits, .. } => bits.for_each_set(|i| f(i as u32)),
        }
    }

    /// Materialize the active set as a queue in deterministic order.
    pub fn to_queue(&self) -> Vec<u32> {
        match self {
            Frontier::Sparse(q) => q.clone(),
            Frontier::Dense { bits, .. } => bits.to_vec(),
        }
    }
}

/// Per-chunk segment buffers with a deterministic prefix-sum merge.
///
/// Each worker processing chunk `c` collects its discoveries in a private
/// `Vec` and commits it as the segment for `c`. Chunks are processed exactly
/// once, so segment chunk indices are unique; sorting the O(#chunks)
/// segment list by chunk index and compacting via prefix sums reproduces
/// the order a sequential chunk-by-chunk run would emit — independent of
/// which worker ran which chunk, and far cheaper than sorting the O(f)
/// vertices themselves.
///
/// Segment vectors are recycled across levels (`spare` pool) so steady-state
/// traversal allocates nothing.
#[derive(Debug)]
pub struct ChunkedSink {
    slots: Vec<Mutex<SinkSlot>>,
}

#[derive(Debug, Default)]
struct SinkSlot {
    segments: Vec<(u32, Vec<u32>)>,
    spare: Vec<Vec<u32>>,
}

impl ChunkedSink {
    /// A sink with one contention-free slot per worker.
    pub fn new(workers: usize) -> Self {
        ChunkedSink {
            slots: (0..workers.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    /// Check out a (possibly recycled) buffer for `worker` to fill.
    pub fn take_buffer(&self, worker: usize) -> Vec<u32> {
        lock(&self.slots[worker]).spare.pop().unwrap_or_default()
    }

    /// Commit `buf` as the segment for `chunk`. Empty buffers go straight
    /// back to the spare pool.
    pub fn commit(&self, worker: usize, chunk: usize, buf: Vec<u32>) {
        let mut slot = lock(&self.slots[worker]);
        if buf.is_empty() {
            slot.spare.push(buf);
        } else {
            slot.segments.push((chunk as u32, buf));
        }
    }

    /// Merge all committed segments into `out` in chunk order and recycle
    /// the segment buffers. Returns the number of items merged.
    pub fn drain_into(&self, out: &mut Vec<u32>) -> usize {
        let mut segments: Vec<(u32, Vec<u32>)> = Vec::new();
        for slot in &self.slots {
            segments.append(&mut lock(slot).segments);
        }
        segments.sort_unstable_by_key(|&(c, _)| c);
        // Prefix-sum compaction: pre-size once, then copy each segment into
        // its exclusive window.
        let base = out.len();
        let mut offsets = Vec::with_capacity(segments.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for (_, seg) in &segments {
            total += seg.len();
            offsets.push(total);
        }
        out.resize(base + total, 0);
        for (k, (_, seg)) in segments.iter().enumerate() {
            out[base + offsets[k]..base + offsets[k + 1]].copy_from_slice(seg);
        }
        // Recycle buffers round-robin over the slots.
        for (k, (_, mut seg)) in segments.into_iter().enumerate() {
            seg.clear();
            lock(&self.slots[k % self.slots.len()]).spare.push(seg);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_under_threshold_stays_sparse() {
        let f = Frontier::from_queue(vec![3, 1, 2], 1000);
        assert!(!f.is_dense());
        assert_eq!(f.len(), 3);
        assert_eq!(f.as_sparse().unwrap(), &[3, 1, 2]);
    }

    #[test]
    fn queue_over_threshold_goes_dense() {
        let q: Vec<u32> = (0..100).collect();
        let f = Frontier::from_queue(q, 1000);
        assert!(f.is_dense());
        assert_eq!(f.len(), 100);
        assert!(f.contains(42));
        assert!(!f.contains(100));
    }

    #[test]
    fn bitmap_under_threshold_goes_sparse_ascending() {
        let bits = AtomicBitmap::new(1000);
        bits.set(500);
        bits.set(7);
        let f = Frontier::from_bitmap(bits, 2);
        assert!(!f.is_dense());
        assert_eq!(f.as_sparse().unwrap(), &[7, 500]);
    }

    #[test]
    fn ensure_dense_converts_and_preserves_members() {
        let mut f = Frontier::from_queue(vec![9, 4], 640);
        f.ensure_dense(640);
        assert!(f.is_dense());
        assert_eq!(f.len(), 2);
        assert!(f.contains(9) && f.contains(4) && !f.contains(5));
        let mut seen = Vec::new();
        f.for_each(|v| seen.push(v));
        assert_eq!(seen, vec![4, 9]);
    }

    #[test]
    fn reset_keeps_sparse_capacity() {
        let mut f = Frontier::from_queue(vec![3, 1, 2], 1000);
        let (ptr, cap) = match &f {
            Frontier::Sparse(q) => (q.as_ptr(), q.capacity()),
            _ => unreachable!(),
        };
        f.reset();
        assert!(f.is_empty());
        match &f {
            Frontier::Sparse(q) => {
                assert_eq!(q.capacity(), cap, "reset must not shrink the queue");
                assert_eq!(q.as_ptr(), ptr, "reset must not reallocate the queue");
            }
            _ => panic!("reset must preserve the sparse representation"),
        }
    }

    #[test]
    fn reset_reuses_dense_words() {
        let q: Vec<u32> = (0..100).collect();
        let mut f = Frontier::from_queue(q, 1000);
        assert!(f.is_dense());
        let ptr: *const AtomicBitmap = f.as_dense().unwrap();
        f.reset();
        assert!(f.is_empty());
        let bits = f.as_dense().expect("reset must stay dense");
        assert_eq!(
            ptr, bits as *const AtomicBitmap,
            "reset must clear the existing bitmap in place"
        );
        assert_eq!(bits.count(), 0);
        assert_eq!(bits.len(), 1000, "universe size survives reset");
    }

    #[test]
    fn singleton_is_sparse() {
        let f = Frontier::singleton(8);
        assert_eq!(f.to_queue(), vec![8]);
        assert!(!f.is_empty());
    }

    #[test]
    fn sink_merges_in_chunk_order_regardless_of_commit_order() {
        let sink = ChunkedSink::new(3);
        // Commit chunks out of order from different workers.
        let mut b2 = sink.take_buffer(2);
        b2.extend([20, 21]);
        sink.commit(2, 2, b2);
        let mut b0 = sink.take_buffer(0);
        b0.extend([1, 2, 3]);
        sink.commit(0, 0, b0);
        let mut b1 = sink.take_buffer(1);
        b1.push(10);
        sink.commit(1, 1, b1);
        let mut out = Vec::new();
        assert_eq!(sink.drain_into(&mut out), 6);
        assert_eq!(out, vec![1, 2, 3, 10, 20, 21]);
    }

    #[test]
    fn sink_recycles_buffers() {
        let sink = ChunkedSink::new(1);
        let mut b = sink.take_buffer(0);
        b.push(5);
        sink.commit(0, 0, b);
        let mut out = Vec::new();
        sink.drain_into(&mut out);
        // The committed buffer is back in the spare pool with capacity.
        let b2 = sink.take_buffer(0);
        assert!(b2.capacity() >= 1);
        assert!(b2.is_empty());
    }

    #[test]
    fn sink_drain_appends_after_existing_items() {
        let sink = ChunkedSink::new(2);
        let mut b = sink.take_buffer(0);
        b.extend([7, 8]);
        sink.commit(0, 4, b);
        let mut out = vec![99];
        sink.drain_into(&mut out);
        assert_eq!(out, vec![99, 7, 8]);
    }

    #[test]
    fn empty_sink_drains_nothing() {
        let sink = ChunkedSink::new(2);
        let mut out = Vec::new();
        assert_eq!(sink.drain_into(&mut out), 0);
        assert!(out.is_empty());
    }
}
