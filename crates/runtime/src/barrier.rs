//! A centralized sense-reversing barrier.
//!
//! Level-synchronous graph algorithms (parallel BFS, Luby–Jones coloring
//! rounds) separate phases with barriers. This is the textbook
//! sense-reversing design from *Rust Atomics and Locks* territory: one
//! atomic counter plus a global "sense" flag, with each thread keeping its
//! local sense — reusable without reinitialization, no ABA between
//! generations.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Reusable barrier for a fixed number of participants.
pub struct Barrier {
    parties: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
}

/// Per-thread handle carrying the thread's local sense.
pub struct BarrierToken {
    local_sense: bool,
}

impl Barrier {
    /// Barrier for `parties` threads (at least one).
    pub fn new(parties: usize) -> Self {
        Barrier {
            parties: parties.max(1),
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Create the per-thread token; one per participating thread.
    pub fn token(&self) -> BarrierToken {
        BarrierToken { local_sense: false }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block until all `parties` threads have called `wait` this generation.
    /// Returns `true` for exactly one thread per generation (the "leader").
    pub fn wait(&self, token: &mut BarrierToken) -> bool {
        token.local_sense = !token.local_sense;
        // AcqRel: arriving threads' prior writes must be visible to the
        // thread that releases the generation, and vice versa.
        let pos = self.arrived.fetch_add(1, Ordering::AcqRel);
        if pos + 1 == self.parties {
            self.arrived.store(0, Ordering::Relaxed);
            self.sense.store(token.local_sense, Ordering::Release);
            true
        } else {
            while self.sense.load(Ordering::Acquire) != token.local_sense {
                std::hint::spin_loop();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_party_never_blocks() {
        let b = Barrier::new(1);
        let mut tok = b.token();
        for _ in 0..10 {
            assert!(b.wait(&mut tok), "single participant is always leader");
        }
    }

    #[test]
    fn phases_are_ordered_across_threads() {
        const THREADS: usize = 4;
        const PHASES: usize = 20;
        let b = Barrier::new(THREADS);
        let phase_sums: Vec<AtomicU64> = (0..PHASES).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let mut tok = b.token();
                    for (p, slot) in phase_sums.iter().enumerate() {
                        slot.fetch_add(1, Ordering::Relaxed);
                        b.wait(&mut tok);
                        // after the barrier, everyone must see all THREADS
                        // contributions to this phase
                        assert_eq!(
                            slot.load(Ordering::Relaxed),
                            THREADS as u64,
                            "phase {p} incomplete after barrier"
                        );
                        b.wait(&mut tok);
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const THREADS: usize = 8;
        let b = Barrier::new(THREADS);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let mut tok = b.token();
                    for _ in 0..10 {
                        if b.wait(&mut tok) {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_parties_clamps_to_one() {
        let b = Barrier::new(0);
        assert_eq!(b.parties(), 1);
        let mut tok = b.token();
        assert!(b.wait(&mut tok));
    }
}
