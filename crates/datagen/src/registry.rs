//! The dataset registry: Tables 5 and 7 of the paper, scalable.
//!
//! [`Dataset`] enumerates the five experiment datasets. [`Dataset::spec`]
//! returns the paper's full-size inventory (Table 5) and
//! [`Dataset::experiment_spec`] the sizes actually used in the paper's
//! experiments (Table 7). [`Dataset::generate`] produces a graph at any
//! scale, preserving the dataset's Table 7 edge/vertex ratio and its
//! topology class.

use graphbig_framework::{DataSource, PropertyGraph};
use graphbig_json::{json_enum, json_struct_to};

use crate::{gene, knowledge, ldbc, road, twitter};

/// One row of the paper's dataset tables.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset display name.
    pub name: &'static str,
    /// Data-source family (Table 2 type).
    pub source: DataSource,
    /// Vertex count.
    pub vertices: u64,
    /// Edge count.
    pub edges: u64,
}

// Encode-only: `name` is a `&'static str` table entry, so specs are emitted
// into manifests but never parsed back.
json_struct_to!(DatasetSpec {
    name,
    source,
    vertices,
    edges
});

/// The five datasets used in the paper's characterization (Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Sampled Twitter transaction graph (Type 1).
    Twitter,
    /// IBM Knowledge Repo bipartite user/document graph (Type 2).
    KnowledgeRepo,
    /// IBM Watson Gene graph (Type 3).
    WatsonGene,
    /// California road network (Type 4).
    CaRoad,
    /// LDBC synthetic social graph.
    Ldbc,
}

json_enum!(Dataset {
    Twitter,
    KnowledgeRepo,
    WatsonGene,
    CaRoad,
    Ldbc,
});

impl Dataset {
    /// All five datasets in Table 7 order.
    pub const ALL: [Dataset; 5] = [
        Dataset::Twitter,
        Dataset::KnowledgeRepo,
        Dataset::WatsonGene,
        Dataset::CaRoad,
        Dataset::Ldbc,
    ];

    /// Table 5: the full-size dataset inventory.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Twitter => DatasetSpec {
                name: "Twitter Graph",
                source: DataSource::Social,
                vertices: 120_000_000,
                edges: 1_900_000_000,
            },
            Dataset::KnowledgeRepo => DatasetSpec {
                name: "IBM Knowledge Repo",
                source: DataSource::Information,
                vertices: 154_000,
                edges: 1_720_000,
            },
            Dataset::WatsonGene => DatasetSpec {
                name: "IBM Watson Gene Graph",
                source: DataSource::Nature,
                vertices: 2_000_000,
                edges: 12_200_000,
            },
            Dataset::CaRoad => DatasetSpec {
                name: "CA Road Network",
                source: DataSource::ManMade,
                vertices: 1_900_000,
                edges: 2_800_000,
            },
            Dataset::Ldbc => DatasetSpec {
                name: "LDBC Graph",
                source: DataSource::Synthetic,
                vertices: 1_000_000,
                edges: 28_820_000,
            },
        }
    }

    /// Table 7: the sizes used in the paper's experiments (Twitter sampled
    /// down to 11M/85M; LDBC generated at 1M).
    pub fn experiment_spec(self) -> DatasetSpec {
        match self {
            Dataset::Twitter => DatasetSpec {
                name: "Twitter Graph (sampled)",
                source: DataSource::Social,
                vertices: 11_000_000,
                edges: 85_000_000,
            },
            Dataset::Ldbc => DatasetSpec {
                name: "LDBC Graph",
                source: DataSource::Synthetic,
                vertices: 1_000_000,
                edges: 28_820_000,
            },
            other => other.spec(),
        }
    }

    /// Short lower-case name used in figure labels ("twitter", "knowledge",
    /// "watson", "roadnet", "ldbc").
    pub fn short_name(self) -> &'static str {
        match self {
            Dataset::Twitter => "twitter",
            Dataset::KnowledgeRepo => "knowledge",
            Dataset::WatsonGene => "watson",
            Dataset::CaRoad => "roadnet",
            Dataset::Ldbc => "ldbc",
        }
    }

    /// Whether the underlying graph is undirected (stored as arc pairs).
    pub fn is_undirected(self) -> bool {
        matches!(
            self,
            Dataset::WatsonGene | Dataset::CaRoad | Dataset::KnowledgeRepo
        )
    }

    /// Generate the dataset scaled so that its vertex count is
    /// `scale ×` the Table 7 experiment size, preserving the edge/vertex
    /// ratio and topology class. `scale = 1.0` reproduces Table 7 sizes.
    pub fn generate(self, scale: f64) -> PropertyGraph {
        let v = ((self.experiment_spec().vertices as f64 * scale) as usize).max(16);
        self.generate_with_vertices(v)
    }

    /// Generate the dataset with an explicit vertex count.
    pub fn generate_with_vertices(self, vertices: usize) -> PropertyGraph {
        match self {
            Dataset::Twitter => twitter::generate(&twitter::TwitterConfig::with_vertices(vertices)),
            Dataset::KnowledgeRepo => {
                knowledge::generate(&knowledge::KnowledgeConfig::with_vertices(vertices))
            }
            Dataset::WatsonGene => gene::generate(&gene::GeneConfig::with_vertices(vertices)),
            Dataset::CaRoad => road::generate(&road::RoadConfig::with_vertices(vertices)),
            Dataset::Ldbc => ldbc::generate(&ldbc::LdbcConfig::with_vertices(vertices)),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_counts_match_paper() {
        assert_eq!(Dataset::Twitter.spec().vertices, 120_000_000);
        assert_eq!(Dataset::Twitter.spec().edges, 1_900_000_000);
        assert_eq!(Dataset::KnowledgeRepo.spec().vertices, 154_000);
        assert_eq!(Dataset::WatsonGene.spec().edges, 12_200_000);
        assert_eq!(Dataset::CaRoad.spec().vertices, 1_900_000);
        assert_eq!(Dataset::Ldbc.spec().edges, 28_820_000);
    }

    #[test]
    fn table7_samples_twitter() {
        let t = Dataset::Twitter.experiment_spec();
        assert_eq!(t.vertices, 11_000_000);
        assert_eq!(t.edges, 85_000_000);
        // the others match Table 5
        assert_eq!(Dataset::CaRoad.experiment_spec(), Dataset::CaRoad.spec());
    }

    #[test]
    fn each_dataset_has_distinct_source() {
        let sources: Vec<_> = Dataset::ALL.iter().map(|d| d.spec().source).collect();
        for i in 0..sources.len() {
            for j in (i + 1)..sources.len() {
                assert_ne!(sources[i], sources[j]);
            }
        }
    }

    #[test]
    fn generation_preserves_edge_ratio() {
        for d in Dataset::ALL {
            let g = d.generate_with_vertices(5_000);
            let spec = d.experiment_spec();
            let want_ratio = spec.edges as f64 / spec.vertices as f64
                * if d.is_undirected() { 2.0 } else { 1.0 };
            let got_ratio = g.num_arcs() as f64 / g.num_vertices() as f64;
            assert!(
                (got_ratio - want_ratio).abs() / want_ratio < 0.35,
                "{d}: arc ratio {got_ratio} vs paper {want_ratio}"
            );
        }
    }

    #[test]
    fn scale_parameter_controls_size() {
        let g = Dataset::Ldbc.generate(0.001); // 0.1% of 1M
        assert!(
            (900..1100).contains(&g.num_vertices()),
            "{}",
            g.num_vertices()
        );
    }
}
