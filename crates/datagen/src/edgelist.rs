//! Plain-text edge-list I/O (SNAP-style), so users can load real datasets —
//! e.g. the actual CA road network from SNAP — in place of the generators.
//!
//! Format: one `src dst [weight]` triple per line, whitespace-separated;
//! lines starting with `#` or `%` are comments. Vertices are created on
//! first mention.

use std::io::{BufRead, BufReader, Read, Write};

use graphbig_framework::error::{GraphError, Result};
use graphbig_framework::PropertyGraph;

/// Parse an edge list from a reader into a directed [`PropertyGraph`].
pub fn read_graph<R: Read>(reader: R) -> Result<PropertyGraph> {
    let edges = read_edges(reader)?;
    let mut g = PropertyGraph::new();
    for &(u, v, w) in &edges {
        if g.find_vertex(u).is_none() {
            g.add_vertex_with_id(u).expect("first mention");
        }
        if g.find_vertex(v).is_none() {
            g.add_vertex_with_id(v).expect("first mention");
        }
        g.add_edge(u, v, w).expect("endpoints exist");
    }
    Ok(g)
}

/// Parse an edge list into raw tuples.
pub fn read_edges<R: Read>(reader: R) -> Result<Vec<(u64, u64, f32)>> {
    let mut edges = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| GraphError::MalformedInput(format!("I/O error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u64> {
            tok.ok_or_else(|| {
                GraphError::MalformedInput(format!("line {}: missing {what}", lineno + 1))
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::MalformedInput(format!("line {}: {e}", lineno + 1)))
        };
        let u = parse(it.next(), "source")?;
        let v = parse(it.next(), "target")?;
        let w = match it.next() {
            None => 1.0f32,
            Some(tok) => tok.parse::<f32>().map_err(|e| {
                GraphError::MalformedInput(format!("line {}: bad weight: {e}", lineno + 1))
            })?,
        };
        edges.push((u, v, w));
    }
    Ok(edges)
}

/// Write a graph as an edge list (weights included when ≠ 1.0).
pub fn write_graph<W: Write>(g: &PropertyGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# GraphBIG-RS edge list: {} vertices, {} arcs",
        g.num_vertices(),
        g.num_arcs()
    )?;
    for (u, e) in g.arcs() {
        if (e.weight - 1.0).abs() < f32::EPSILON {
            writeln!(writer, "{u} {}", e.target)?;
        } else {
            writeln!(writer, "{u} {} {}", e.target, e.weight)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_edge_list() {
        let text = "# comment\n0 1\n1 2 2.5\n\n% another comment\n2 0\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 3);
        assert!(g.has_edge(0, 1));
        assert_eq!(g.find_vertex(1).unwrap().find_edge(2).unwrap().weight, 2.5);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edges("0\n".as_bytes()).is_err());
        assert!(read_edges("a b\n".as_bytes()).is_err());
        assert!(read_edges("0 1 xyz\n".as_bytes()).is_err());
    }

    #[test]
    fn error_mentions_line_number() {
        let err = read_edges("0 1\nbroken\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn round_trip_through_text() {
        let mut g = PropertyGraph::new();
        for _ in 0..5 {
            g.add_vertex();
        }
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 3.5).unwrap();
        g.add_edge(4, 0, 1.0).unwrap();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices() - 1); // vertex 3 isolated, not mentioned
        assert_eq!(g2.num_arcs(), 3);
        assert_eq!(g2.find_vertex(1).unwrap().find_edge(2).unwrap().weight, 3.5);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_graph("".as_bytes()).unwrap();
        assert!(g.is_empty());
    }
}
