//! LDBC-like synthetic social network generator.
//!
//! The paper uses the LDBC (S3G2) data generator because it produces graphs
//! of *arbitrary size* that keep "the same features as a facebook-like
//! social network" (Section 4.3), and because its degree imbalance is spread
//! over many vertices — the property the paper blames for LDBC's
//! highest-of-all warp divergence in Figure 13.
//!
//! This generator reproduces those class features:
//!
//! * power-law out-degrees with a moderate exponent, so imbalance involves
//!   *many* vertices (unlike the Twitter generator's few extreme hubs);
//! * community structure: most edges stay inside a vertex's community
//!   (correlated neighborhoods, as S3G2 correlates friends);
//! * a configurable mean degree, defaulting to the ≈28.8 edges/vertex of the
//!   paper's LDBC-1M dataset (Table 7).

use crate::rng::Rng;
use graphbig_framework::PropertyGraph;

use crate::degree::degree_sequence;
use crate::graph_from_edges;

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct LdbcConfig {
    /// Number of vertices (persons).
    pub vertices: usize,
    /// Target mean out-degree; Table 7's LDBC-1M has 28.82.
    pub avg_degree: f64,
    /// Power-law exponent of the degree distribution.
    pub alpha: f64,
    /// Mean community size.
    pub community_size: usize,
    /// Fraction of edges that stay within the community.
    pub community_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LdbcConfig {
    /// LDBC-like graph with `vertices` persons and paper-default parameters.
    pub fn with_vertices(vertices: usize) -> Self {
        LdbcConfig {
            vertices,
            avg_degree: 28.82,
            alpha: 2.3,
            community_size: 64,
            community_bias: 0.6,
            seed: 0x1dbc_u64,
        }
    }
}

/// Generate the social graph as a directed [`PropertyGraph`].
pub fn generate(cfg: &LdbcConfig) -> PropertyGraph {
    graph_from_edges(cfg.vertices, &generate_edges(cfg), false)
}

/// Generate the raw edge list (useful for CSR-only consumers).
pub fn generate_edges(cfg: &LdbcConfig) -> Vec<(u64, u64, f32)> {
    let n = cfg.vertices;
    if n < 2 {
        return Vec::new();
    }
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let dmax = (n / 4).clamp(2, 10_000);
    let degrees = degree_sequence(&mut rng, n, cfg.alpha, 1, dmax, cfg.avg_degree);

    // Preferential-attachment pool: vertex u appears deg(u)+1 times, so
    // global edges favor already-popular vertices.
    let mut pool: Vec<u64> = Vec::with_capacity(degrees.iter().sum::<usize>() + n);
    for (u, &d) in degrees.iter().enumerate() {
        for _ in 0..(d + 1).min(64) {
            pool.push(u as u64);
        }
    }

    let csize = cfg.community_size.max(2);
    let mut edges = Vec::with_capacity(degrees.iter().sum());
    for (u, &d) in degrees.iter().enumerate() {
        let community = u / csize;
        let clo = (community * csize) as u64;
        let chi = (((community + 1) * csize).min(n)) as u64;
        for _ in 0..d {
            let v = if rng.gen_range(0.0..1.0) < cfg.community_bias {
                rng.gen_range(clo..chi)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if v != u as u64 {
                edges.push((u as u64, v, 1.0));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_framework::prelude::GraphStats;

    fn small_cfg() -> LdbcConfig {
        LdbcConfig {
            vertices: 4000,
            avg_degree: 12.0,
            alpha: 2.3,
            community_size: 64,
            community_bias: 0.6,
            seed: 99,
        }
    }

    #[test]
    fn target_size_is_met() {
        let cfg = small_cfg();
        let g = generate(&cfg);
        assert_eq!(g.num_vertices(), 4000);
        let avg = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!(
            (avg - cfg.avg_degree).abs() < cfg.avg_degree * 0.25,
            "avg {avg}"
        );
    }

    #[test]
    fn degree_distribution_is_unbalanced_across_many_vertices() {
        let g = generate(&small_cfg());
        let s = GraphStats::compute(&g);
        assert!(s.degree_cv() > 0.8, "cv {}", s.degree_cv());
        // imbalance is not just a couple of hubs: count vertices with degree
        // above twice the mean
        let heavy = g
            .vertices()
            .filter(|v| v.out_degree() as f64 > 2.0 * s.avg_degree)
            .count();
        assert!(heavy > g.num_vertices() / 200, "heavy {heavy}");
    }

    #[test]
    fn community_bias_keeps_edges_local() {
        let cfg = small_cfg();
        let g = generate(&cfg);
        let csize = cfg.community_size as u64;
        let local = g
            .arcs()
            .filter(|(u, e)| u / csize == e.target / csize)
            .count();
        let frac = local as f64 / g.num_arcs() as f64;
        assert!(frac > 0.45, "local fraction {frac}");
    }

    #[test]
    fn no_self_loops() {
        let g = generate(&small_cfg());
        assert!(g.arcs().all(|(u, e)| u != e.target));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let e1 = generate_edges(&small_cfg());
        let e2 = generate_edges(&small_cfg());
        assert_eq!(e1, e2);
        let mut other = small_cfg();
        other.seed += 1;
        assert_ne!(e1, generate_edges(&other));
    }

    #[test]
    fn tiny_inputs_do_not_panic() {
        for n in 0..4 {
            let mut cfg = small_cfg();
            cfg.vertices = n;
            let g = generate(&cfg);
            assert_eq!(g.num_vertices(), n);
        }
    }
}
