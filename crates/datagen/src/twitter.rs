//! Twitter-like social graph generator (Table 2, Type 1).
//!
//! Stands in for the paper's sampled Twitter graph (11M vertices / 85M edges
//! in Table 7). The class features the paper relies on — and that this
//! generator reproduces at any scale — are:
//!
//! * "a few vertices with extremely higher degree" (Section 5.3's contrast
//!   with LDBC): a small celebrity set receives a huge share of edges;
//! * small shortest-path lengths and one large connected component;
//! * directed twit/retwit edges.

use crate::rng::Rng;
use graphbig_framework::PropertyGraph;

use crate::degree::{power_law_degree, Zipf};
use crate::graph_from_edges;

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct TwitterConfig {
    /// Number of users.
    pub vertices: usize,
    /// Target mean out-degree; Table 7's sampled Twitter has ≈7.7.
    pub avg_degree: f64,
    /// Fraction of vertices that are celebrities (absorb most in-edges).
    pub celebrity_fraction: f64,
    /// Fraction of edges pointed at the celebrity set.
    pub celebrity_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TwitterConfig {
    /// Twitter-like graph with `vertices` users and paper-default parameters.
    pub fn with_vertices(vertices: usize) -> Self {
        TwitterConfig {
            vertices,
            avg_degree: 85.0 / 11.0,
            celebrity_fraction: 0.001,
            celebrity_bias: 0.35,
            seed: 0x0771_77e4,
        }
    }
}

/// Generate the directed follow/retweet graph.
pub fn generate(cfg: &TwitterConfig) -> PropertyGraph {
    graph_from_edges(cfg.vertices, &generate_edges(cfg), false)
}

/// Generate the raw edge list.
pub fn generate_edges(cfg: &TwitterConfig) -> Vec<(u64, u64, f32)> {
    let n = cfg.vertices;
    if n < 2 {
        return Vec::new();
    }
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let n_celebs = ((n as f64 * cfg.celebrity_fraction) as usize).clamp(1, n / 2);
    // Celebrity popularity itself is Zipf-distributed: celebrity 0 dwarfs
    // celebrity 100, producing the "few extreme hubs" profile.
    let celeb_zipf = Zipf::new(n_celebs, 1.1);

    let m_target = (n as f64 * cfg.avg_degree) as usize;
    let mut edges = Vec::with_capacity(m_target);
    let mut u = 0usize;
    while edges.len() < m_target {
        // Out-degrees are power-law too, but bounded: ordinary users.
        let d = power_law_degree(&mut rng, 2.1, 1, 500).min(m_target - edges.len());
        for _ in 0..d {
            let v = if rng.gen_range(0.0..1.0) < cfg.celebrity_bias {
                celeb_zipf.sample(&mut rng) as u64
            } else {
                rng.gen_range(0..n as u64)
            };
            if v != u as u64 {
                edges.push((u as u64, v, 1.0));
            }
        }
        u = (u + 1) % n;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_framework::prelude::GraphStats;

    fn cfg() -> TwitterConfig {
        TwitterConfig::with_vertices(20_000)
    }

    #[test]
    fn edge_count_tracks_table7_ratio() {
        let g = generate(&cfg());
        let ratio = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!((ratio - 85.0 / 11.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn a_few_extreme_hubs_exist() {
        let g = generate(&cfg());
        // In-degree concentration: the top vertex absorbs far more than its
        // share. Use the parents list as in-degree.
        let mut indeg: Vec<usize> = g.vertices().map(|v| v.in_degree()).collect();
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = indeg.iter().sum();
        let top10: usize = indeg.iter().take(10).sum();
        assert!(
            top10 as f64 > total as f64 * 0.10,
            "top-10 vertices hold {top10}/{total} in-edges"
        );
        // ... while out-degrees stay moderate (users, not hubs)
        let s = GraphStats::compute(&g);
        assert!(s.max_degree < g.num_vertices() / 4);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_edges(&cfg()), generate_edges(&cfg()));
    }

    #[test]
    fn no_self_loops() {
        let g = generate(&cfg());
        assert!(g.arcs().all(|(u, e)| u != e.target));
    }

    #[test]
    fn tiny_graphs_ok() {
        for n in 0..4 {
            let mut c = cfg();
            c.vertices = n;
            let g = generate(&c);
            assert_eq!(g.num_vertices(), n);
        }
    }
}
