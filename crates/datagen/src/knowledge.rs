//! Knowledge-repository-like bipartite graph generator (Table 2, Type 2).
//!
//! Stands in for IBM Knowledge Repo: "two types of vertices, users and
//! documents, form up a bipartite graph; an edge represents a particular
//! document is accessed by a user" (Section 4.3). Information-network
//! features per Table 2: large vertex degrees and large two-hop
//! neighbourhoods — produced here by Zipf-popular documents that connect
//! many users to each other at distance two.
//!
//! Vertices carry a `LABEL` property marking their side ("user"/"doc").

use crate::rng::Rng;
use graphbig_framework::property::{keys, Property};
use graphbig_framework::PropertyGraph;

use crate::degree::{power_law_degree, Zipf};
use crate::graph_from_edges;

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct KnowledgeConfig {
    /// Total vertices (users + documents); Table 7 has 154K.
    pub vertices: usize,
    /// Fraction of vertices that are documents.
    pub doc_fraction: f64,
    /// Target mean degree over all vertices; Table 7's ratio is ≈11.2.
    pub avg_degree: f64,
    /// Zipf exponent of document popularity.
    pub popularity_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl KnowledgeConfig {
    /// Knowledge-repo-like graph with `vertices` total vertices.
    pub fn with_vertices(vertices: usize) -> Self {
        KnowledgeConfig {
            vertices,
            doc_fraction: 0.4,
            avg_degree: 1_720.0 / 154.0,
            popularity_exponent: 0.9,
            seed: 0x5e9c,
        }
    }

    /// Number of user vertices (ids `0..num_users`).
    pub fn num_users(&self) -> usize {
        self.vertices - self.num_docs()
    }

    /// Number of document vertices (ids `num_users..vertices`).
    pub fn num_docs(&self) -> usize {
        ((self.vertices as f64 * self.doc_fraction) as usize)
            .clamp(1, self.vertices.saturating_sub(1).max(1))
    }
}

/// Generate the bipartite access graph (undirected user — document access
/// edges, stored as arc pairs) with `LABEL` properties on every vertex.
pub fn generate(cfg: &KnowledgeConfig) -> PropertyGraph {
    let mut g = graph_from_edges(cfg.vertices, &generate_edges(cfg), true);
    let users = cfg.num_users() as u64;
    let ids: Vec<u64> = g.vertex_ids().to_vec();
    for id in ids {
        let label = if id < users { "user" } else { "doc" };
        g.set_vertex_prop(id, keys::LABEL, Property::Text(label.into()))
            .expect("vertex exists");
    }
    g
}

/// Generate the raw edge list: `(user, doc, weight)` tuples with documents
/// numbered after users.
pub fn generate_edges(cfg: &KnowledgeConfig) -> Vec<(u64, u64, f32)> {
    if cfg.vertices < 2 {
        return Vec::new();
    }
    let users = cfg.num_users();
    let docs = cfg.num_docs();
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(docs, cfg.popularity_exponent);
    let m_target = (cfg.vertices as f64 * cfg.avg_degree) as usize;
    let mut edges = Vec::with_capacity(m_target);
    let mut u = 0usize;
    while edges.len() < m_target {
        // Each user accesses a power-law number of documents.
        let d = power_law_degree(&mut rng, 1.8, 1, 400).min(m_target - edges.len());
        for _ in 0..d {
            let doc = users + zipf.sample(&mut rng);
            edges.push((u as u64, doc as u64, 1.0));
        }
        u = (u + 1) % users.max(1);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> KnowledgeConfig {
        KnowledgeConfig::with_vertices(10_000)
    }

    #[test]
    fn graph_is_bipartite() {
        let c = cfg();
        let g = generate(&c);
        let users = c.num_users() as u64;
        for (u, e) in g.arcs() {
            assert!(
                (u < users) != (e.target < users),
                "arc {u}->{} must connect a user and a doc",
                e.target
            );
        }
    }

    #[test]
    fn labels_mark_both_sides() {
        let c = cfg();
        let g = generate(&c);
        let users = c.num_users() as u64;
        assert_eq!(
            g.get_vertex_prop(0, keys::LABEL).unwrap().as_text(),
            Some("user")
        );
        assert_eq!(
            g.get_vertex_prop(users, keys::LABEL).unwrap().as_text(),
            Some("doc")
        );
    }

    #[test]
    fn popular_documents_have_large_in_degree() {
        let c = cfg();
        let g = generate(&c);
        let users = c.num_users() as u64;
        // document rank 0 (vertex `users`) should dominate
        let top = g.find_vertex(users).unwrap().in_degree();
        let mid = g
            .find_vertex(users + (c.num_docs() / 2) as u64)
            .unwrap()
            .in_degree();
        assert!(top > mid * 3, "top {top}, mid {mid}");
    }

    #[test]
    fn edge_volume_matches_ratio() {
        // undirected: each access stored as two arcs
        let c = cfg();
        let g = generate(&c);
        let ratio = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!((ratio - 2.0 * c.avg_degree).abs() < 3.0, "ratio {ratio}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_edges(&cfg()), generate_edges(&cfg()));
    }
}
