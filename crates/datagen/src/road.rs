//! Road-network-like generator (Table 2, Type 4 "man-made technology
//! network").
//!
//! Stands in for the SNAP CA road network: "intersections and endpoints are
//! represented by nodes and the roads connecting \[them\] by undirected edges"
//! (Section 4.3). Man-made network features per Table 2 — regular topology,
//! small vertex degrees — come from a perturbed planar grid:
//!
//! * vertices sit on a √n × √n lattice; edges connect lattice neighbors;
//! * a fraction of lattice edges is deleted (rivers, mountains) and a few
//!   diagonal shortcuts added (highways), landing the mean degree at the CA
//!   network's ≈2.9 (2×2.8M/1.9M arcs per vertex) with a huge diameter;
//! * edge weights are Euclidean-ish road lengths, giving SPath a meaningful
//!   metric.

use crate::rng::Rng;
use graphbig_framework::PropertyGraph;

use crate::graph_from_edges;

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct RoadConfig {
    /// Number of intersections; Table 7's CA network has 1.9M.
    pub vertices: usize,
    /// Probability that a lattice edge exists (deletion models obstacles).
    pub keep_probability: f64,
    /// Probability of adding a diagonal shortcut at each cell.
    pub shortcut_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RoadConfig {
    /// Road-like network with `vertices` intersections; defaults land the
    /// undirected mean degree near CA's ≈2.9.
    pub fn with_vertices(vertices: usize) -> Self {
        RoadConfig {
            vertices,
            keep_probability: 0.73,
            shortcut_probability: 0.02,
            seed: 0x40ad,
        }
    }

    /// Lattice side length.
    pub fn side(&self) -> usize {
        (self.vertices as f64).sqrt().ceil() as usize
    }
}

/// Generate the undirected road graph.
pub fn generate(cfg: &RoadConfig) -> PropertyGraph {
    graph_from_edges(cfg.vertices, &generate_edges(cfg), true)
}

/// Generate the raw undirected edge list (each road once).
pub fn generate_edges(cfg: &RoadConfig) -> Vec<(u64, u64, f32)> {
    let n = cfg.vertices;
    if n < 2 {
        return Vec::new();
    }
    let side = cfg.side();
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut edges = Vec::with_capacity(n * 2);
    let index = |x: usize, y: usize| (y * side + x) as u64;
    for y in 0..side {
        for x in 0..side {
            let u = index(x, y);
            if u as usize >= n {
                continue;
            }
            // Road lengths vary a little around the unit grid spacing.
            let mut road = |v: u64, len: f32, rng: &mut Rng| {
                if (v as usize) < n {
                    let w = len * rng.gen_range(0.8f32..1.2);
                    edges.push((u, v, w));
                }
            };
            if x + 1 < side && rng.gen_range(0.0..1.0) < cfg.keep_probability {
                road(index(x + 1, y), 1.0, &mut rng);
            }
            if y + 1 < side && rng.gen_range(0.0..1.0) < cfg.keep_probability {
                road(index(x, y + 1), 1.0, &mut rng);
            }
            if x + 1 < side && y + 1 < side && rng.gen_range(0.0..1.0) < cfg.shortcut_probability {
                road(index(x + 1, y + 1), std::f32::consts::SQRT_2, &mut rng);
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_framework::prelude::GraphStats;

    fn cfg() -> RoadConfig {
        RoadConfig::with_vertices(10_000)
    }

    #[test]
    fn degrees_are_small_and_regular() {
        let g = generate(&cfg());
        let s = GraphStats::compute(&g);
        // CA road network: mean degree ~2.9 (counting arcs per vertex)
        assert!(
            (s.avg_degree - 2.9).abs() < 0.5,
            "avg degree {}",
            s.avg_degree
        );
        assert!(s.max_degree <= 8, "max degree {}", s.max_degree);
        assert!(s.degree_cv() < 0.5, "cv {}", s.degree_cv());
    }

    #[test]
    fn edges_are_between_lattice_neighbors() {
        let c = cfg();
        let side = c.side() as i64;
        let g = generate(&c);
        for (u, e) in g.arcs() {
            let (ux, uy) = ((u as i64) % side, (u as i64) / side);
            let (vx, vy) = ((e.target as i64) % side, (e.target as i64) / side);
            assert!(
                (ux - vx).abs() <= 1 && (uy - vy).abs() <= 1,
                "{u}->{}",
                e.target
            );
        }
    }

    #[test]
    fn weights_look_like_road_lengths() {
        let g = generate(&cfg());
        for (_, e) in g.arcs().take(1000) {
            assert!(e.weight > 0.5 && e.weight < 2.0, "weight {}", e.weight);
        }
    }

    #[test]
    fn graph_is_undirected() {
        let g = generate(&cfg());
        for (u, e) in g.arcs().take(500) {
            assert!(g.has_edge(e.target, u));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_edges(&cfg()), generate_edges(&cfg()));
    }

    #[test]
    fn tiny_and_nonsquare_sizes_ok() {
        for n in [0usize, 1, 2, 3, 7, 10] {
            let mut c = cfg();
            c.vertices = n;
            let g = generate(&c);
            assert_eq!(g.num_vertices(), n);
        }
    }
}
