//! Gene-network-like generator (Table 2, Type 3 "nature network").
//!
//! Stands in for the IBM Watson Gene graph: "representing the relationships
//! between gene, chemical, and drug" (Section 4.3). Nature networks per
//! Table 2 have *structured topology* and *complex properties*:
//!
//! * vertices are grouped into functional modules with dense intra-module
//!   and sparse inter-module connectivity (the structured topology that
//!   gives Watson-gene its "small-size local subgraphs" in Section 5.3);
//! * every vertex carries a rich `PAYLOAD` vector property (expression
//!   levels / affinity profiles) and a `LABEL` naming its entity class.

use crate::rng::Rng;
use graphbig_framework::property::{keys, Property};
use graphbig_framework::PropertyGraph;

use crate::graph_from_edges;

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct GeneConfig {
    /// Number of vertices; Table 7's Watson Gene graph has 2M.
    pub vertices: usize,
    /// Target mean degree; Table 7's ratio is 12.2M/2M = 6.1.
    pub avg_degree: f64,
    /// Mean module (pathway) size.
    pub module_size: usize,
    /// Fraction of edges that stay inside the module.
    pub module_bias: f64,
    /// Length of the per-vertex payload vector.
    pub payload_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GeneConfig {
    /// Gene-network-like graph with `vertices` vertices.
    pub fn with_vertices(vertices: usize) -> Self {
        GeneConfig {
            vertices,
            avg_degree: 6.1,
            module_size: 48,
            module_bias: 0.85,
            payload_len: 16,
            seed: 0x9e4e,
        }
    }
}

/// Entity classes cycled over vertex ids.
const CLASSES: [&str; 3] = ["gene", "chemical", "drug"];

/// Generate the module-structured undirected graph with rich properties.
pub fn generate(cfg: &GeneConfig) -> PropertyGraph {
    let mut g = graph_from_edges(cfg.vertices, &generate_edges(cfg), true);
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xfeed);
    let ids: Vec<u64> = g.vertex_ids().to_vec();
    for id in ids {
        let class = CLASSES[(id % 3) as usize];
        let payload: Vec<f64> = (0..cfg.payload_len)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        g.set_vertex_prop(id, keys::LABEL, Property::Text(class.into()))
            .expect("vertex exists");
        g.set_vertex_prop(id, keys::PAYLOAD, Property::Vector(payload))
            .expect("vertex exists");
    }
    g
}

/// Generate the raw undirected edge list (each pair once).
pub fn generate_edges(cfg: &GeneConfig) -> Vec<(u64, u64, f32)> {
    let n = cfg.vertices;
    if n < 2 {
        return Vec::new();
    }
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let msize = cfg.module_size.max(2);
    // `avg_degree` counts unique undirected edges per vertex (Table 7's
    // 12.2M/2M); each stored twice, total degree is 2x this.
    let m_target = (n as f64 * cfg.avg_degree) as usize;
    let mut edges = Vec::with_capacity(m_target);
    while edges.len() < m_target {
        let u = rng.gen_range(0..n as u64);
        let module = u as usize / msize;
        let v = if rng.gen_range(0.0..1.0) < cfg.module_bias {
            let lo = (module * msize) as u64;
            let hi = ((module + 1) * msize).min(n) as u64;
            rng.gen_range(lo..hi)
        } else {
            rng.gen_range(0..n as u64)
        };
        if u != v {
            edges.push((u, v, 1.0));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GeneConfig {
        GeneConfig::with_vertices(6_000)
    }

    #[test]
    fn degree_matches_watson_ratio() {
        let g = generate(&cfg());
        // undirected edges stored as two arcs -> arcs/V ~ 2 * avg_degree
        let ratio = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!((ratio - 12.2).abs() < 2.0, "ratio {ratio}");
    }

    #[test]
    fn topology_is_modular() {
        let c = cfg();
        let g = generate(&c);
        let m = c.module_size as u64;
        let local = g.arcs().filter(|(u, e)| u / m == e.target / m).count();
        let frac = local as f64 / g.num_arcs() as f64;
        assert!(frac > 0.7, "intra-module fraction {frac}");
    }

    #[test]
    fn vertices_carry_rich_properties() {
        let c = cfg();
        let g = generate(&c);
        for id in [0u64, 1, 2, 100] {
            let label = g
                .get_vertex_prop(id, keys::LABEL)
                .unwrap()
                .as_text()
                .unwrap();
            assert!(CLASSES.contains(&label));
            let payload = g
                .get_vertex_prop(id, keys::PAYLOAD)
                .unwrap()
                .as_vector()
                .unwrap();
            assert_eq!(payload.len(), c.payload_len);
            assert!(payload.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn edges_are_symmetric() {
        let g = generate(&cfg());
        for (u, e) in g.arcs().take(500) {
            assert!(
                g.has_edge(e.target, u),
                "missing reverse of {u}->{}",
                e.target
            );
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_edges(&cfg()), generate_edges(&cfg()));
    }
}
