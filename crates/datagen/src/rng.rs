//! The in-tree deterministic PRNG: xoshiro256++ seeded through SplitMix64.
//!
//! Every stochastic piece of the suite (dataset generators, Gibbs sweeps,
//! property-test case generation) draws from this generator instead of an
//! external `rand` crate, so the whole workspace builds offline and every
//! stream is reproducible from a single `u64` seed across platforms and
//! toolchain versions.
//!
//! The algorithms are the public-domain reference constructions by
//! Blackman & Vigna: [`SplitMix64`] expands one seed word into the four
//! 256-bit state words (it is equidistributed, so no seed produces the
//! all-zero state xoshiro must avoid), and xoshiro256++ generates the
//! stream. Floats use the standard 53-bit mantissa construction; bounded
//! integers use rejection-free multiply-shift (Lemire) with a widening
//! 128-bit product.
//!
//! Migrating from `rand::rngs::SmallRng` is mechanical: the constructor
//! and the `gen_range` / `gen_bool` calls keep their names, accepting the
//! same range expressions the generators already used. **Streams differ**
//! from `SmallRng` — EXPERIMENTS.md "Reproducing offline" records the
//! regenerated per-dataset statistics.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, equidistributed 64-bit generator used to expand a
/// single seed word into larger state (its intended role per Vigna).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a SplitMix64 stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++: the suite's general-purpose deterministic generator.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; the `++` output
/// scrambler (rotl(s0 + s3, 23) + s0) avoids the low-linearity weakness of
/// the `+` variant's low bits.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the generator from a single word via SplitMix64 expansion —
    /// the drop-in replacement for `SmallRng::seed_from_u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw below `bound` (never 0) via Lemire's multiply-shift.
    ///
    /// The bias of the shortcut (skipping the rejection loop) is below
    /// 2^-64 × bound — immaterial at graph-generator scales.
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniform draw from `range` — accepts the same `Range` /
    /// `RangeInclusive` expressions over `u64` / `u32` / `usize` / `f64`
    /// the generators passed to `rand`'s method of the same name.
    ///
    /// Panics on empty ranges, matching `rand`'s contract.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle driven by this generator.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.u64_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// A range type [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform value.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),+) => {
        $(
            impl SampleRange for Range<$t> {
                type Output = $t;
                #[inline]
                fn sample(self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.u64_below(span) as $t
                }
            }

            impl SampleRange for RangeInclusive<$t> {
                type Output = $t;
                #[inline]
                fn sample(self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.u64_below(span + 1) as $t
                }
            }
        )+
    };
}

int_range!(u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.f64() as f32 * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from Vigna's splitmix64.c.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        // Chi-square-ish sanity: 16 buckets over 64k draws should each see
        // 4096 ± a generous margin.
        let mut rng = Rng::seed_from_u64(99);
        let mut buckets = [0u32; 16];
        for _ in 0..65_536 {
            buckets[rng.gen_range(0usize..16)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((3600..4600).contains(&b), "bucket {i} has {b}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn zero_seed_is_usable() {
        // SplitMix64 expansion guarantees a non-zero xoshiro state even
        // for seed 0.
        let mut rng = Rng::seed_from_u64(0);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
    }
}
