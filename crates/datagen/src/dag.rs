//! Random layered DAG generator — the input of the TMorph workload
//! ("generates an undirected moral graph from a directed-acyclic graph").

use crate::rng::Rng;
use graphbig_framework::PropertyGraph;

use crate::graph_from_edges;

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct DagConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of layers; edges always go from a lower to a higher layer.
    pub layers: usize,
    /// Maximum number of parents per vertex.
    pub max_parents: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DagConfig {
    /// Layered DAG with `vertices` vertices and defaults suitable for
    /// moralization workloads.
    pub fn with_vertices(vertices: usize) -> Self {
        DagConfig {
            vertices,
            layers: (vertices as f64).sqrt().ceil() as usize,
            max_parents: 3,
            seed: 0xda6,
        }
    }
}

/// Generate the DAG: every edge goes from an earlier layer to a later one,
/// so the result is acyclic by construction.
pub fn generate(cfg: &DagConfig) -> PropertyGraph {
    graph_from_edges(cfg.vertices, &generate_edges(cfg), false)
}

/// Generate the raw edge list.
pub fn generate_edges(cfg: &DagConfig) -> Vec<(u64, u64, f32)> {
    let n = cfg.vertices;
    if n < 2 {
        return Vec::new();
    }
    let layers = cfg.layers.clamp(2, n);
    let per_layer = n.div_ceil(layers);
    let layer_of = |v: usize| v / per_layer;
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut edges = Vec::new();
    let mut parents: Vec<u64> = Vec::with_capacity(cfg.max_parents);
    for v in per_layer..n {
        let lv = layer_of(v);
        let n_parents = rng.gen_range(1..=cfg.max_parents.max(1));
        parents.clear();
        for _ in 0..n_parents {
            // Parent from any strictly earlier layer, biased to the previous.
            let pl = if rng.gen_range(0.0..1.0) < 0.7 {
                lv - 1
            } else {
                rng.gen_range(0..lv)
            };
            let lo = pl * per_layer;
            let hi = ((pl + 1) * per_layer).min(n);
            let p = rng.gen_range(lo..hi) as u64;
            if !parents.contains(&p) {
                parents.push(p);
                edges.push((p, v as u64, 1.0));
            }
        }
    }
    edges
}

/// Check that a graph is a DAG via Kahn's algorithm (test/diagnostic aid).
pub fn is_acyclic(g: &PropertyGraph) -> bool {
    let ids: Vec<u64> = g.vertex_ids().to_vec();
    let mut indeg: std::collections::HashMap<u64, usize> = ids.iter().map(|&id| (id, 0)).collect();
    for (_, e) in g.arcs() {
        *indeg.get_mut(&e.target).expect("target exists") += 1;
    }
    let mut queue: Vec<u64> = ids.iter().copied().filter(|id| indeg[id] == 0).collect();
    let mut seen = 0usize;
    while let Some(u) = queue.pop() {
        seen += 1;
        for e in g.neighbors(u) {
            let d = indeg.get_mut(&e.target).expect("target exists");
            *d -= 1;
            if *d == 0 {
                queue.push(e.target);
            }
        }
    }
    seen == ids.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DagConfig {
        DagConfig::with_vertices(2_000)
    }

    #[test]
    fn generated_graph_is_acyclic() {
        let g = generate(&cfg());
        assert!(is_acyclic(&g));
    }

    #[test]
    fn edges_point_forward_in_vertex_order() {
        // With per-layer blocks of consecutive ids, every edge goes from a
        // smaller block; in particular no edge is a self-loop.
        let g = generate(&cfg());
        for (u, e) in g.arcs() {
            assert_ne!(u, e.target);
        }
    }

    #[test]
    fn most_vertices_have_parents() {
        let c = cfg();
        let g = generate(&c);
        let with_parents = g.vertices().filter(|v| v.in_degree() > 0).count();
        assert!(with_parents > c.vertices / 2);
    }

    #[test]
    fn max_parents_is_respected_roughly() {
        let c = DagConfig {
            max_parents: 2,
            ..cfg()
        };
        let g = generate(&c);
        // duplicates allowed early on; in-degree stays small regardless
        let max_in = g.vertices().map(|v| v.in_degree()).max().unwrap();
        assert!(max_in <= 16, "max in-degree {max_in}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_edges(&cfg()), generate_edges(&cfg()));
    }

    #[test]
    fn is_acyclic_detects_cycles() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge(a, b, 1.0).unwrap();
        assert!(is_acyclic(&g));
        g.add_edge(b, a, 1.0).unwrap();
        assert!(!is_acyclic(&g));
    }
}
