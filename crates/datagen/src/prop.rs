//! The in-tree property-test harness: seeded case generation plus
//! shrink-by-halving, reusing the suite's own PRNG ([`crate::rng::Rng`]).
//!
//! This replaces `proptest` for the workspace's five property suites. The
//! model is deliberately small:
//!
//! * a **generator** is any `Fn(&mut Rng) -> T` closure — compose cases
//!   with ordinary code and `gen_range`, no strategy combinators;
//! * a **property** is any `Fn(&T)` closure that panics on violation —
//!   plain `assert!` / `assert_eq!`, no macro dialect;
//! * [`check`] runs the property over `cases` freshly generated inputs
//!   (each from its own deterministic seed), and on the first failure
//!   **shrinks by halving**: integers halve toward the origin, vectors
//!   drop half their elements (front half, back half, or every other
//!   element), tuples shrink componentwise. The minimal failing case, its
//!   case index, and the reproduction seed all land in the panic message.
//!
//! Reproduction: every failure prints a `GRAPHBIG_PROP_SEED` value; set
//! that variable (and optionally `GRAPHBIG_PROP_CASES=1`) to replay the
//! failing stream. Case streams are independent of thread scheduling and
//! platform.

use crate::rng::{Rng, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How many shrink candidates to try before accepting the current minimum.
const MAX_SHRINK_STEPS: usize = 400;

/// Tuning for one [`check`] run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases (proptest's `ProptestConfig::with_cases`).
    pub cases: u64,
    /// Base seed for the case stream; case `i` derives its own PRNG from
    /// `splitmix(seed)[i]`.
    pub seed: u64,
}

impl Config {
    /// `cases` generated inputs from the default (env-overridable) seed.
    pub fn with_cases(cases: u64) -> Self {
        let seed = std::env::var("GRAPHBIG_PROP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xB16_B00B5_u64);
        let cases = std::env::var("GRAPHBIG_PROP_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(cases);
        Config { cases, seed }
    }
}

/// Types the shrinker knows how to halve. Implemented for the shapes the
/// suites generate; everything else can opt out (no candidates) and still
/// run under [`check`], just without minimization.
pub trait Shrink: Sized {
    /// Strictly "smaller" variants of `self`, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! shrink_int {
    ($($t:ty),+) => {
        $(
            impl Shrink for $t {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let mut out = Vec::new();
                    if *self != 0 {
                        out.push(*self / 2);
                        if *self > 1 {
                            out.push(*self - 1);
                        }
                    }
                    out
                }
            }
        )+
    };
}

shrink_int!(u8, u16, u32, u64, usize, i32, i64);

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {}

impl Shrink for String {
    fn shrink_candidates(&self) -> Vec<Self> {
        if self.is_empty() {
            return Vec::new();
        }
        let half = self.chars().count() / 2;
        vec![self.chars().take(half).collect()]
    }
}

impl<T: Clone> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut out = vec![
            self[..n / 2].to_vec(),
            self[n / 2..].to_vec(),
            self.iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == 0)
                .map(|(_, v)| v.clone())
                .collect(),
        ];
        if n > 1 {
            out.push(self[..n - 1].to_vec());
        }
        out.retain(|c| c.len() < n);
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink_candidates()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect();
        out.extend(
            self.1
                .shrink_candidates()
                .into_iter()
                .map(|b| (self.0.clone(), b)),
        );
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone, C: Shrink + Clone> Shrink for (A, B, C) {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink_candidates()
            .into_iter()
            .map(|a| (a, self.1.clone(), self.2.clone()))
            .collect();
        out.extend(
            self.1
                .shrink_candidates()
                .into_iter()
                .map(|b| (self.0.clone(), b, self.2.clone())),
        );
        out.extend(
            self.2
                .shrink_candidates()
                .into_iter()
                .map(|c| (self.0.clone(), self.1.clone(), c)),
        );
        out
    }
}

fn fails<T>(prop: &impl Fn(&T), value: &T) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => None,
        Err(payload) => Some(panic_message(&payload)),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `prop` over `cfg.cases` inputs drawn from `gen`; panic with the
/// minimal (halving-shrunk) failing case on violation.
pub fn check<T, G, P>(name: &str, cfg: Config, gen: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T),
{
    let mut seeds = SplitMix64::new(cfg.seed);
    for case in 0..cfg.cases {
        let case_seed = seeds.next_u64();
        let mut rng = Rng::seed_from_u64(case_seed);
        let value = gen(&mut rng);
        if let Some(first_msg) = fails(&prop, &value) {
            let (minimal, msg, steps) = shrink(value, first_msg, &prop);
            panic!(
                "property '{name}' failed at case {case}/{} \
                 (reproduce with GRAPHBIG_PROP_SEED={})\n\
                 minimal failing case after {steps} shrink steps:\n{minimal:#?}\n\
                 failure: {msg}",
                cfg.cases, cfg.seed,
            );
        }
    }
}

/// Greedy shrink loop: repeatedly move to the first halving candidate that
/// still fails, until no candidate fails or the step budget runs out.
fn shrink<T, P>(mut current: T, mut msg: String, prop: &P) -> (T, String, usize)
where
    T: Clone + std::fmt::Debug + Shrink,
    P: Fn(&T),
{
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for cand in current.shrink_candidates() {
            steps += 1;
            if let Some(m) = fails(prop, &cand) {
                current = cand;
                msg = m;
                continue 'outer;
            }
            if steps >= MAX_SHRINK_STEPS {
                break;
            }
        }
        break;
    }
    (current, msg, steps)
}

/// Generator helper: a `len`-range vector of draws from `item`.
pub fn vec_of<T>(
    rng: &mut Rng,
    len: std::ops::Range<usize>,
    mut item: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = if len.start > len.end.saturating_sub(1) {
        len.start
    } else {
        rng.gen_range(len.start..len.end)
    };
    (0..n).map(|_| item(rng)).collect()
}

/// Generator helper: a lowercase ASCII string with length in `len`
/// (the replacement for proptest's `"[a-z]{0,8}"` regex strategies).
pub fn lowercase_string(rng: &mut Rng, len: std::ops::RangeInclusive<usize>) -> String {
    let n = rng.gen_range(*len.start()..=*len.end());
    (0..n)
        .map(|_| (b'a' + rng.gen_range(0u32..26) as u8) as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u64;
        let counter = std::cell::Cell::new(0u64);
        check(
            "sum-commutes",
            Config { cases: 32, seed: 1 },
            |rng| (rng.gen_range(0u64..100), rng.gen_range(0u64..100)),
            |&(a, b)| {
                counter.set(counter.get() + 1);
                assert_eq!(a + b, b + a);
            },
        );
        ran += counter.get();
        assert_eq!(ran, 32);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_vector() {
        // Property: "no vector contains an element >= 50". The minimal
        // counterexample is a single offending element.
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "all-small",
                Config { cases: 64, seed: 2 },
                |rng| vec_of(rng, 0..20, |r| r.gen_range(0u64..100)),
                |xs| assert!(xs.iter().all(|&x| x < 50), "found big element"),
            );
        }));
        let msg = panic_message(&result.unwrap_err());
        assert!(msg.contains("minimal failing case"), "{msg}");
        assert!(msg.contains("GRAPHBIG_PROP_SEED"), "{msg}");
        // The shrunk vector should be down to exactly one element.
        let ones = msg.matches("50").count() + msg.matches("5").count();
        assert!(ones > 0);
    }

    #[test]
    fn integers_shrink_toward_zero() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "below-17",
                Config { cases: 64, seed: 3 },
                |rng| rng.gen_range(0u64..1000),
                |&x| assert!(x < 17),
            );
        }));
        let msg = panic_message(&result.unwrap_err());
        // Halving + decrement reaches the boundary counterexample exactly.
        assert!(msg.contains("17"), "{msg}");
    }

    #[test]
    fn case_streams_are_deterministic() {
        let collect = |seed| {
            let mut out = Vec::new();
            let cell = std::cell::RefCell::new(&mut out);
            check(
                "collect",
                Config { cases: 8, seed },
                |rng| rng.gen_range(0u64..1_000_000),
                |&x| cell.borrow_mut().push(x),
            );
            out
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn string_helper_respects_charset_and_length() {
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..200 {
            let s = lowercase_string(&mut rng, 0..=8);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
