//! Bayesian-network generator — the input of the Gibbs inference workload.
//!
//! The paper uses the MUNIN expert-EMG network: "1041 vertices, 1397 edges,
//! and 80592 parameters" (Section 5.1). MUNIN itself ships under a
//! restrictive license, so [`BayesConfig::munin_like`] generates a network
//! with exactly those vertex/edge counts and a parameter total within 1% of
//! MUNIN's, with similar structure (sparse DAG, small parent sets, mixed
//! arities). Gibbs sampling only interacts with the DAG shape and the CPT
//! tables, so this preserves the workload's behavior: heavy numeric reads of
//! per-vertex probability tables — the defining CompProp pattern.
//!
//! Each vertex carries:
//! * `CPT` — a `Property::Vector` of length `arity × Π parent arities`,
//!   where each consecutive block of `arity` entries is a normalized
//!   conditional distribution for one parent configuration;
//! * `STATUS` — the variable's arity as an integer;
//! * `SAMPLE` — the current sampled state (initialized to 0).

use crate::rng::Rng;
use graphbig_framework::property::{keys, Property};
use graphbig_framework::{PropertyGraph, VertexId};

use crate::dag::{self, DagConfig};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct BayesConfig {
    /// Number of variables.
    pub vertices: usize,
    /// Number of parent->child edges.
    pub edges: usize,
    /// Target total CPT parameter count.
    pub target_parameters: usize,
    /// Maximum variable arity.
    pub max_arity: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BayesConfig {
    /// The MUNIN-shaped default: 1041 vertices, 1397 edges, ≈80 592
    /// parameters.
    pub fn munin_like() -> Self {
        BayesConfig {
            vertices: 1041,
            edges: 1397,
            target_parameters: 80_592,
            max_arity: 21,
            seed: 0xb8e5,
        }
    }

    /// A scaled variant keeping MUNIN's edge/vertex and parameter/vertex
    /// ratios.
    pub fn with_vertices(vertices: usize) -> Self {
        let scale = vertices as f64 / 1041.0;
        BayesConfig {
            vertices,
            edges: (1397.0 * scale) as usize,
            target_parameters: (80_592.0 * scale) as usize,
            max_arity: 21,
            seed: 0xb8e5,
        }
    }
}

/// A generated Bayesian network: the property graph plus arity metadata.
#[derive(Debug)]
pub struct BayesNet {
    /// The DAG with CPT/arity/sample properties attached to every vertex.
    pub graph: PropertyGraph,
    /// Arity per vertex id (also stored in the `STATUS` property).
    pub arities: Vec<usize>,
    /// Total CPT parameters across all vertices.
    pub total_parameters: usize,
}

/// Generate a Bayesian network per `cfg`.
pub fn generate(cfg: &BayesConfig) -> BayesNet {
    let n = cfg.vertices;
    let mut rng = Rng::seed_from_u64(cfg.seed);

    // 1. Structure: a layered DAG trimmed/padded to the exact edge count.
    let dag_cfg = DagConfig {
        vertices: n,
        layers: (n as f64).sqrt().ceil() as usize,
        max_parents: 3,
        seed: cfg.seed,
    };
    let mut edges = dag::generate_edges(&dag_cfg);
    edges.truncate(cfg.edges);
    // Pad with forward edges if the DAG came up short.
    let mut attempts = 0;
    while edges.len() < cfg.edges && n >= 2 && attempts < cfg.edges * 20 {
        attempts += 1;
        let u = rng.gen_range(0..n as u64 - 1);
        let v = rng.gen_range(u + 1..n as u64);
        if !edges.iter().any(|&(a, b, _)| a == u && b == v) {
            edges.push((u, v, 1.0));
        }
    }
    let mut graph = crate::graph_from_edges(n, &edges, false);

    // 2. Arities: start at 2, then grow random vertices until the total CPT
    //    parameter count reaches the target.
    let mut arities = vec![2usize; n];
    let parents_of: Vec<Vec<VertexId>> =
        (0..n as u64).map(|v| graph.parents(v).collect()).collect();
    let cpt_size = |arities: &[usize], v: usize| -> usize {
        let mut size = arities[v];
        for &p in &parents_of[v] {
            size = size.saturating_mul(arities[p as usize]);
        }
        size
    };
    let mut total: usize = (0..n)
        .map(|v| cpt_size(&arities, v))
        .collect::<Vec<_>>()
        .iter()
        .sum();
    let mut stall = 0;
    while total < cfg.target_parameters && stall < 100_000 {
        let v = rng.gen_range(0..n);
        if arities[v] >= cfg.max_arity {
            stall += 1;
            continue;
        }
        // Growing v's arity changes v's own CPT and every child's CPT.
        let mut delta = 0isize;
        delta -= cpt_size(&arities, v) as isize;
        let children: Vec<usize> = graph
            .neighbors(v as u64)
            .map(|e| e.target as usize)
            .collect();
        for &c in &children {
            delta -= cpt_size(&arities, c) as isize;
        }
        arities[v] += 1;
        delta += cpt_size(&arities, v) as isize;
        for &c in &children {
            delta += cpt_size(&arities, c) as isize;
        }
        let new_total = (total as isize + delta) as usize;
        if new_total > cfg.target_parameters + cfg.target_parameters / 100 {
            arities[v] -= 1; // overshoot: revert and try another vertex
            stall += 1;
        } else {
            total = new_total;
            stall = 0;
        }
    }

    // 3. Attach CPTs: random positive entries, normalized per parent
    //    configuration.
    for v in 0..n {
        let size = cpt_size(&arities, v);
        let arity = arities[v];
        let mut cpt = Vec::with_capacity(size);
        let configs = size / arity;
        for _ in 0..configs {
            let mut block: Vec<f64> = (0..arity).map(|_| rng.gen_range(0.05..1.0)).collect();
            let sum: f64 = block.iter().sum();
            for x in block.iter_mut() {
                *x /= sum;
            }
            cpt.extend(block);
        }
        graph
            .set_vertex_prop(v as u64, keys::CPT, Property::Vector(cpt))
            .expect("vertex exists");
        graph
            .set_vertex_prop(v as u64, keys::STATUS, Property::Int(arity as i64))
            .expect("vertex exists");
        graph
            .set_vertex_prop(v as u64, keys::SAMPLE, Property::Int(0))
            .expect("vertex exists");
    }

    BayesNet {
        graph,
        arities,
        total_parameters: total,
    }
}

/// Index into a CPT: the probability block for a given parent-state
/// configuration starts at `config_index * arity`, where `config_index` is
/// the mixed-radix number formed by the parent states (in parent-list
/// order).
pub fn cpt_block_offset(parent_states: &[usize], parent_arities: &[usize], arity: usize) -> usize {
    debug_assert_eq!(parent_states.len(), parent_arities.len());
    let mut idx = 0usize;
    for (s, a) in parent_states.iter().zip(parent_arities) {
        debug_assert!(s < a);
        idx = idx * a + s;
    }
    idx * arity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::is_acyclic;

    #[test]
    fn munin_like_matches_paper_counts() {
        let net = generate(&BayesConfig::munin_like());
        assert_eq!(net.graph.num_vertices(), 1041);
        assert_eq!(net.graph.num_arcs(), 1397);
        let target = 80_592f64;
        let got = net.total_parameters as f64;
        assert!(
            (got - target).abs() / target < 0.02,
            "parameters {got} vs target {target}"
        );
    }

    #[test]
    fn network_is_acyclic() {
        let net = generate(&BayesConfig::with_vertices(300));
        assert!(is_acyclic(&net.graph));
    }

    #[test]
    fn cpt_blocks_are_normalized() {
        let net = generate(&BayesConfig::with_vertices(200));
        for v in 0..200u64 {
            let arity = net.arities[v as usize];
            let cpt = net
                .graph
                .get_vertex_prop(v, keys::CPT)
                .unwrap()
                .as_vector()
                .unwrap();
            assert_eq!(cpt.len() % arity, 0);
            for block in cpt.chunks(arity) {
                let sum: f64 = block.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "block sums to {sum}");
                assert!(block.iter().all(|&p| p > 0.0));
            }
        }
    }

    #[test]
    fn cpt_size_matches_parent_arities() {
        let net = generate(&BayesConfig::with_vertices(200));
        for v in 0..200u64 {
            let mut expect = net.arities[v as usize];
            for p in net.graph.parents(v) {
                expect *= net.arities[p as usize];
            }
            let cpt = net
                .graph
                .get_vertex_prop(v, keys::CPT)
                .unwrap()
                .as_vector()
                .unwrap();
            assert_eq!(cpt.len(), expect);
        }
    }

    #[test]
    fn block_offset_mixed_radix() {
        // parents with arities [2, 3], states [1, 2] -> config 1*3+2 = 5
        assert_eq!(cpt_block_offset(&[1, 2], &[2, 3], 4), 20);
        assert_eq!(cpt_block_offset(&[], &[], 3), 0);
    }

    #[test]
    fn deterministic() {
        let a = generate(&BayesConfig::with_vertices(150));
        let b = generate(&BayesConfig::with_vertices(150));
        assert_eq!(a.arities, b.arities);
        assert_eq!(a.total_parameters, b.total_parameters);
    }
}
