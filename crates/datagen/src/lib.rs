//! # graphbig-datagen
//!
//! Deterministic dataset generators covering the paper's four graph
//! data-source types (Table 2) and its dataset inventory (Tables 5 and 7):
//!
//! * [`twitter`] — Type 1 social network: hub-heavy power law, small paths,
//!   one large connected component (stands in for the sampled Twitter graph).
//! * [`knowledge`] — Type 2 information network: bipartite user–document
//!   graph with Zipf document popularity (stands in for IBM Knowledge Repo).
//! * [`gene`] — Type 3 nature network: modular topology with rich vector
//!   properties (stands in for the IBM Watson Gene graph).
//! * [`road`] — Type 4 man-made network: perturbed planar grid, degree ≈ 2.9
//!   (stands in for the CA road network).
//! * [`ldbc`] — synthetic social network with LDBC-like features and
//!   arbitrary scale.
//! * [`dag`] — random layered DAGs (TMorph input).
//! * [`bayes`] — Bayesian networks with CPTs (Gibbs input; the default
//!   configuration reproduces MUNIN's 1041 vertices / 1397 edges / ~80 592
//!   parameters).
//!
//! All generators take an explicit seed and are fully deterministic; every
//! dataset can be produced at any scale through [`registry::Dataset`], which
//! preserves each dataset's edge/vertex ratio from Table 7.

#![warn(missing_docs)]

pub mod bayes;
pub mod dag;
pub mod degree;
pub mod edgelist;
pub mod gene;
pub mod knowledge;
pub mod ldbc;
pub mod prop;
pub mod registry;
pub mod rng;
pub mod road;
pub mod twitter;

pub use registry::{Dataset, DatasetSpec};
pub use rng::Rng;

use graphbig_framework::PropertyGraph;

/// Build a [`PropertyGraph`] from dense edge tuples over `n` auto-id
/// vertices. Shared by the generators.
pub(crate) fn graph_from_edges(
    n: usize,
    edges: &[(u64, u64, f32)],
    undirected: bool,
) -> PropertyGraph {
    let mut g = PropertyGraph::with_capacity(n);
    for _ in 0..n {
        g.add_vertex();
    }
    for &(u, v, w) in edges {
        if undirected {
            g.add_edge_undirected(u, v, w)
                .expect("generator edge endpoints exist");
        } else {
            g.add_edge(u, v, w).expect("generator edge endpoints exist");
        }
    }
    g
}
