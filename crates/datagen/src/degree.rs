//! Degree-distribution utilities shared by the topology generators.

use crate::rng::Rng;

/// Sample from a discrete power law `P(d) ∝ d^-alpha` on `[dmin, dmax]` via
/// inverse-transform sampling of the continuous law, floored.
pub fn power_law_degree(rng: &mut Rng, alpha: f64, dmin: usize, dmax: usize) -> usize {
    debug_assert!(alpha > 1.0, "power law needs alpha > 1");
    debug_assert!(dmin >= 1 && dmax >= dmin);
    let u: f64 = rng.gen_range(0.0..1.0);
    let a = 1.0 - alpha;
    let lo = (dmin as f64).powf(a);
    let hi = ((dmax + 1) as f64).powf(a);
    let x = (lo + u * (hi - lo)).powf(1.0 / a);
    (x as usize).clamp(dmin, dmax)
}

/// Sample a full degree sequence with a target mean: degrees are drawn from
/// the power law and then scaled stochastically so the sequence's mean is
/// close to `target_mean`.
pub fn degree_sequence(
    rng: &mut Rng,
    n: usize,
    alpha: f64,
    dmin: usize,
    dmax: usize,
    target_mean: f64,
) -> Vec<usize> {
    let mut degrees: Vec<usize> = (0..n)
        .map(|_| power_law_degree(rng, alpha, dmin, dmax))
        .collect();
    let sum: usize = degrees.iter().sum();
    if sum == 0 || n == 0 {
        return degrees;
    }
    let factor = target_mean * n as f64 / sum as f64;
    if (factor - 1.0).abs() > 0.01 {
        for d in degrees.iter_mut() {
            let scaled = *d as f64 * factor;
            let base = scaled.floor();
            let frac = scaled - base;
            *d = base as usize + usize::from(rng.gen_range(0.0..1.0) < frac);
            *d = (*d).min(dmax.max(1));
        }
    }
    degrees
}

/// Zipf sampler over `0..n` with exponent `s`, using precomputed cumulative
/// weights (O(log n) per sample). Rank 0 is the most popular item.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the normalized CDF for `n` items.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero items (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(42)
    }

    #[test]
    fn power_law_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let d = power_law_degree(&mut r, 2.2, 1, 100);
            assert!((1..=100).contains(&d));
        }
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        let mut r = rng();
        let samples: Vec<usize> = (0..50_000)
            .map(|_| power_law_degree(&mut r, 2.0, 1, 10_000))
            .collect();
        let ones = samples.iter().filter(|&&d| d == 1).count();
        let big = samples.iter().filter(|&&d| d > 100).count();
        // most mass at the bottom, but a real tail exists
        assert!(ones > samples.len() / 3);
        assert!(big > 0);
    }

    #[test]
    fn degree_sequence_hits_target_mean() {
        let mut r = rng();
        let seq = degree_sequence(&mut r, 20_000, 2.3, 1, 1000, 8.0);
        let mean = seq.iter().sum::<usize>() as f64 / seq.len() as f64;
        assert!((mean - 8.0).abs() < 1.0, "mean {mean} too far from 8");
    }

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let z = Zipf::new(1000, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999] * 5);
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 7);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let sa: Vec<usize> = (0..100)
            .map(|_| power_law_degree(&mut a, 2.1, 1, 50))
            .collect();
        let sb: Vec<usize> = (0..100)
            .map(|_| power_law_degree(&mut b, 2.1, 1, 50))
            .collect();
        assert_eq!(sa, sb);
    }
}
