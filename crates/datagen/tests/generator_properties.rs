//! Property tests over the dataset generators: every family must keep its
//! Table 2 class features and its Table 7 edge/vertex ratio at arbitrary
//! scales and seeds. On the in-tree harness (`graphbig_datagen::prop`),
//! preserving the old proptest invariants and 12-case budget.

use graphbig_datagen::prop::{check, Config};
use graphbig_datagen::{registry::Dataset, road, twitter};
use graphbig_framework::prelude::GraphStats;

#[test]
fn every_dataset_keeps_its_edge_ratio_at_any_scale() {
    check(
        "every_dataset_keeps_its_edge_ratio_at_any_scale",
        Config::with_cases(12),
        |rng| rng.gen_range(600usize..6000),
        |&n| {
            for d in Dataset::ALL {
                let g = d.generate_with_vertices(n);
                assert_eq!(g.num_vertices(), n, "{d}");
                let spec = d.experiment_spec();
                let want = spec.edges as f64 / spec.vertices as f64
                    * if d.is_undirected() { 2.0 } else { 1.0 };
                let got = g.num_arcs() as f64 / g.num_vertices() as f64;
                assert!(
                    (got - want).abs() / want < 0.4,
                    "{d}: ratio {got} vs {want}"
                );
            }
        },
    );
}

#[test]
fn degree_variance_ordering_is_stable() {
    check(
        "degree_variance_ordering_is_stable",
        Config::with_cases(12),
        |rng| rng.gen_range(1500usize..5000),
        |&n| {
            // Table 2: social graphs have high degree variance, road networks
            // regular topology — the ordering must hold at any scale.
            let cv = |d: Dataset| GraphStats::compute(&d.generate_with_vertices(n)).degree_cv();
            let road = cv(Dataset::CaRoad);
            let ldbc = cv(Dataset::Ldbc);
            let twitter = cv(Dataset::Twitter);
            assert!(road < 1.0, "road cv {road}");
            assert!(ldbc > 2.0 * road, "ldbc {ldbc} vs road {road}");
            assert!(twitter > 2.0 * road, "twitter {twitter} vs road {road}");
        },
    );
}

#[test]
fn generators_are_seed_deterministic() {
    check(
        "generators_are_seed_deterministic",
        Config::with_cases(12),
        |rng| (rng.gen_range(200usize..1200), rng.gen_range(0u64..50)),
        |&(n, seed)| {
            let mut cfg = twitter::TwitterConfig::with_vertices(n);
            cfg.seed = seed;
            assert_eq!(twitter::generate_edges(&cfg), twitter::generate_edges(&cfg));
            let mut rcfg = road::RoadConfig::with_vertices(n);
            rcfg.seed = seed;
            assert_eq!(road::generate_edges(&rcfg), road::generate_edges(&rcfg));
        },
    );
}

#[test]
fn all_generated_arcs_reference_live_vertices() {
    check(
        "all_generated_arcs_reference_live_vertices",
        Config::with_cases(12),
        |rng| rng.gen_range(100usize..1500),
        |&n| {
            for d in Dataset::ALL {
                let g = d.generate_with_vertices(n);
                for (u, e) in g.arcs() {
                    assert!(g.find_vertex(u).is_some(), "{d}: dangling src");
                    assert!(g.find_vertex(e.target).is_some(), "{d}: dangling dst");
                }
            }
        },
    );
}

#[test]
fn undirected_datasets_are_symmetric() {
    check(
        "undirected_datasets_are_symmetric",
        Config::with_cases(12),
        |rng| rng.gen_range(200usize..1500),
        |&n| {
            for d in Dataset::ALL {
                if !d.is_undirected() {
                    continue;
                }
                let g = d.generate_with_vertices(n);
                for (u, e) in g.arcs().take(2000) {
                    assert!(g.has_edge(e.target, u), "{d}: {u}->{} one-way", e.target);
                }
            }
        },
    );
}
