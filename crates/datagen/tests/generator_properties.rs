//! Property tests over the dataset generators: every family must keep its
//! Table 2 class features and its Table 7 edge/vertex ratio at arbitrary
//! scales and seeds.

use graphbig_datagen::{registry::Dataset, road, twitter};
use graphbig_framework::prelude::GraphStats;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_dataset_keeps_its_edge_ratio_at_any_scale(n in 600usize..6000) {
        for d in Dataset::ALL {
            let g = d.generate_with_vertices(n);
            prop_assert_eq!(g.num_vertices(), n, "{}", d);
            let spec = d.experiment_spec();
            let want = spec.edges as f64 / spec.vertices as f64
                * if d.is_undirected() { 2.0 } else { 1.0 };
            let got = g.num_arcs() as f64 / g.num_vertices() as f64;
            prop_assert!(
                (got - want).abs() / want < 0.4,
                "{}: ratio {} vs {}", d, got, want
            );
        }
    }

    #[test]
    fn degree_variance_ordering_is_stable(n in 1500usize..5000) {
        // Table 2: social graphs have high degree variance, road networks
        // regular topology — the ordering must hold at any scale.
        let cv = |d: Dataset| GraphStats::compute(&d.generate_with_vertices(n)).degree_cv();
        let road = cv(Dataset::CaRoad);
        let ldbc = cv(Dataset::Ldbc);
        let twitter = cv(Dataset::Twitter);
        prop_assert!(road < 1.0, "road cv {road}");
        prop_assert!(ldbc > 2.0 * road, "ldbc {ldbc} vs road {road}");
        prop_assert!(twitter > 2.0 * road, "twitter {twitter} vs road {road}");
    }

    #[test]
    fn generators_are_seed_deterministic(n in 200usize..1200, seed in 0u64..50) {
        let mut cfg = twitter::TwitterConfig::with_vertices(n);
        cfg.seed = seed;
        prop_assert_eq!(twitter::generate_edges(&cfg), twitter::generate_edges(&cfg));
        let mut rcfg = road::RoadConfig::with_vertices(n);
        rcfg.seed = seed;
        prop_assert_eq!(road::generate_edges(&rcfg), road::generate_edges(&rcfg));
    }

    #[test]
    fn all_generated_arcs_reference_live_vertices(n in 100usize..1500) {
        for d in Dataset::ALL {
            let g = d.generate_with_vertices(n);
            for (u, e) in g.arcs() {
                prop_assert!(g.find_vertex(u).is_some(), "{}: dangling src", d);
                prop_assert!(g.find_vertex(e.target).is_some(), "{}: dangling dst", d);
            }
        }
    }

    #[test]
    fn undirected_datasets_are_symmetric(n in 200usize..1500) {
        for d in Dataset::ALL {
            if !d.is_undirected() {
                continue;
            }
            let g = d.generate_with_vertices(n);
            for (u, e) in g.arcs().take(2000) {
                prop_assert!(g.has_edge(e.target, u), "{}: {}->{} one-way", d, u, e.target);
            }
        }
    }
}
