//! Live write path: the concurrent mutation buffer and delta overlay.
//!
//! The [`GraphStore`](crate::store::GraphStore) publishes *immutable*
//! epochs; this module is how writes happen between publishes. A
//! [`MutationBuffer`] accepts batches of [`Mutation`]s and folds each batch
//! into a fresh copy-on-write [`DeltaOverlay`] stamped with a globally
//! monotone delta-sequence number. Readers grab the current overlay `Arc`
//! (wait-free apart from one short mutex) and evaluate point queries —
//! degree, k-hop — against *base CSR + overlay* without ever blocking a
//! writer; whole-graph kernels run against a materialized CSR built by
//! [`DeltaOverlay::materialize`] (the engine memoizes that per
//! `(epoch, seq)`).
//!
//! Semantics are set-based and tombstone-wins, chosen so a mutation stream
//! is confluent — the live edge set is always
//! `(base ∪ inserts) − deletes`, regardless of interleaving:
//!
//! - Adding an edge that exists in the base upserts its weight (a patch);
//!   adding one already tombstoned is a no-op (the delete wins).
//! - Removing an edge tombstones every parallel base copy of the pair and
//!   drops any overlay-inserted copy.
//! - Removing a vertex kills all its incident edges (base and overlay);
//!   the dense id is never reused, so the vertex survives as an isolated
//!   id with degree `(0, 0)` — exactly what a from-scratch rebuild yields.
//! - New vertices take dense ids `base_n, base_n + 1, …` in creation
//!   order.
//!
//! The correctness bar is the **rebuild oracle**: after any mutation
//! stream, reads through the overlay and reads after compaction must both
//! be digest-identical ([`structural_digest`]) to a graph rebuilt from
//! scratch with the same mutations applied. [`IncrementalCComp`] maintains
//! connected-component labels across *insert-only* deltas with a union-find
//! seeded from the base labels; any effective delete marks the overlay
//! dirty and the engine falls back to a full recompute on the materialized
//! graph.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use graphbig_framework::csr::Csr;

use crate::shard::ShardedGraph;

/// One structural update, in dense-id space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mutation {
    /// Append a new isolated vertex; it takes the next dense id.
    AddVertex,
    /// Remove a vertex and every edge incident to it. The id is retired,
    /// never reused.
    RemoveVertex {
        /// Dense id of the vertex to remove.
        v: u32,
    },
    /// Insert a directed edge, or upsert its weight if the pair already
    /// exists. A no-op if either endpoint is dead or the pair is
    /// tombstoned (deletes win).
    AddEdge {
        /// Source vertex.
        u: u32,
        /// Target vertex.
        v: u32,
        /// Edge weight.
        w: f32,
    },
    /// Delete every copy of the directed edge `u -> v` (base and overlay).
    RemoveEdge {
        /// Source vertex.
        u: u32,
        /// Target vertex.
        v: u32,
    },
    /// Update the weight of a live edge; a no-op if the pair is not live.
    SetWeight {
        /// Source vertex.
        u: u32,
        /// Target vertex.
        v: u32,
        /// New weight.
        w: f32,
    },
}

/// What one [`MutationBuffer::apply`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReceipt {
    /// Delta-sequence number the overlay advanced to.
    pub seq: u64,
    /// Epoch the overlay applies to.
    pub epoch: u64,
    /// Mutations that changed state (no-ops excluded).
    pub applied: usize,
}

/// An immutable view of all mutations applied on top of one base epoch.
///
/// Readers hold an `Arc<DeltaOverlay>` and combine it with the matching
/// epoch's [`ShardedGraph`]; writers never touch a published overlay — the
/// buffer clones it, applies the batch, and swaps the `Arc`.
#[derive(Debug, Clone)]
pub struct DeltaOverlay {
    epoch: u64,
    seq: u64,
    base_n: u32,
    added_vertices: u32,
    removed: HashSet<u32>,
    /// Overlay out-adjacency: inserted edges by source, insertion order,
    /// unique targets (adds upsert in place).
    adds: HashMap<u32, Vec<(u32, f32)>>,
    /// Reverse index of `adds`: sources per target (for in-degree).
    in_adds: HashMap<u32, Vec<u32>>,
    /// Tombstoned base pairs (every parallel copy is dead).
    deleted: HashSet<(u32, u32)>,
    /// Weight overrides on live base pairs.
    patches: HashMap<(u32, u32), f32>,
    /// Cumulative append-only log of overlay edge inserts, the feed for
    /// [`IncrementalCComp`]. Entries are never removed — a later delete
    /// sets `dirty` instead, which retires the incremental path for this
    /// overlay generation.
    insert_log: Vec<(u32, u32, f32)>,
    /// True once any effective delete or vertex removal happened.
    dirty: bool,
}

impl DeltaOverlay {
    /// An empty overlay over `base_n` vertices of `epoch`, at `seq`.
    pub fn empty(epoch: u64, seq: u64, base_n: u32) -> Self {
        DeltaOverlay {
            epoch,
            seq,
            base_n,
            added_vertices: 0,
            removed: HashSet::new(),
            adds: HashMap::new(),
            in_adds: HashMap::new(),
            deleted: HashSet::new(),
            patches: HashMap::new(),
            insert_log: Vec::new(),
            dirty: false,
        }
    }

    /// Epoch of the base snapshot this overlay applies to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Delta-sequence number: globally monotone across epochs, bumped once
    /// per applied batch, never reset by compaction.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Vertices in the base snapshot.
    pub fn base_n(&self) -> u32 {
        self.base_n
    }

    /// Total vertices in the overlay view (base + added; removed ids still
    /// count — they are retired, not recycled).
    pub fn n_total(&self) -> u32 {
        self.base_n + self.added_vertices
    }

    /// True when the overlay view equals the base snapshot exactly.
    pub fn is_empty(&self) -> bool {
        self.added_vertices == 0
            && self.removed.is_empty()
            && self.adds.is_empty()
            && self.deleted.is_empty()
            && self.patches.is_empty()
    }

    /// True once any effective delete or vertex removal happened —
    /// the signal that retires the insert-only incremental kernels.
    pub fn dirty(&self) -> bool {
        self.dirty
    }

    /// Edges currently inserted by the overlay (live ones only).
    pub fn overlay_edges(&self) -> usize {
        self.adds.values().map(Vec::len).sum()
    }

    /// Tombstoned base pairs.
    pub fn deleted_edges(&self) -> usize {
        self.deleted.len()
    }

    /// The cumulative insert log (see [`IncrementalCComp`]).
    pub fn insert_log(&self) -> &[(u32, u32, f32)] {
        &self.insert_log
    }

    /// Approximate heap footprint in bytes — the "overlay bytes per edge"
    /// numerator the mutation bench reports.
    pub fn byte_size(&self) -> usize {
        let adds: usize = self.adds.values().map(|v| 12 + v.len() * 8).sum();
        let in_adds: usize = self.in_adds.values().map(|v| 12 + v.len() * 4).sum();
        adds + in_adds
            + self.removed.len() * 8
            + self.deleted.len() * 12
            + self.patches.len() * 16
            + self.insert_log.len() * 12
    }

    fn alive(&self, v: u32) -> bool {
        v < self.n_total() && !self.removed.contains(&v)
    }

    fn base_has_edge(&self, base: &ShardedGraph, u: u32, v: u32) -> bool {
        u < self.base_n && v < self.base_n && base.service().out().neighbors(u).contains(&v)
    }

    fn overlay_has_edge(&self, u: u32, v: u32) -> bool {
        self.adds
            .get(&u)
            .is_some_and(|row| row.iter().any(|&(t, _)| t == v))
    }

    /// Apply one mutation in place (buffer-internal: published overlays are
    /// immutable). Returns true when state changed.
    fn apply_one(&mut self, base: &ShardedGraph, m: Mutation) -> bool {
        match m {
            Mutation::AddVertex => {
                self.added_vertices += 1;
                true
            }
            Mutation::RemoveVertex { v } => {
                if !self.alive(v) {
                    return false;
                }
                self.removed.insert(v);
                // Purge overlay edges out of and into v so the adds maps
                // only ever hold live edges.
                if let Some(row) = self.adds.remove(&v) {
                    for (t, _) in row {
                        prune(&mut self.in_adds, t, |&s| s == v);
                    }
                }
                if let Some(sources) = self.in_adds.remove(&v) {
                    for s in sources {
                        if let Some(row) = self.adds.get_mut(&s) {
                            row.retain(|&(t, _)| t != v);
                            if row.is_empty() {
                                self.adds.remove(&s);
                            }
                        }
                    }
                }
                self.patches.retain(|&(a, b), _| a != v && b != v);
                self.dirty = true;
                true
            }
            Mutation::AddEdge { u, v, w } => {
                if u == v || !self.alive(u) || !self.alive(v) || self.deleted.contains(&(u, v)) {
                    return false;
                }
                if self.base_has_edge(base, u, v) {
                    // Pair already in the base: pure weight upsert.
                    return self.patches.insert((u, v), w) != Some(w);
                }
                if let Some(row) = self.adds.get_mut(&u) {
                    if let Some(slot) = row.iter_mut().find(|(t, _)| *t == v) {
                        let changed = slot.1 != w;
                        slot.1 = w;
                        return changed;
                    }
                }
                self.adds.entry(u).or_default().push((v, w));
                self.in_adds.entry(v).or_default().push(u);
                self.insert_log.push((u, v, w));
                true
            }
            Mutation::RemoveEdge { u, v } => {
                let mut changed = false;
                if self.overlay_has_edge(u, v) {
                    prune(&mut self.adds, u, |&(t, _)| t == v);
                    prune(&mut self.in_adds, v, |&s| s == u);
                    changed = true;
                }
                if self.base_has_edge(base, u, v) && self.deleted.insert((u, v)) {
                    self.patches.remove(&(u, v));
                    changed = true;
                }
                if changed {
                    self.dirty = true;
                }
                changed
            }
            Mutation::SetWeight { u, v, w } => {
                if let Some(row) = self.adds.get_mut(&u) {
                    if let Some(slot) = row.iter_mut().find(|(t, _)| *t == v) {
                        let changed = slot.1 != w;
                        slot.1 = w;
                        return changed;
                    }
                }
                if self.base_has_edge(base, u, v) && !self.deleted.contains(&(u, v)) {
                    return self.patches.insert((u, v), w) != Some(w);
                }
                false
            }
        }
    }

    /// Visit every live out-edge of `u` — base edges minus tombstones and
    /// dead endpoints (weights patched), then overlay inserts in insertion
    /// order. This is the one definition of "the current graph" every
    /// overlay read and [`DeltaOverlay::materialize`] share.
    pub fn for_each_live_out(&self, base: &ShardedGraph, u: u32, mut f: impl FnMut(u32, f32)) {
        if !self.alive(u) {
            return;
        }
        if u < self.base_n {
            let out = base.service().out();
            let weights = out.edge_weights(u);
            for (i, &t) in out.neighbors(u).iter().enumerate() {
                if self.removed.contains(&t) || self.deleted.contains(&(u, t)) {
                    continue;
                }
                let w = self.patches.get(&(u, t)).copied().unwrap_or(weights[i]);
                f(t, w);
            }
        }
        if let Some(row) = self.adds.get(&u) {
            for &(t, w) in row {
                f(t, w);
            }
        }
    }

    /// Point query: `(out, in)` degree of `v` through the overlay —
    /// identical to `materialize(..).degree(v)`, but O(degree) instead of
    /// O(n + m). `None` when `v` is outside the overlay vertex range.
    pub fn degree(&self, base: &ShardedGraph, v: u32) -> Option<(u32, u32)> {
        if v >= self.n_total() {
            return None;
        }
        if self.is_empty() {
            return base.degree(v);
        }
        if self.removed.contains(&v) {
            return Some((0, 0));
        }
        let mut out = 0u32;
        self.for_each_live_out(base, v, |_, _| out += 1);
        let mut inc = 0u32;
        if v < self.base_n {
            for &s in base.service().bi().inc().neighbors(v) {
                if !self.removed.contains(&s) && !self.deleted.contains(&(s, v)) {
                    inc += 1;
                }
            }
        }
        inc += self.in_adds.get(&v).map_or(0, |s| s.len() as u32);
        Some((out, inc))
    }

    /// Point query: distinct vertices within `hops` out-steps of `source`
    /// through the overlay (including the source). Matches
    /// `materialize(..).k_hop(source, hops)` exactly.
    pub fn k_hop(&self, base: &ShardedGraph, source: u32, hops: u32) -> u64 {
        let n = self.n_total() as usize;
        if n == 0 || source as usize >= n {
            return 0;
        }
        if self.is_empty() {
            return base.k_hop(source, hops);
        }
        let mut visited = vec![false; n];
        visited[source as usize] = true;
        let mut frontier = vec![source];
        let mut next = Vec::new();
        let mut count = 1u64;
        for _ in 0..hops {
            if frontier.is_empty() {
                break;
            }
            for &u in &frontier {
                self.for_each_live_out(base, u, |t, _| {
                    if !visited[t as usize] {
                        visited[t as usize] = true;
                        count += 1;
                        next.push(t);
                    }
                });
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
        }
        count
    }

    /// Fold the overlay into a fresh CSR over `n_total` vertices — the
    /// compaction step, and the recompute path for whole-graph kernels on
    /// a non-empty overlay.
    pub fn materialize(&self, base: &ShardedGraph, num_shards: usize) -> ShardedGraph {
        let n = self.n_total() as usize;
        let mut edges = Vec::with_capacity(base.num_edges() + self.overlay_edges());
        for u in 0..n as u32 {
            self.for_each_live_out(base, u, |t, w| edges.push((u, t, w)));
        }
        ShardedGraph::build(Csr::from_edges(n, &edges), num_shards)
    }

    /// Structural digest of the overlay view — must equal
    /// [`structural_digest`] of both the materialized graph and a graph
    /// rebuilt from scratch with the same mutations. This is the oracle's
    /// comparison key.
    pub fn live_digest(&self, base: &ShardedGraph) -> u64 {
        digest_rows(self.n_total(), |u, row| {
            self.for_each_live_out(base, u, |t, w| row.push((t, w)))
        })
    }
}

/// Remove matching entries from one keyed row, dropping the key when the
/// row empties.
fn prune<T>(map: &mut HashMap<u32, Vec<T>>, key: u32, mut dead: impl FnMut(&T) -> bool) {
    if let Some(row) = map.get_mut(&key) {
        row.retain(|e| !dead(e));
        if row.is_empty() {
            map.remove(&key);
        }
    }
}

/// Order-independent structural digest of a sharded graph: FNV-1a over
/// `(u, sorted [(v, weight bits)])` rows. Two graphs digest equal iff they
/// have the same vertex count and the same edge multiset with bit-equal
/// weights — regardless of within-row edge order.
pub fn structural_digest(g: &ShardedGraph) -> u64 {
    let out = g.service().out();
    digest_rows(g.num_vertices() as u32, |u, row| {
        for (i, &t) in out.neighbors(u).iter().enumerate() {
            row.push((t, out.edge_weights(u)[i]));
        }
    })
}

fn digest_rows(n: u32, mut fill: impl FnMut(u32, &mut Vec<(u32, f32)>)) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let eat = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(PRIME);
        }
    };
    eat(&mut h, &n.to_le_bytes());
    let mut row: Vec<(u32, f32)> = Vec::new();
    for u in 0..n {
        row.clear();
        fill(u, &mut row);
        row.sort_unstable_by_key(|a| (a.0, a.1.to_bits()));
        eat(&mut h, &u.to_le_bytes());
        for &(t, w) in &row {
            eat(&mut h, &t.to_le_bytes());
            eat(&mut h, &w.to_bits().to_le_bytes());
        }
    }
    h
}

/// The write front door: batches in, copy-on-write overlays out.
///
/// One mutex guards the current overlay `Arc`. Writers clone the overlay,
/// apply their batch, and swap — readers holding the old `Arc` keep a
/// consistent view for free. The sequence number is *globally* monotone:
/// compaction resets the overlay contents to empty at the new epoch but
/// never rewinds `seq`, so `(epoch, seq)` pairs are never reused — exactly
/// what the result cache needs for structural invalidation.
pub struct MutationBuffer {
    current: Mutex<Arc<DeltaOverlay>>,
}

impl MutationBuffer {
    /// A buffer whose first overlay is empty over `base_n` vertices of
    /// `epoch`, at sequence 0.
    pub fn new(epoch: u64, base_n: u32) -> Self {
        MutationBuffer {
            current: Mutex::new(Arc::new(DeltaOverlay::empty(epoch, 0, base_n))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Arc<DeltaOverlay>> {
        self.current.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current overlay (cheap: one mutex-guarded `Arc` clone).
    pub fn current(&self) -> Arc<DeltaOverlay> {
        Arc::clone(&self.lock())
    }

    /// Fold `batch` into a new overlay generation against `base` (which
    /// must be the graph of the overlay's epoch). Even an all-no-op batch
    /// bumps `seq` — sequence numbers count batches, not effects.
    pub fn apply(&self, base: &ShardedGraph, batch: &[Mutation]) -> MutationReceipt {
        let mut guard = self.lock();
        let mut next = (**guard).clone();
        next.seq += 1;
        let applied = batch.iter().filter(|&&m| next.apply_one(base, m)).count();
        let receipt = MutationReceipt {
            seq: next.seq,
            epoch: next.epoch,
            applied,
        };
        *guard = Arc::new(next);
        receipt
    }

    /// Swap in an empty overlay targeting `epoch` over `base_n` vertices,
    /// preserving `seq` — the post-publish step of compaction (and of any
    /// full publish, which discards buffered mutations along with the base
    /// they applied to).
    pub fn reset(&self, epoch: u64, base_n: u32) -> u64 {
        let mut guard = self.lock();
        let seq = guard.seq;
        *guard = Arc::new(DeltaOverlay::empty(epoch, seq, base_n));
        seq
    }

    /// Retarget the overlay to `epoch` without touching its contents — for
    /// a republish, which stamps a new epoch on the *same* graph, so every
    /// buffered mutation stays valid.
    pub fn retarget(&self, epoch: u64) {
        let mut guard = self.lock();
        let mut next = (**guard).clone();
        next.epoch = epoch;
        *guard = Arc::new(next);
    }
}

/// Connected-component labels maintained incrementally across edge
/// inserts.
///
/// Seeded from one full ccomp run on the base graph (`parent[v] =
/// base_label[v]`, which self-parents every component's minimum id), each
/// [`IncrementalCComp::advance`] unions only the overlay's *new* insert-log
/// entries. Because unions always attach the larger root below the
/// smaller, `find(v)` stays "minimum dense id in v's component" — the
/// exact labeling the parallel kernel produces — so
/// [`IncrementalCComp::labels`] is bit-identical to a full recompute on
/// the materialized graph, at O(inserts · α) instead of O(n + m).
///
/// Inserts only: deletes can split components, which union-find cannot
/// express. The engine consults [`DeltaOverlay::dirty`] and falls back to
/// the full recompute the moment any delete lands.
pub struct IncrementalCComp {
    parent: Vec<u32>,
    applied: usize,
}

impl IncrementalCComp {
    /// Seed from the base labeling (`labels[v]` = min id in v's
    /// component).
    pub fn new(base_labels: &[u32]) -> Self {
        IncrementalCComp {
            parent: base_labels.to_vec(),
            applied: 0,
        }
    }

    /// Insert-log entries already folded in.
    pub fn applied(&self) -> usize {
        self.applied
    }

    fn ensure(&mut self, id: u32) {
        while self.parent.len() <= id as usize {
            self.parent.push(self.parent.len() as u32);
        }
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut v = v as usize;
        while self.parent[v] as usize != v {
            let grand = self.parent[self.parent[v] as usize];
            self.parent[v] = grand;
            v = grand as usize;
        }
        v as u32
    }

    /// Union every insert-log entry past what was already applied.
    /// `log` must be a cumulative log that only grows (the overlay's
    /// [`DeltaOverlay::insert_log`]).
    pub fn advance(&mut self, log: &[(u32, u32, f32)]) {
        for &(u, v, _) in &log[self.applied.min(log.len())..] {
            self.ensure(u.max(v));
            let (ru, rv) = (self.find(u), self.find(v));
            if ru != rv {
                // Larger root under smaller: roots stay component minima.
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                self.parent[hi as usize] = lo;
            }
        }
        self.applied = log.len();
    }

    /// The full labeling over `n_total` vertices (ids beyond the seeded
    /// range label themselves, as isolated vertices do).
    pub fn labels(&mut self, n_total: usize) -> Vec<u32> {
        if n_total > 0 {
            self.ensure(n_total as u32 - 1);
        }
        (0..n_total as u32).map(|v| self.find(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_datagen::rng::Rng;
    use graphbig_datagen::Dataset;
    use graphbig_runtime::{CancelToken, ThreadPool};
    use graphbig_workloads::parallel;

    fn base(n: usize) -> ShardedGraph {
        let g = Dataset::Ldbc.generate_with_vertices(n);
        ShardedGraph::build(Csr::from_graph(&g), 4)
    }

    /// Rebuild "from scratch": replay the same mutation stream through a
    /// *fresh* buffer and materialize — the reference the overlay view
    /// must match bit-for-bit.
    fn rebuilt(b: &ShardedGraph, muts: &[Mutation]) -> ShardedGraph {
        let buf = MutationBuffer::new(1, b.num_vertices() as u32);
        buf.apply(b, muts);
        buf.current().materialize(b, 4)
    }

    fn seeded_mutations(b: &ShardedGraph, seed: u64, count: usize) -> Vec<Mutation> {
        let n = b.num_vertices() as u32;
        let mut rng = Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| match rng.u64_below(10) {
                0 => Mutation::AddVertex,
                1 => Mutation::RemoveVertex {
                    v: rng.u64_below(n as u64 + 4) as u32,
                },
                2 | 3 => Mutation::RemoveEdge {
                    u: rng.u64_below(n as u64) as u32,
                    v: rng.u64_below(n as u64) as u32,
                },
                4 => Mutation::SetWeight {
                    u: rng.u64_below(n as u64) as u32,
                    v: rng.u64_below(n as u64) as u32,
                    w: rng.u64_below(100) as f32,
                },
                _ => Mutation::AddEdge {
                    u: rng.u64_below(n as u64 + 4) as u32,
                    v: rng.u64_below(n as u64 + 4) as u32,
                    w: rng.u64_below(100) as f32 + 0.5,
                },
            })
            .collect()
    }

    #[test]
    fn empty_overlay_is_transparent() {
        let b = base(120);
        let buf = MutationBuffer::new(1, b.num_vertices() as u32);
        let ov = buf.current();
        assert!(ov.is_empty());
        assert_eq!(ov.seq(), 0);
        assert_eq!(ov.n_total() as usize, b.num_vertices());
        for v in [0u32, 7, 119, 120] {
            assert_eq!(ov.degree(&b, v), b.degree(v), "vertex {v}");
        }
        assert_eq!(ov.k_hop(&b, 3, 2), b.k_hop(3, 2));
        assert_eq!(ov.live_digest(&b), structural_digest(&b));
        assert_eq!(
            structural_digest(&ov.materialize(&b, 4)),
            structural_digest(&b)
        );
    }

    #[test]
    fn edge_semantics_are_set_based_and_tombstone_wins() {
        // 0 -> 1 -> 2, 0 -> 2.
        let edges = [(0u32, 1u32, 1.0f32), (1, 2, 1.0), (0, 2, 1.0)];
        let b = ShardedGraph::build(Csr::from_edges(3, &edges), 2);
        let buf = MutationBuffer::new(1, 3);

        // Insert a fresh edge, then delete a base edge.
        let r = buf.apply(
            &b,
            &[
                Mutation::AddEdge { u: 2, v: 0, w: 5.0 },
                Mutation::RemoveEdge { u: 0, v: 1 },
            ],
        );
        assert_eq!((r.seq, r.applied), (1, 2));
        let ov = buf.current();
        assert_eq!(ov.degree(&b, 0), Some((1, 1))); // out: 0->2; in: 2->0
        assert_eq!(ov.degree(&b, 1), Some((1, 0))); // 0->1 gone
        assert_eq!(ov.k_hop(&b, 0, 1), 2); // {0, 2}

        // Tombstone wins: re-adding the deleted pair is a no-op; adding an
        // existing base pair is a weight patch, not a duplicate.
        let r = buf.apply(
            &b,
            &[
                Mutation::AddEdge { u: 0, v: 1, w: 9.0 },
                Mutation::AddEdge { u: 0, v: 2, w: 7.0 },
                Mutation::AddEdge { u: 2, v: 2, w: 1.0 }, // self loop: no-op
            ],
        );
        assert_eq!(r.applied, 1, "only the weight patch lands");
        let ov = buf.current();
        assert_eq!(ov.degree(&b, 1), Some((1, 0)));
        assert_eq!(ov.degree(&b, 0), Some((1, 1)));

        // The overlay view equals a from-scratch rebuild at every step.
        let muts = [
            Mutation::AddEdge { u: 2, v: 0, w: 5.0 },
            Mutation::RemoveEdge { u: 0, v: 1 },
            Mutation::AddEdge { u: 0, v: 1, w: 9.0 },
            Mutation::AddEdge { u: 0, v: 2, w: 7.0 },
            Mutation::AddEdge { u: 2, v: 2, w: 1.0 },
        ];
        assert_eq!(ov.live_digest(&b), structural_digest(&rebuilt(&b, &muts)));
    }

    #[test]
    fn vertex_removal_kills_incident_edges_and_retires_the_id() {
        let edges = [(0u32, 1u32, 1.0f32), (1, 2, 2.0), (2, 0, 3.0)];
        let b = ShardedGraph::build(Csr::from_edges(3, &edges), 2);
        let buf = MutationBuffer::new(1, 3);
        buf.apply(
            &b,
            &[
                Mutation::AddVertex, // id 3
                Mutation::AddEdge { u: 3, v: 1, w: 1.0 },
                Mutation::RemoveVertex { v: 1 },
            ],
        );
        let ov = buf.current();
        assert_eq!(ov.n_total(), 4, "removed ids are retired, not recycled");
        assert_eq!(ov.degree(&b, 1), Some((0, 0)));
        assert_eq!(ov.degree(&b, 0), Some((0, 1))); // 0->1 dead, 2->0 lives
        assert_eq!(ov.degree(&b, 3), Some((0, 0))); // its overlay edge died too
        assert_eq!(ov.k_hop(&b, 1, 5), 1, "removed vertex sees only itself");
        // Mutating the dead vertex again is a no-op.
        let r = buf.apply(
            &b,
            &[
                Mutation::RemoveVertex { v: 1 },
                Mutation::AddEdge { u: 0, v: 1, w: 4.0 },
            ],
        );
        assert_eq!(r.applied, 0);
        let muts = [
            Mutation::AddVertex,
            Mutation::AddEdge { u: 3, v: 1, w: 1.0 },
            Mutation::RemoveVertex { v: 1 },
        ];
        assert_eq!(
            buf.current().live_digest(&b),
            structural_digest(&rebuilt(&b, &muts))
        );
    }

    #[test]
    fn seeded_stream_matches_rebuild_oracle_at_every_prefix() {
        let b = base(150);
        let muts = seeded_mutations(&b, 0xD5EA, 400);
        let buf = MutationBuffer::new(1, b.num_vertices() as u32);
        for (i, chunk) in muts.chunks(40).enumerate() {
            buf.apply(&b, chunk);
            let ov = buf.current();
            let reference = rebuilt(&b, &muts[..(i + 1) * 40]);
            assert_eq!(
                ov.live_digest(&b),
                structural_digest(&reference),
                "prefix {} diverged from rebuild",
                (i + 1) * 40
            );
            assert_eq!(
                structural_digest(&ov.materialize(&b, 4)),
                structural_digest(&reference),
                "materialization diverged at prefix {}",
                (i + 1) * 40
            );
            // Point queries agree with the reference graph everywhere.
            for v in (0..ov.n_total()).step_by(17) {
                assert_eq!(ov.degree(&b, v), reference.degree(v), "degree({v})");
                assert_eq!(ov.k_hop(&b, v, 2), reference.k_hop(v, 2), "k_hop({v})");
            }
        }
    }

    #[test]
    fn sequence_numbers_are_monotone_and_survive_reset() {
        let b = base(40);
        let buf = MutationBuffer::new(1, 40);
        assert_eq!(buf.apply(&b, &[Mutation::AddVertex]).seq, 1);
        assert_eq!(buf.apply(&b, &[]).seq, 2, "empty batches still bump seq");
        let seq = buf.reset(2, 41);
        assert_eq!(seq, 2, "reset preserves seq");
        let ov = buf.current();
        assert!(ov.is_empty());
        assert_eq!((ov.epoch(), ov.seq(), ov.base_n()), (2, 2, 41));
        assert_eq!(buf.apply(&b, &[Mutation::AddVertex]).seq, 3);
        buf.retarget(9);
        let ov = buf.current();
        assert_eq!((ov.epoch(), ov.seq()), (9, 3));
        assert!(!ov.is_empty(), "retarget keeps buffered mutations");
    }

    #[test]
    fn concurrent_appliers_never_lose_a_batch() {
        let b = std::sync::Arc::new(base(60));
        let buf = std::sync::Arc::new(MutationBuffer::new(1, 60));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let b = std::sync::Arc::clone(&b);
                let buf = std::sync::Arc::clone(&buf);
                scope.spawn(move || {
                    for i in 0..50u32 {
                        // Distinct (u, v) per thread: all batches commute.
                        let u = t % 60;
                        let v = 10 + (t * 50 + i) % 50;
                        buf.apply(
                            &b,
                            &[Mutation::AddEdge {
                                u,
                                v: v + 1,
                                w: 1.0,
                            }],
                        );
                    }
                });
            }
        });
        let ov = buf.current();
        assert_eq!(ov.seq(), 200, "every batch got a distinct seq");
        // State equals the same edges applied sequentially.
        let mut muts = Vec::new();
        for t in 0..4u32 {
            for i in 0..50u32 {
                muts.push(Mutation::AddEdge {
                    u: t % 60,
                    v: 11 + (t * 50 + i) % 50,
                    w: 1.0,
                });
            }
        }
        assert_eq!(ov.live_digest(&b), structural_digest(&rebuilt(&b, &muts)));
    }

    #[test]
    fn incremental_ccomp_matches_full_recompute_on_inserts() {
        let b = base(200);
        let pool = ThreadPool::new(2);
        let never = CancelToken::never();
        let base_labels = parallel::ccomp_cancellable(&pool, b.service().sym(), &never).unwrap();
        let mut inc = IncrementalCComp::new(&base_labels);

        let buf = MutationBuffer::new(1, 200);
        let mut rng = Rng::seed_from_u64(77);
        for round in 0..10 {
            let batch: Vec<Mutation> = (0..8)
                .map(|_| Mutation::AddEdge {
                    u: rng.u64_below(200) as u32,
                    v: rng.u64_below(200) as u32,
                    w: 1.0,
                })
                .collect();
            buf.apply(&b, &batch);
            let ov = buf.current();
            assert!(!ov.dirty(), "insert-only stream stays clean");
            inc.advance(ov.insert_log());
            let got = inc.labels(ov.n_total() as usize);
            let full =
                parallel::ccomp_cancellable(&pool, ov.materialize(&b, 4).service().sym(), &never)
                    .unwrap();
            assert_eq!(got, full, "round {round}: incremental labels diverged");
        }
        // A delete flips the dirty bit — the fallback signal.
        buf.apply(
            &b,
            &[Mutation::RemoveEdge {
                u: 0,
                v: b.service().out().neighbors(0)[0],
            }],
        );
        assert!(buf.current().dirty());
    }

    #[test]
    fn overlay_size_accounting_is_plausible() {
        let b = base(80);
        let buf = MutationBuffer::new(1, 80);
        assert_eq!(buf.current().byte_size(), 0);
        assert_eq!(buf.current().overlay_edges(), 0);
        let batch: Vec<Mutation> = (0..30)
            .map(|i| Mutation::AddEdge {
                u: i as u32,
                v: (i as u32 + 40) % 80,
                w: 1.0,
            })
            .collect();
        buf.apply(&b, &batch);
        let ov = buf.current();
        assert!(ov.overlay_edges() <= 30);
        assert!(ov.overlay_edges() > 0);
        let per_edge = ov.byte_size() / ov.overlay_edges();
        assert!(
            (8..=256).contains(&per_edge),
            "implausible overlay bytes/edge: {per_edge}"
        );
    }

    #[test]
    fn structural_digest_is_edge_order_independent() {
        let a = ShardedGraph::build(
            Csr::from_edges(3, &[(0, 1, 1.0), (0, 2, 2.0), (1, 2, 3.0)]),
            2,
        );
        let c = ShardedGraph::build(
            Csr::from_edges(3, &[(1, 2, 3.0), (0, 2, 2.0), (0, 1, 1.0)]),
            3,
        );
        assert_eq!(structural_digest(&a), structural_digest(&c));
        let d = ShardedGraph::build(
            Csr::from_edges(3, &[(0, 1, 1.5), (0, 2, 2.0), (1, 2, 3.0)]),
            2,
        );
        assert_ne!(
            structural_digest(&a),
            structural_digest(&d),
            "weights count"
        );
    }
}
