//! Admission control: bounded queue depth plus an in-flight cost budget.
//!
//! Every query carries an abstract cost (see
//! [`Workload::cost_estimate`](graphbig_workloads::Workload::cost_estimate));
//! the controller admits it only while (a) the submission queue has room
//! and (b) the admitted-but-unfinished cost stays under the budget.
//! Rejection is synchronous and carries a typed [`RejectReason`], so an
//! overloaded engine sheds load at the front door in microseconds instead
//! of letting queues grow without bound — the difference between a p999
//! and a timeout under the mixed traffic the serving benchmarks replay.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded submission queue is at capacity.
    QueueFull {
        /// Queue depth observed at rejection.
        depth: usize,
        /// Configured capacity.
        limit: usize,
    },
    /// Admitting this query would push in-flight cost over the budget.
    CostBudget {
        /// Cost already admitted and unfinished.
        in_flight: u64,
        /// This query's estimated cost.
        requested: u64,
        /// Configured budget.
        limit: u64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth, limit } => {
                write!(f, "queue full ({depth}/{limit})")
            }
            RejectReason::CostBudget {
                in_flight,
                requested,
                limit,
            } => write!(
                f,
                "cost budget exceeded ({in_flight} in flight + {requested} requested > {limit})"
            ),
        }
    }
}

impl std::error::Error for RejectReason {}

/// Lock-free admission state: queued-query count and admitted cost.
#[derive(Debug)]
pub struct AdmissionController {
    max_queue: usize,
    max_cost: u64,
    queued: AtomicUsize,
    in_flight_cost: AtomicU64,
}

impl AdmissionController {
    /// A controller admitting at most `max_queue` waiting queries and
    /// `max_cost` total in-flight cost.
    pub fn new(max_queue: usize, max_cost: u64) -> Self {
        AdmissionController {
            max_queue: max_queue.max(1),
            max_cost: max_cost.max(1),
            queued: AtomicUsize::new(0),
            in_flight_cost: AtomicU64::new(0),
        }
    }

    /// Try to admit a query of `cost`. On success the cost is reserved and
    /// the queue slot taken; the caller must later pair this with
    /// [`AdmissionController::on_start`] (when the query leaves the queue)
    /// and [`AdmissionController::on_finish`] (when it completes or is
    /// cancelled).
    ///
    /// A completely idle controller (`in_flight_cost == 0`) admits *any*
    /// cost, even one exceeding the budget — the "always admit when empty"
    /// rule. Without it a single query whose estimate tops `max_cost`
    /// (e.g. an Analytics kernel on a large graph) would be rejected
    /// forever, a livelock no amount of waiting cures. While the oversized
    /// query is in flight everything else still sees a full budget and is
    /// rejected, so over-commitment is bounded by one query.
    pub fn try_admit(&self, cost: u64) -> Result<(), RejectReason> {
        // Reserve cost first via CAS so concurrent submitters never
        // over-commit the budget.
        let mut current = self.in_flight_cost.load(Ordering::Relaxed);
        loop {
            let proposed = current.saturating_add(cost);
            if current != 0 && proposed > self.max_cost {
                return Err(RejectReason::CostBudget {
                    in_flight: current,
                    requested: cost,
                    limit: self.max_cost,
                });
            }
            match self.in_flight_cost.compare_exchange_weak(
                current,
                proposed,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
        // Then take a queue slot, rolling back the cost on failure.
        let depth = self.queued.fetch_add(1, Ordering::Relaxed);
        if depth >= self.max_queue {
            self.queued.fetch_sub(1, Ordering::Relaxed);
            self.in_flight_cost.fetch_sub(cost, Ordering::Relaxed);
            return Err(RejectReason::QueueFull {
                depth,
                limit: self.max_queue,
            });
        }
        Ok(())
    }

    /// Undo a successful [`AdmissionController::try_admit`] whose query was
    /// never enqueued — release both the queue slot and the reserved cost.
    /// The chaos spurious-rejection failpoint uses this so an injected
    /// `QueueFull`/`CostBudget` leaves the counters exactly as a real
    /// rejection would.
    pub fn cancel_admit(&self, cost: u64) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.in_flight_cost.fetch_sub(cost, Ordering::Relaxed);
    }

    /// The query left the queue and began executing.
    pub fn on_start(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// The query finished (completed, cancelled, or deadline-missed):
    /// release its reserved cost.
    pub fn on_finish(&self, cost: u64) {
        self.in_flight_cost.fetch_sub(cost, Ordering::Relaxed);
    }

    /// Queries currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Cost admitted and not yet finished.
    pub fn in_flight_cost(&self) -> u64 {
        self.in_flight_cost.load(Ordering::Relaxed)
    }

    /// Configured queue capacity.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// Configured cost budget.
    pub fn max_cost(&self) -> u64 {
        self.max_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_budget_rejects_and_rolls_back() {
        let ac = AdmissionController::new(10, 100);
        assert!(ac.try_admit(60).is_ok());
        assert_eq!(ac.in_flight_cost(), 60);
        match ac.try_admit(50) {
            Err(RejectReason::CostBudget {
                in_flight,
                requested,
                limit,
            }) => {
                assert_eq!((in_flight, requested, limit), (60, 50, 100));
            }
            other => panic!("expected cost rejection, got {other:?}"),
        }
        // Rejection must not leak reservations.
        assert_eq!(ac.in_flight_cost(), 60);
        assert_eq!(ac.queued(), 1);
        // Finishing the first frees budget for the second.
        ac.on_start();
        ac.on_finish(60);
        assert!(ac.try_admit(50).is_ok());
        assert_eq!(ac.in_flight_cost(), 50);
    }

    #[test]
    fn queue_full_rejects_and_rolls_back_cost() {
        let ac = AdmissionController::new(2, 1_000_000);
        assert!(ac.try_admit(1).is_ok());
        assert!(ac.try_admit(1).is_ok());
        match ac.try_admit(1) {
            Err(RejectReason::QueueFull { depth, limit }) => {
                assert_eq!((depth, limit), (2, 2));
            }
            other => panic!("expected queue rejection, got {other:?}"),
        }
        assert_eq!(ac.queued(), 2, "failed admit must release its slot");
        assert_eq!(ac.in_flight_cost(), 2, "failed admit must release its cost");
        // Draining the queue reopens it.
        ac.on_start();
        assert!(ac.try_admit(1).is_ok());
    }

    #[test]
    fn lifecycle_accounting_balances() {
        let ac = AdmissionController::new(4, 1000);
        for _ in 0..3 {
            ac.try_admit(100).unwrap();
        }
        assert_eq!((ac.queued(), ac.in_flight_cost()), (3, 300));
        for _ in 0..3 {
            ac.on_start();
        }
        assert_eq!((ac.queued(), ac.in_flight_cost()), (0, 300));
        for _ in 0..3 {
            ac.on_finish(100);
        }
        assert_eq!((ac.queued(), ac.in_flight_cost()), (0, 0));
    }

    #[test]
    fn oversized_query_is_admitted_when_idle() {
        // Regression: a query whose single cost exceeds the budget used to
        // be rejected even on a completely idle controller — a permanent
        // livelock for e.g. Analytics kernels on large graphs.
        let ac = AdmissionController::new(8, 100);
        assert!(ac.try_admit(101).is_ok(), "idle controller admits any cost");
        assert_eq!(ac.in_flight_cost(), 101);
        // While the oversized query is in flight, everything else is over
        // budget and sheds normally.
        assert!(matches!(
            ac.try_admit(1),
            Err(RejectReason::CostBudget { in_flight: 101, .. })
        ));
        // Once it finishes the controller behaves classically again.
        ac.on_start();
        ac.on_finish(101);
        assert!(ac.try_admit(100).is_ok(), "exactly the budget fits");
    }

    #[test]
    fn oversized_query_is_rejected_when_busy() {
        let ac = AdmissionController::new(8, 100);
        assert!(ac.try_admit(10).is_ok());
        assert!(
            matches!(ac.try_admit(101), Err(RejectReason::CostBudget { .. })),
            "the always-admit rule applies only to an idle controller"
        );
        assert_eq!(ac.in_flight_cost(), 10, "rejection must not leak cost");
    }

    #[test]
    fn concurrent_admits_never_overcommit() {
        use std::sync::Arc;
        let ac = Arc::new(AdmissionController::new(1_000_000, 50));
        let admitted: usize = (0..8)
            .map(|_| {
                let ac = Arc::clone(&ac);
                std::thread::spawn(move || (0..100).filter(|_| ac.try_admit(10).is_ok()).count())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(admitted, 5, "budget 50 admits exactly five cost-10 queries");
        assert_eq!(ac.in_flight_cost(), 50);
    }

    #[test]
    fn reject_reasons_render() {
        let q = RejectReason::QueueFull { depth: 4, limit: 4 };
        let c = RejectReason::CostBudget {
            in_flight: 90,
            requested: 20,
            limit: 100,
        };
        assert_eq!(q.to_string(), "queue full (4/4)");
        assert!(c.to_string().contains("90 in flight + 20 requested > 100"));
    }
}
