//! Batching policy: which queued queries may share one kernel execution.
//!
//! The executor-side batcher (see `engine.rs`) pops one job under the
//! normal lane-aging policy, then — if the job is *batchable* — drains
//! compatible jobs from the same lane into a coalesced batch and runs one
//! shared kernel for all of them. This module holds the pure, unit-testable
//! policy pieces: the batch-kind classification and the shard-grouped
//! ordering for point sweeps.
//!
//! Compatibility is keyed by `(kind, epoch, delta-seq)`:
//! * **kind** — only queries answered by the same kernel can share a pass
//!   (multi-source BFS for `Run{Bfs}`, a shard-ordered sweep for
//!   `Degree`/`KHop`).
//! * **epoch** — members must pin the same published graph; a batch
//!   executes against exactly one snapshot.
//! * **delta-seq** — the live overlay version is part of the key because
//!   the result cache is keyed `(epoch, delta-seq, query)`: one batch
//!   executes at exactly one overlay state and every fanned-out result is
//!   cached under that one key. A mutation landing mid-window bumps the
//!   seq and closes the batch rather than mixing graph states.

use crate::engine::Query;
use graphbig_workloads::Workload;

/// Which shared kernel a batch runs. Queries of different kinds never
/// coalesce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BatchKind {
    /// `Query::Run { workload: Bfs, .. }` — one multi-source BFS pass,
    /// one bit-lane per request (capped at
    /// [`graphbig_workloads::msbfs::MSBFS_LANES`]).
    Bfs,
    /// `Query::Degree` / `Query::KHop` — one cache-friendly sweep in
    /// shard order.
    Point,
}

/// Classify a query for coalescing; `None` means it always runs solo.
pub(crate) fn kind_of(query: &Query) -> Option<BatchKind> {
    match query {
        Query::Run {
            workload: Workload::Bfs,
            ..
        } => Some(BatchKind::Bfs),
        Query::Degree { .. } | Query::KHop { .. } => Some(BatchKind::Point),
        Query::Run { .. } => None,
    }
}

/// The vertex a point query touches first — the shard-grouping sort key.
pub(crate) fn point_vertex(query: &Query) -> u32 {
    match query {
        Query::Degree { vertex } => *vertex,
        Query::KHop { source, .. } => *source,
        Query::Run { source, .. } => *source,
    }
}

/// Stable order for a shard-grouped point sweep: group by shard index,
/// then by vertex within the shard, so one pass walks each shard's slice
/// of the CSR once instead of hopping between shards per request. Pure so
/// the ordering is testable without an engine; `shard_of` maps a vertex to
/// its shard index (out-of-range vertices sort last).
pub(crate) fn shard_sweep_order<T>(
    items: &mut [T],
    vertex_of: impl Fn(&T) -> u32,
    shard_of: impl Fn(u32) -> Option<usize>,
) {
    items.sort_by_key(|item| {
        let v = vertex_of(item);
        (shard_of(v).unwrap_or(usize::MAX), v)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_bfs_runs_and_point_lookups_are_batchable() {
        assert_eq!(
            kind_of(&Query::Run {
                workload: Workload::Bfs,
                source: 3
            }),
            Some(BatchKind::Bfs)
        );
        assert_eq!(
            kind_of(&Query::Degree { vertex: 1 }),
            Some(BatchKind::Point)
        );
        assert_eq!(
            kind_of(&Query::KHop { source: 1, hops: 2 }),
            Some(BatchKind::Point)
        );
        // Whole-graph kernels gain nothing from source coalescing.
        for w in [Workload::CComp, Workload::KCore, Workload::SPath] {
            assert_eq!(
                kind_of(&Query::Run {
                    workload: w,
                    source: 0
                }),
                None
            );
        }
    }

    #[test]
    fn shard_sweep_groups_by_shard_then_vertex() {
        // 2 shards of 50 vertices each; vertex 120 is out of range.
        let shard_of = |v: u32| (v < 100).then_some((v / 50) as usize);
        let mut items: Vec<u32> = vec![70, 10, 120, 55, 5, 99];
        shard_sweep_order(&mut items, |&v| v, shard_of);
        assert_eq!(items, vec![5, 10, 55, 70, 99, 120]);
    }

    #[test]
    fn shard_sweep_is_stable_for_duplicate_vertices() {
        let mut items: Vec<(u32, char)> = vec![(7, 'a'), (3, 'x'), (7, 'b')];
        shard_sweep_order(&mut items, |&(v, _)| v, |_| Some(0));
        assert_eq!(items, vec![(3, 'x'), (7, 'a'), (7, 'b')]);
    }
}
