//! Epoch-keyed result cache for the serving engine.
//!
//! Internet-service graph traffic is dominated by *repeated hot requests*:
//! the same degree lookups, the same k-hop neighborhoods, the same
//! traversal roots, over and over. Every query the engine serves is a pure
//! function of `(epoch, delta-seq, query shape, params)` — epochs are
//! immutable snapshots and every overlay version is named by its delta
//! sequence number — so a completed [`QueryOutput`] can be replayed
//! verbatim for any identical query against the same graph state. The [`ResultCache`]
//! does exactly that and nothing cleverer:
//!
//! * **Keying.** The key is `(epoch, delta-seq, Query)`; `Query` carries
//!   the shape discriminant and every parameter (vertex, source, hops,
//!   workload), so two requests collide only when they would compute
//!   bit-identical outputs. A publish or republish bumps the epoch and a
//!   mutation bumps the overlay's delta sequence number, so *any* change
//!   to the served graph state makes every old entry unreachable *by
//!   construction* — correctness never depends on the invalidation sweep,
//!   which exists only to reclaim memory.
//! * **Sharding.** Entries hash across small mutexed shards so concurrent
//!   executors don't serialize on one lock.
//! * **Eviction.** Per-shard FIFO at a bounded total capacity; evictions
//!   and epoch invalidations both count into the `engine.cache.evict`
//!   counter, hits and misses into `engine.cache.{hit,miss}`.
//!
//! A capacity of zero disables the cache entirely: lookups return `None`
//! without touching the counters, inserts are dropped. The chaos harness
//! corrupts inserted entries through the `engine.cache.insert` failpoint
//! (see `engine.rs`), which the sequential-oracle digest comparison must
//! catch — proving the oracle actually guards the cache path.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use graphbig_telemetry::metrics::Counter;

use crate::engine::{Query, QueryOutput};

/// Shard count: enough to keep executor threads off each other's locks.
const SHARDS: usize = 16;

/// `(epoch, delta-seq, query)` — the full name of one graph state plus
/// the query against it.
type Key = (u64, u64, Query);

#[derive(Default)]
struct Shard {
    map: HashMap<Key, QueryOutput>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Key>,
}

/// A bounded, sharded, epoch-keyed map from queries to completed outputs.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry bound (total capacity / shard count, min 1).
    per_shard: usize,
    enabled: bool,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries in total (0 = disabled),
    /// reporting into the given `engine.cache.*` counters.
    pub fn new(capacity: usize, hits: Counter, misses: Counter, evictions: Counter) -> ResultCache {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard: (capacity / SHARDS).max(1),
            enabled: capacity > 0,
            hits,
            misses,
            evictions,
        }
    }

    /// Whether lookups can ever hit (capacity > 0).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn shard(&self, key: &Key) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// The cached output for `query` under `(epoch, delta-seq)`, if
    /// present. Counts a hit or a miss; a disabled cache returns `None`
    /// without counting.
    pub fn get(&self, epoch: u64, seq: u64, query: &Query) -> Option<QueryOutput> {
        if !self.enabled {
            return None;
        }
        let key = (epoch, seq, *query);
        let found = {
            let shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
            shard.map.get(&key).cloned()
        };
        match &found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        found
    }

    /// Store a completed output. Evicts the shard's oldest entry when the
    /// per-shard bound is reached; re-inserting an existing key refreshes
    /// the value without growing the shard.
    pub fn insert(&self, epoch: u64, seq: u64, query: Query, output: QueryOutput) {
        if !self.enabled {
            return;
        }
        let key = (epoch, seq, query);
        let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        if shard.map.insert(key, output).is_some() {
            return; // refreshed in place, order entry already present
        }
        shard.order.push_back(key);
        if shard.order.len() > self.per_shard {
            if let Some(old) = shard.order.pop_front() {
                shard.map.remove(&old);
                self.evictions.inc();
            }
        }
    }

    /// Drop every entry (the publish/republish/compaction
    /// memory-reclamation sweep; epoch + delta-seq keying already keeps
    /// stale entries unreachable). Cleared entries count as evictions.
    pub fn invalidate(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            self.evictions.add(shard.map.len() as u64);
            shard.map.clear();
            shard.order.clear();
        }
    }

    /// Entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> ResultCache {
        ResultCache::new(
            capacity,
            Counter::default(),
            Counter::default(),
            Counter::default(),
        )
    }

    fn counts(c: &ResultCache) -> (u64, u64, u64) {
        (c.hits.get(), c.misses.get(), c.evictions.get())
    }

    #[test]
    fn hit_returns_the_stored_output_for_the_same_epoch_only() {
        let c = cache(64);
        let q = Query::Degree { vertex: 7 };
        assert_eq!(c.get(1, 0, &q), None);
        c.insert(1, 0, q, QueryOutput::Degree { out: 3, inc: 5 });
        assert_eq!(
            c.get(1, 0, &q),
            Some(QueryOutput::Degree { out: 3, inc: 5 })
        );
        // Same query, later epoch: structurally a miss — epoch keying is
        // the coherence mechanism.
        assert_eq!(c.get(2, 0, &q), None);
        // Same epoch, later delta-seq: also a miss — a mutation moved the
        // graph state even though no publish happened.
        assert_eq!(c.get(1, 1, &q), None);
        // Different params are different keys.
        assert_eq!(c.get(1, 0, &Query::Degree { vertex: 8 }), None);
        assert_eq!(counts(&c), (1, 4, 0));
    }

    #[test]
    fn khop_params_are_part_of_the_key() {
        let c = cache(64);
        c.insert(
            1,
            0,
            Query::KHop { source: 3, hops: 2 },
            QueryOutput::KHop(40),
        );
        c.insert(
            1,
            0,
            Query::KHop { source: 3, hops: 3 },
            QueryOutput::KHop(90),
        );
        assert_eq!(
            c.get(1, 0, &Query::KHop { source: 3, hops: 2 }),
            Some(QueryOutput::KHop(40))
        );
        assert_eq!(
            c.get(1, 0, &Query::KHop { source: 3, hops: 3 }),
            Some(QueryOutput::KHop(90))
        );
    }

    #[test]
    fn invalidate_clears_everything_and_counts_evictions() {
        let c = cache(64);
        for v in 0..10 {
            c.insert(
                1,
                0,
                Query::Degree { vertex: v },
                QueryOutput::KHop(v as u64),
            );
        }
        assert_eq!(c.len(), 10);
        c.invalidate();
        assert!(c.is_empty());
        assert_eq!(c.get(1, 0, &Query::Degree { vertex: 0 }), None);
        assert_eq!(counts(&c).2, 10, "cleared entries count as evictions");
    }

    #[test]
    fn capacity_bounds_entries_with_fifo_eviction() {
        // capacity 16 over 16 shards = 1 entry per shard: every insert into
        // an occupied shard evicts its previous occupant.
        let c = cache(16);
        for v in 0..200 {
            c.insert(
                1,
                0,
                Query::Degree { vertex: v },
                QueryOutput::KHop(v as u64),
            );
        }
        assert!(c.len() <= 16, "len {} exceeds capacity", c.len());
        assert_eq!(counts(&c).2 as usize + c.len(), 200);
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let c = cache(64);
        let q = Query::Degree { vertex: 1 };
        c.insert(1, 0, q, QueryOutput::KHop(10));
        c.insert(1, 0, q, QueryOutput::KHop(20));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, 0, &q), Some(QueryOutput::KHop(20)));
        assert_eq!(counts(&c).2, 0);
    }

    #[test]
    fn delta_seq_keying_isolates_every_graph_state() {
        // Property: over a seeded set of (epoch, delta-seq, query)
        // insertions, a lookup hits iff all three key parts match. A
        // mutation (seq bump) or a publish/compaction (epoch bump) makes
        // exactly the older state's entries unreachable and nothing else.
        let c = cache(16384);
        let mut expected = std::collections::HashMap::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let epoch = rng() % 4 + 1;
            let seq = rng() % 8;
            let vertex = (rng() % 16) as u32;
            let out = QueryOutput::KHop(rng());
            c.insert(epoch, seq, Query::Degree { vertex }, out.clone());
            expected.insert((epoch, seq, vertex), out);
        }
        for epoch in 1..=4u64 {
            for seq in 0..8u64 {
                for vertex in 0..16u32 {
                    assert_eq!(
                        c.get(epoch, seq, &Query::Degree { vertex }),
                        expected.get(&(epoch, seq, vertex)).cloned(),
                        "key ({epoch}, {seq}, {vertex})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_capacity_disables_silently() {
        let c = cache(0);
        assert!(!c.enabled());
        c.insert(1, 0, Query::Degree { vertex: 1 }, QueryOutput::KHop(1));
        assert_eq!(c.get(1, 0, &Query::Degree { vertex: 1 }), None);
        assert!(c.is_empty());
        assert_eq!(counts(&c), (0, 0, 0), "disabled cache never counts");
    }
}
