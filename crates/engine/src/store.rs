//! Epoch-versioned graph store.
//!
//! Readers take an `Arc<EpochSnapshot>` and keep it for the lifetime of
//! their query: the snapshot is immutable, so any number of concurrent
//! queries read it without synchronization. A writer builds the next
//! [`ShardedGraph`] off to the side and [`GraphStore::publish`]es it — one
//! pointer swap under a mutex — while in-flight queries finish against the
//! epoch they started on. Old epochs free themselves when the last query
//! holding them drops its `Arc` (epoch-based reclamation for free).

use std::sync::{Arc, Mutex};

use graphbig_framework::csr::Csr;
use graphbig_framework::snapshot;

use crate::shard::ShardedGraph;

/// One immutable published graph version. The graph itself is behind its
/// own `Arc` so a republish ([`GraphStore::republish`]) can stamp a new
/// epoch onto the same graph without copying shards.
pub struct EpochSnapshot {
    epoch: u64,
    graph: Arc<ShardedGraph>,
}

impl EpochSnapshot {
    /// Monotonic version number, starting at 1.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sharded graph of this epoch.
    pub fn graph(&self) -> &ShardedGraph {
        &self.graph
    }
}

/// The engine's current-epoch holder.
pub struct GraphStore {
    current: Mutex<Arc<EpochSnapshot>>,
}

impl GraphStore {
    /// A store whose first epoch (1) is `graph`.
    pub fn new(graph: ShardedGraph) -> Self {
        GraphStore {
            current: Mutex::new(Arc::new(EpochSnapshot {
                epoch: 1,
                graph: Arc::new(graph),
            })),
        }
    }

    /// The current epoch's snapshot; cheap (one mutex-guarded `Arc` clone)
    /// and never blocked by readers.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.current.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Publish `graph` as the next epoch; returns the new epoch number.
    /// Queries already running keep their old snapshot until they finish.
    pub fn publish(&self, graph: ShardedGraph) -> u64 {
        self.publish_shared(Arc::new(graph))
    }

    /// [`GraphStore::publish`] for a graph that is already behind an
    /// `Arc` — the compactor publishes its memoized materialization
    /// without cloning shards even while readers still hold it.
    pub fn publish_shared(&self, graph: Arc<ShardedGraph>) -> u64 {
        let mut current = self.current.lock().unwrap_or_else(|e| e.into_inner());
        let epoch = current.epoch + 1;
        *current = Arc::new(EpochSnapshot { epoch, graph });
        epoch
    }

    /// Republish the *current* graph under a new epoch number — a pure
    /// version bump sharing the existing shards. The chaos driver uses this
    /// to exercise mid-mix epoch transitions without paying a reshard;
    /// queries admitted before the bump keep their old epoch number.
    pub fn republish(&self) -> u64 {
        let mut current = self.current.lock().unwrap_or_else(|e| e.into_inner());
        let epoch = current.epoch + 1;
        let graph = Arc::clone(&current.graph);
        *current = Arc::new(EpochSnapshot { epoch, graph });
        epoch
    }

    /// Publish a new epoch from serialized [`framework snapshot
    /// bytes`](graphbig_framework::snapshot), resharded into `num_shards`.
    ///
    /// Decode failures are wrapped with the input length, so a truncated
    /// upload reports *where* it ran out ("need N bytes at offset X") and
    /// how much was received, instead of an opaque loader failure.
    pub fn publish_snapshot_bytes(
        &self,
        bytes: &[u8],
        num_shards: usize,
    ) -> Result<u64, graphbig_framework::error::GraphError> {
        let g = snapshot::load(bytes).map_err(|e| {
            graphbig_framework::error::GraphError::MalformedInput(format!(
                "publish_snapshot_bytes: cannot decode {}-byte snapshot: {e}",
                bytes.len()
            ))
        })?;
        let csr = Csr::from_graph(&g);
        Ok(self.publish(ShardedGraph::build(csr, num_shards)))
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.current.lock().unwrap_or_else(|e| e.into_inner()).epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_datagen::Dataset;

    fn graph(n: usize) -> ShardedGraph {
        let g = Dataset::Ldbc.generate_with_vertices(n);
        ShardedGraph::build(Csr::from_graph(&g), 4)
    }

    #[test]
    fn epochs_are_monotonic_and_old_snapshots_survive() {
        let store = GraphStore::new(graph(64));
        assert_eq!(store.epoch(), 1);
        let old = store.snapshot();
        assert_eq!(store.publish(graph(128)), 2);
        assert_eq!(store.epoch(), 2);
        // The reader that grabbed epoch 1 still sees epoch 1's graph.
        assert_eq!(old.epoch(), 1);
        assert_eq!(old.graph().num_vertices(), 64);
        assert_eq!(store.snapshot().graph().num_vertices(), 128);
    }

    #[test]
    fn republish_bumps_epoch_and_shares_the_graph() {
        let store = GraphStore::new(graph(64));
        let before = store.snapshot();
        assert_eq!(store.republish(), 2);
        let after = store.snapshot();
        assert_eq!(after.epoch(), 2);
        // Same shards, new version: the graphs are literally shared.
        assert!(std::ptr::eq(before.graph(), after.graph()));
    }

    #[test]
    fn publish_from_snapshot_bytes_round_trips() {
        let store = GraphStore::new(graph(32));
        let g = Dataset::Ldbc.generate_with_vertices(96);
        let bytes = snapshot::save(&g);
        let epoch = store.publish_snapshot_bytes(&bytes, 3).unwrap();
        assert_eq!(epoch, 2);
        let snap = store.snapshot();
        assert_eq!(snap.graph().num_vertices(), 96);
        assert!(!snap.graph().shards().is_empty());
        // Corrupt bytes are rejected without changing the epoch.
        assert!(store.publish_snapshot_bytes(&[1, 2, 3], 3).is_err());
        assert_eq!(store.epoch(), 2);
    }

    #[test]
    fn truncated_snapshot_bytes_report_offset_and_length() {
        let store = GraphStore::new(graph(32));
        let g = Dataset::Ldbc.generate_with_vertices(96);
        let bytes = snapshot::save(&g);
        let cut = bytes.len() / 2;
        let err = store
            .publish_snapshot_bytes(&bytes[..cut], 3)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains(&format!("{cut}-byte snapshot")),
            "error must state how many bytes arrived: {err}"
        );
        assert!(
            err.contains("truncated") && err.contains("at offset"),
            "error must carry the loader's offset context: {err}"
        );
        assert_eq!(store.epoch(), 1, "a failed publish must not bump the epoch");
    }
}
