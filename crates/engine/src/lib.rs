//! A sharded, admission-controlled graph query engine.
//!
//! GraphBIG frames graph *serving* — many concurrent queries of wildly
//! different cost hitting one graph — as a first-class industrial use case
//! alongside offline analytics. This crate reproduces that setting on the
//! GraphBIG-RS stack:
//!
//! - [`shard`]: degree-balanced partitioning of a CSR snapshot into
//!   contiguous [`CsrShard`]s with per-shard stats, plus the point queries
//!   (degree, k-hop) that run against a single shard window.
//! - [`store`]: the epoch-versioned [`GraphStore`] — queries pin an
//!   immutable `Arc<EpochSnapshot>` while a writer publishes new epochs.
//! - [`admission`]: bounded queue + in-flight cost budget with typed,
//!   synchronous [`RejectReason`]s. Budget charges run through the
//!   feedback cost model ([`SloTracker::correction`](slo::SloTracker)),
//!   which scales static estimates by observed per-key latency.
//! - [`cache`]: the `(epoch, delta-seq)`-keyed [`ResultCache`] — repeated
//!   hot requests are served bit-identically without re-running the
//!   kernel, and both a publish and a mutation make every stale entry
//!   unreachable by construction.
//! - [`delta`]: the live write path — a concurrent [`MutationBuffer`]
//!   folding batches into copy-on-write [`DeltaOverlay`]s that point
//!   queries read alongside the base CSR, plus the incremental
//!   connected-components kernel and the materialization step background
//!   compaction publishes as a new epoch.
//! - [`engine`]: the [`Engine`] itself — priority lanes (point queries
//!   never queue behind analytics), executor threads over one shared
//!   kernel pool, cooperative deadlines/cancellation, per-class latency
//!   metrics in the telemetry registry.
//! - [`traffic`]: seeded multi-tenant request mixes, the closed-loop
//!   driver behind the `graphbig-serve` binary and `benches/engine.rs`,
//!   and the sequential oracle that cross-checks every concurrent result.
//! - [`invariants`]: the post-chaos sweep proving the engine state and
//!   metrics are exactly consistent after a fault-injected mix
//!   (`run_chaos_mix` + a `FaultPlan` from `graphbig-chaos`). A failed
//!   sweep auto-dumps the always-on flight recorder.
//! - [`slo`]: live sliding-window latency stats ([`SloTracker`]) behind
//!   the `engine.window.*` gauges and the `--stats-interval` snapshot
//!   line — the observed-latency feed for SLO-aware adaptive serving.
//!
//! Every request carries a process-unique id minted at admission and
//! threaded through admission → enqueue → dequeue → run → resolve; each
//! stage drops a compact event into the telemetry crate's always-on
//! flight recorder, so failures come with the full per-request story.

#![warn(missing_docs)]

pub mod admission;
mod batch;
pub mod cache;
pub mod delta;
pub mod engine;
pub mod invariants;
pub mod shard;
pub mod slo;
pub mod store;
pub mod traffic;

pub use admission::{AdmissionController, RejectReason};
pub use cache::ResultCache;
pub use delta::{
    structural_digest, DeltaOverlay, IncrementalCComp, Mutation, MutationBuffer, MutationReceipt,
};
pub use engine::{Engine, EngineConfig, Query, QueryOutput, QueryResponse, QueryStatus, Ticket};
pub use invariants::{check_chaos_invariants, InvariantCheck, InvariantReport};
pub use shard::{CsrShard, ShardedGraph};
pub use slo::{ClassSlo, LaneStats, SloSpec, SloTracker, StatsSnapshot, STATS_SCHEMA};
pub use store::{EpochSnapshot, GraphStore};
pub use traffic::{MixSpec, TrafficReport};
