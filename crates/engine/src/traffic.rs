//! Seeded multi-tenant traffic mixes and the closed-loop driver.
//!
//! A [`MixSpec`] describes a reproducible request stream: a seed, a request
//! count, a client count, and per-class weights. [`generate_requests`]
//! expands it into a concrete query list (one deterministic PRNG stream,
//! independent of how many clients later replay it), and [`run_mix`]
//! replays that list closed-loop — each client thread submits its share in
//! order and waits for every response before sending the next — collecting
//! exact per-class p50/p99/p999 latencies into a [`TrafficReport`].
//!
//! Correctness is never sampled away: [`sequential_digests`] runs the same
//! query list one at a time (no concurrency, no deadlines) and
//! [`verify_against_oracle`] demands every concurrently *completed* result
//! be bit-identical to its sequential twin.

use std::time::{Duration, Instant};

use graphbig_chaos::{self as chaos, FaultAction, FaultPlan};
use graphbig_datagen::rng::Rng;
use graphbig_json::json_struct;
use graphbig_runtime::{CancelToken, ThreadPool};
use graphbig_workloads::service::{self, ServiceError};
use graphbig_workloads::{CostClass, Workload};

use crate::engine::{Engine, Query, QueryOutput, QueryResponse, QueryStatus};
use crate::shard::ShardedGraph;

/// A reproducible multi-tenant request mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixSpec {
    /// PRNG seed; the request list is a pure function of `(seed, requests,
    /// weights, n)`.
    pub seed: u64,
    /// Total requests across all clients.
    pub requests: usize,
    /// Closed-loop client threads replaying the stream.
    pub clients: usize,
    /// Relative weight of point queries (degree, k-hop).
    pub point_weight: u32,
    /// Relative weight of traversal queries (BFS).
    pub traversal_weight: u32,
    /// Relative weight of analytics queries (ccomp, kcore, spath).
    pub analytics_weight: u32,
    /// Per-request deadline in milliseconds (`null` = none).
    pub deadline_ms: Option<u64>,
}

json_struct!(MixSpec {
    seed,
    requests,
    clients,
    point_weight,
    traversal_weight,
    analytics_weight,
    deadline_ms
});

impl Default for MixSpec {
    fn default() -> Self {
        MixSpec {
            seed: 42,
            requests: 200,
            clients: 2,
            point_weight: 60,
            traversal_weight: 25,
            analytics_weight: 15,
            deadline_ms: None,
        }
    }
}

/// Expand a mix into its concrete query list for a graph with `n`
/// vertices. One PRNG stream, consumed in request order — the list does
/// not depend on `spec.clients`, so the same mix replayed at different
/// concurrency levels issues identical queries.
pub fn generate_requests(spec: &MixSpec, n: u32) -> Vec<Query> {
    let mut rng = Rng::seed_from_u64(spec.seed);
    let total = (spec.point_weight + spec.traversal_weight + spec.analytics_weight).max(1) as u64;
    let n = n.max(1);
    (0..spec.requests)
        .map(|_| {
            let roll = rng.u64_below(total) as u32;
            let source = rng.u64_below(n as u64) as u32;
            if roll < spec.point_weight {
                if rng.gen_bool(0.5) {
                    Query::Degree { vertex: source }
                } else {
                    Query::KHop { source, hops: 2 }
                }
            } else if roll < spec.point_weight + spec.traversal_weight {
                Query::Run {
                    workload: Workload::Bfs,
                    source,
                }
            } else {
                let workload = match rng.u64_below(3) {
                    0 => Workload::CComp,
                    1 => Workload::KCore,
                    _ => Workload::SPath,
                };
                Query::Run { workload, source }
            }
        })
        .collect()
}

/// Per-latency-class results of one mix replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// The class these stats cover.
    pub class: CostClass,
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries cancelled by their deadline.
    pub deadline_missed: u64,
    /// Queries cancelled explicitly or shed at shutdown.
    pub cancelled: u64,
    /// Queries whose kernel panicked (caught at the executor boundary).
    pub failed: u64,
    /// Median end-to-end latency (queue + exec) in microseconds.
    pub p50_us: u64,
    /// 99th percentile latency in microseconds.
    pub p99_us: u64,
    /// 99.9th percentile latency in microseconds.
    pub p999_us: u64,
    /// Worst observed latency in microseconds.
    pub max_us: u64,
}

/// Outcome of replaying one [`MixSpec`] against an [`Engine`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Requests in the mix (admitted + rejected).
    pub total_requests: usize,
    /// Requests that passed admission control.
    pub admitted: u64,
    /// Rejections due to a full submission queue.
    pub rejected_queue_full: u64,
    /// Rejections due to the in-flight cost budget.
    pub rejected_cost_budget: u64,
    /// Admitted queries whose workload has no serving entry point.
    pub unsupported: u64,
    /// Resubmissions after a rejection (0 unless a [`FaultPlan`] enables
    /// retry). Rejection counts above are *final* outcomes only; the
    /// engine-side `engine.rejected.*` counters see finals + retries.
    pub retries: u64,
    /// Wall-clock time of the whole replay in microseconds.
    pub wall_us: u64,
    /// Completed queries per second of wall time.
    pub throughput_rps: f64,
    /// Stats for every class, in `CostClass::ALL` order.
    pub classes: Vec<ClassStats>,
    /// `(request index, digest)` for every completed query, ascending by
    /// index — the concurrent side of the oracle comparison.
    pub completed_digests: Vec<(usize, u64)>,
    /// Fired-fault counts (`<site>.<action>`, count) captured before the
    /// plan was disarmed. Empty for plain [`run_mix`] replays.
    pub fault_fired: Vec<(String, u64)>,
}

impl TrafficReport {
    /// Stats for one class (always present).
    pub fn class(&self, c: CostClass) -> &ClassStats {
        self.classes
            .iter()
            .find(|s| s.class == c)
            .expect("report covers every class")
    }
}

/// Exact percentile from an unsorted latency sample (nearest-rank).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

enum Outcome {
    Rejected(crate::admission::RejectReason),
    Response(QueryResponse, Option<u64>),
}

/// Replay `spec` against `engine` closed-loop and collect the report.
///
/// Client `c` of `spec.clients` submits requests `i` with
/// `i % clients == c`, in order, waiting for each response before the
/// next submission — the standard closed-loop model, so offered load
/// scales with the client count and rejected requests are *not* retried.
pub fn run_mix(engine: &Engine, spec: &MixSpec) -> TrafficReport {
    drive_mix(engine, spec, &FaultPlan::none())
}

/// Disarms the process-wide fault plan even if the drive panics.
struct DisarmGuard;

impl Drop for DisarmGuard {
    fn drop(&mut self) {
        chaos::disarm();
    }
}

/// Replay `spec` under an armed [`FaultPlan`]: every failpoint decision is
/// keyed by `attempt << 32 | request_idx`, and a rejected submission is
/// retried up to `plan.max_retries` times with capped exponential backoff
/// plus seeded jitter. The plan is disarmed before returning — chaos runs
/// are process-serial — so the sequential oracle always runs injection-free.
pub fn run_chaos_mix(engine: &Engine, spec: &MixSpec, plan: &FaultPlan) -> TrafficReport {
    let _guard = if plan.is_empty() {
        None
    } else {
        chaos::arm(plan);
        Some(DisarmGuard)
    };
    let mut report = drive_mix(engine, spec, plan);
    report.fault_fired = chaos::fired_counts();
    report
}

fn drive_mix(engine: &Engine, spec: &MixSpec, plan: &FaultPlan) -> TrafficReport {
    let n = engine.store().snapshot().graph().num_vertices() as u32;
    let queries = generate_requests(spec, n);
    let clients = spec.clients.max(1);
    let deadline = spec.deadline_ms.map(Duration::from_millis);
    let start = Instant::now();
    let per_client: Vec<(Vec<(usize, Outcome)>, u64)> = std::thread::scope(|scope| {
        let queries = &queries;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut rng = Rng::seed_from_u64(
                        plan.seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut retries = 0u64;
                    let mut out = Vec::new();
                    for (i, q) in queries.iter().enumerate() {
                        if i % clients != c {
                            continue;
                        }
                        let mut attempt = 0u64;
                        let outcome = loop {
                            let tag = (attempt << 32) | i as u64;
                            // Failpoint `traffic.republish`: bump the epoch
                            // from the driver mid-mix before submitting.
                            if let Some(fault) = chaos::failpoint!("traffic.republish", tag) {
                                if fault.action == FaultAction::Republish {
                                    engine.republish();
                                }
                            }
                            match engine.submit_tagged(*q, deadline, tag) {
                                Ok(ticket) => {
                                    let response = ticket.wait();
                                    let digest = match &response.status {
                                        QueryStatus::Completed(o) => Some(o.digest()),
                                        _ => None,
                                    };
                                    break Outcome::Response(response, digest);
                                }
                                Err(reason) => {
                                    if attempt >= plan.max_retries {
                                        break Outcome::Rejected(reason);
                                    }
                                    retries += 1;
                                    // Flight-record the resubmission, keyed
                                    // by the failed attempt's chaos tag.
                                    graphbig_telemetry::recorder::record(
                                        graphbig_telemetry::recorder::EventKind::Retry,
                                        tag,
                                        attempt,
                                    );
                                    let exp = plan
                                        .backoff_base_us
                                        .saturating_mul(1u64 << attempt.min(20))
                                        .min(plan.backoff_cap_us.max(plan.backoff_base_us));
                                    let jitter = rng.u64_below(exp / 2 + 1);
                                    std::thread::sleep(Duration::from_micros(exp + jitter));
                                    attempt += 1;
                                }
                            }
                        };
                        out.push((i, outcome));
                    }
                    (out, retries)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_us = start.elapsed().as_micros().max(1) as u64;
    let mut retries = 0u64;
    let mut outcomes: Vec<(usize, Outcome)> = Vec::with_capacity(queries.len());
    for (client_outcomes, client_retries) in per_client {
        retries += client_retries;
        outcomes.extend(client_outcomes);
    }
    outcomes.sort_by_key(|(i, _)| *i);

    let mut admitted = 0u64;
    let mut rejected_queue_full = 0u64;
    let mut rejected_cost_budget = 0u64;
    let mut unsupported = 0u64;
    let mut completed_digests = Vec::new();
    let mut latencies: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut completed = [0u64; 3];
    let mut missed = [0u64; 3];
    let mut cancelled = [0u64; 3];
    let mut failed = [0u64; 3];
    for (i, outcome) in &outcomes {
        match outcome {
            Outcome::Rejected(crate::admission::RejectReason::QueueFull { .. }) => {
                rejected_queue_full += 1;
            }
            Outcome::Rejected(crate::admission::RejectReason::CostBudget { .. }) => {
                rejected_cost_budget += 1;
            }
            Outcome::Response(r, digest) => {
                admitted += 1;
                let lane = CostClass::ALL
                    .iter()
                    .position(|c| *c == r.class)
                    .expect("known class");
                match &r.status {
                    QueryStatus::Completed(_) => {
                        completed[lane] += 1;
                        latencies[lane].push(r.queue_us + r.exec_us);
                        completed_digests.push((*i, digest.expect("completed has digest")));
                    }
                    QueryStatus::DeadlineExceeded => missed[lane] += 1,
                    QueryStatus::Cancelled => cancelled[lane] += 1,
                    QueryStatus::Unsupported(_) => unsupported += 1,
                    QueryStatus::Failed(_) => failed[lane] += 1,
                }
            }
        }
    }
    let classes = CostClass::ALL
        .iter()
        .enumerate()
        .map(|(lane, &class)| {
            latencies[lane].sort_unstable();
            let s = &latencies[lane];
            ClassStats {
                class,
                completed: completed[lane],
                deadline_missed: missed[lane],
                cancelled: cancelled[lane],
                failed: failed[lane],
                p50_us: percentile(s, 0.50),
                p99_us: percentile(s, 0.99),
                p999_us: percentile(s, 0.999),
                max_us: s.last().copied().unwrap_or(0),
            }
        })
        .collect();
    let total_completed: u64 = completed.iter().sum();
    TrafficReport {
        total_requests: queries.len(),
        admitted,
        rejected_queue_full,
        rejected_cost_budget,
        unsupported,
        retries,
        wall_us,
        throughput_rps: total_completed as f64 * 1_000_000.0 / wall_us as f64,
        classes,
        completed_digests,
        fault_fired: Vec::new(),
    }
}

/// Run every query sequentially (one at a time, no deadline) against
/// `graph` and return its digest — `None` where the workload is not
/// servable. This is the oracle the concurrent replay is checked against.
pub fn sequential_digests(
    graph: &ShardedGraph,
    pool: &ThreadPool,
    queries: &[Query],
) -> Vec<Option<u64>> {
    let never = CancelToken::never();
    queries
        .iter()
        .map(|q| match *q {
            Query::Degree { vertex } => {
                let (out, inc) = graph.degree(vertex).unwrap_or((0, 0));
                Some(QueryOutput::Degree { out, inc }.digest())
            }
            Query::KHop { source, hops } => {
                Some(QueryOutput::KHop(graph.k_hop(source, hops)).digest())
            }
            Query::Run { workload, source } => {
                match service::run_service(workload, pool, graph.service(), source, &never) {
                    Ok(o) => Some(QueryOutput::Workload(o).digest()),
                    Err(ServiceError::Unsupported(_)) => None,
                    Err(ServiceError::Cancelled) => {
                        unreachable!("never token cannot cancel")
                    }
                }
            }
        })
        .collect()
}

/// Check every completed concurrent result against the sequential oracle.
/// Returns the number of results verified, or a description of the first
/// mismatch.
pub fn verify_against_oracle(
    report: &TrafficReport,
    oracle: &[Option<u64>],
) -> Result<u64, String> {
    let mut checked = 0u64;
    for &(idx, digest) in &report.completed_digests {
        match oracle.get(idx) {
            Some(Some(expected)) if *expected == digest => checked += 1,
            Some(Some(expected)) => {
                return Err(format!(
                    "request {idx}: concurrent digest {digest:#018x} != sequential {expected:#018x}"
                ));
            }
            Some(None) => {
                return Err(format!(
                    "request {idx}: completed concurrently but oracle deems it unsupported"
                ));
            }
            None => return Err(format!("request {idx}: outside oracle range")),
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use graphbig_datagen::Dataset;
    use graphbig_framework::csr::Csr;
    use graphbig_telemetry::metrics::Registry;

    fn csr(n: usize) -> Csr {
        Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n))
    }

    #[test]
    fn mix_spec_round_trips_through_json() {
        let spec = MixSpec {
            seed: 7,
            requests: 50,
            clients: 3,
            point_weight: 10,
            traversal_weight: 5,
            analytics_weight: 1,
            deadline_ms: Some(250),
        };
        let text = graphbig_json::to_pretty(&spec);
        let back: MixSpec = graphbig_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
        // `null` deadline parses as None.
        let none: MixSpec = graphbig_json::from_str(
            r#"{"seed":1,"requests":2,"clients":1,"point_weight":1,
                "traversal_weight":1,"analytics_weight":1,"deadline_ms":null}"#,
        )
        .unwrap();
        assert_eq!(none.deadline_ms, None);
    }

    #[test]
    fn request_generation_is_seeded_and_weighted() {
        let spec = MixSpec {
            requests: 400,
            ..MixSpec::default()
        };
        let a = generate_requests(&spec, 1000);
        let b = generate_requests(&spec, 1000);
        assert_eq!(a, b, "same seed, same stream");
        let other = generate_requests(
            &MixSpec {
                seed: 43,
                ..spec.clone()
            },
            1000,
        );
        assert_ne!(a, other, "different seed, different stream");
        let classes: Vec<usize> = CostClass::ALL
            .iter()
            .map(|c| a.iter().filter(|q| q.class() == *c).count())
            .collect();
        // 60/25/15 weights over 400 requests: every class is represented
        // and point queries dominate.
        assert!(classes.iter().all(|&c| c > 0), "{classes:?}");
        assert!(
            classes[0] > classes[1] && classes[0] > classes[2],
            "{classes:?}"
        );
    }

    #[test]
    fn closed_loop_mix_matches_sequential_oracle() {
        let reg = Registry::new();
        let engine = Engine::with_registry(
            EngineConfig {
                pool_threads: 2,
                ..EngineConfig::default()
            },
            csr(400),
            &reg,
        );
        let spec = MixSpec {
            requests: 60,
            clients: 3,
            ..MixSpec::default()
        };
        let report = run_mix(&engine, &spec);
        assert_eq!(report.total_requests, 60);
        assert_eq!(
            report.admitted, 60,
            "closed-loop at 3 clients cannot overflow a 64-deep queue"
        );
        let snapshot = engine.store().snapshot();
        let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
        let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
        let checked = verify_against_oracle(&report, &oracle).expect("no mismatches");
        assert_eq!(checked, report.completed_digests.len() as u64);
        assert_eq!(checked, 60, "no deadline set: everything completes");
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&sorted, 0.50), 500);
        assert_eq!(percentile(&sorted, 0.99), 990);
        assert_eq!(percentile(&sorted, 0.999), 999);
        assert_eq!(percentile(&sorted, 1.0), 1000);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.999), 7);
    }

    #[test]
    fn report_counts_balance() {
        let reg = Registry::new();
        let engine = Engine::with_registry(
            EngineConfig {
                pool_threads: 2,
                queue_capacity: 2,
                cost_budget: 5_000,
                ..EngineConfig::default()
            },
            csr(600),
            &reg,
        );
        let spec = MixSpec {
            requests: 80,
            clients: 4,
            deadline_ms: Some(2_000),
            ..MixSpec::default()
        };
        let report = run_mix(&engine, &spec);
        let outcomes: u64 = report
            .classes
            .iter()
            .map(|c| c.completed + c.deadline_missed + c.cancelled + c.failed)
            .sum::<u64>()
            + report.unsupported;
        assert_eq!(outcomes, report.admitted);
        assert_eq!(
            report.admitted + report.rejected_queue_full + report.rejected_cost_budget,
            report.total_requests as u64
        );
        // Whatever did complete must match the oracle even under shedding.
        let snapshot = engine.store().snapshot();
        let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
        let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
        verify_against_oracle(&report, &oracle).expect("no mismatches");
    }
}
