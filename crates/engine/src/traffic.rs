//! Seeded multi-tenant traffic mixes and the closed-loop driver.
//!
//! A [`MixSpec`] describes a reproducible request stream: a seed, a request
//! count, a client count, and per-class weights. [`generate_requests`]
//! expands it into a concrete query list (one deterministic PRNG stream,
//! independent of how many clients later replay it), and [`run_mix`]
//! replays that list closed-loop — each client thread submits its share in
//! order and waits for every response before sending the next — collecting
//! exact per-class p50/p99/p999 latencies into a [`TrafficReport`].
//!
//! Correctness is never sampled away: [`sequential_digests`] runs the same
//! query list one at a time (no concurrency, no deadlines) and
//! [`verify_against_oracle`] demands every concurrently *completed* result
//! be bit-identical to its sequential twin.
//!
//! Mixes may also carry *writes* (`write_weight > 0`): the generator draws
//! symbolic [`WriteOp`]s that [`resolve_write`] turns into concrete edge
//! mutations against the drive-start base snapshot. Resolved targets are
//! disjoint-or-idempotent, so the final edge set is independent of client
//! interleaving and of when the compactor folds — which is exactly what
//! [`mutation_oracle_digest`] checks: a sequential single-threaded replay
//! of the same writes must digest-identical to the engine's live state
//! ([`live_engine_digest`]), mid-overlay or post-compaction alike.

use std::time::{Duration, Instant};

use graphbig_chaos::{self as chaos, FaultAction, FaultPlan};
use graphbig_datagen::rng::Rng;
use graphbig_runtime::{CancelToken, ThreadPool};
use graphbig_telemetry::{MetricSink, RunManifest};
use graphbig_workloads::service::{self, ServiceError};
use graphbig_workloads::{CostClass, Workload};

use crate::engine::{Engine, Query, QueryOutput, QueryResponse, QueryStatus};
use crate::shard::ShardedGraph;
use crate::slo::SloSpec;

/// A reproducible multi-tenant request mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixSpec {
    /// PRNG seed; the request list is a pure function of `(seed, requests,
    /// weights, n)`.
    pub seed: u64,
    /// Total requests across all clients.
    pub requests: usize,
    /// Closed-loop client threads replaying the stream.
    pub clients: usize,
    /// Relative weight of point queries (degree, k-hop).
    pub point_weight: u32,
    /// Relative weight of traversal queries (BFS).
    pub traversal_weight: u32,
    /// Relative weight of analytics queries (ccomp, kcore, spath).
    pub analytics_weight: u32,
    /// Relative weight of write ops (edge insert/delete). Defaults to 0 —
    /// a pure-read mix whose request stream is byte-identical to what the
    /// pre-write generator produced, so every old mix file is unchanged.
    pub write_weight: u32,
    /// Of the write ops, the percentage that delete a base edge instead of
    /// inserting a new one (default 25).
    pub write_delete_percent: u32,
    /// Per-request deadline in milliseconds (`null` = none).
    pub deadline_ms: Option<u64>,
    /// Draw every source/vertex from a pool of this many hot vertices
    /// instead of uniformly over the graph (`null` = uniform). Small pools
    /// model the repeated-hot-request traffic internet services see — and
    /// are what makes the result cache earn its keep.
    pub hot_sources: Option<u32>,
    /// Hop bound for generated k-hop point queries (default 2).
    pub khop_hops: u32,
    /// Per-class latency targets checked end-of-run (`null` = unchecked).
    pub slo: Option<SloSpec>,
}

// Hand-written codec instead of `json_struct!`: the newest members
// (`write_weight`, `write_delete_percent`, `hot_sources`, `khop_hops`,
// `slo`) must default when absent so every pre-existing mix file keeps
// parsing — and keeps generating the exact same request stream.
impl graphbig_json::ToJson for MixSpec {
    fn to_json(&self) -> graphbig_json::Json {
        graphbig_json::Json::Obj(vec![
            ("seed".to_string(), self.seed.to_json()),
            ("requests".to_string(), self.requests.to_json()),
            ("clients".to_string(), self.clients.to_json()),
            ("point_weight".to_string(), self.point_weight.to_json()),
            (
                "traversal_weight".to_string(),
                self.traversal_weight.to_json(),
            ),
            (
                "analytics_weight".to_string(),
                self.analytics_weight.to_json(),
            ),
            ("write_weight".to_string(), self.write_weight.to_json()),
            (
                "write_delete_percent".to_string(),
                self.write_delete_percent.to_json(),
            ),
            ("deadline_ms".to_string(), self.deadline_ms.to_json()),
            ("hot_sources".to_string(), self.hot_sources.to_json()),
            ("khop_hops".to_string(), self.khop_hops.to_json()),
            ("slo".to_string(), self.slo.to_json()),
        ])
    }
}

impl graphbig_json::FromJson for MixSpec {
    fn from_json(v: &graphbig_json::Json) -> Result<Self, graphbig_json::DecodeError> {
        use graphbig_json::codec::{field, field_or_default};
        Ok(MixSpec {
            seed: field(v, "seed")?,
            requests: field(v, "requests")?,
            clients: field(v, "clients")?,
            point_weight: field(v, "point_weight")?,
            traversal_weight: field(v, "traversal_weight")?,
            analytics_weight: field(v, "analytics_weight")?,
            write_weight: field_or_default(v, "write_weight")?,
            write_delete_percent: field_or_default::<Option<u32>>(v, "write_delete_percent")?
                .unwrap_or(25),
            deadline_ms: field_or_default(v, "deadline_ms")?,
            hot_sources: field_or_default(v, "hot_sources")?,
            khop_hops: field_or_default::<Option<u32>>(v, "khop_hops")?.unwrap_or(2),
            slo: field_or_default(v, "slo")?,
        })
    }
}

impl Default for MixSpec {
    fn default() -> Self {
        MixSpec {
            seed: 42,
            requests: 200,
            clients: 2,
            point_weight: 60,
            traversal_weight: 25,
            analytics_weight: 15,
            write_weight: 0,
            write_delete_percent: 25,
            deadline_ms: None,
            hot_sources: None,
            khop_hops: 2,
            slo: None,
        }
    }
}

/// A seeded write drawn by the generator. Targets are *symbolic* — a
/// source vertex plus a salt — and only become a concrete mutation batch
/// when [`resolve_write`] pins them against the drive-start base
/// snapshot. That makes the resolved batch a pure function of `(op,
/// base)`: it does not depend on client interleaving, on how many writes
/// landed first, or on where the compactor folded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert an out-edge of `u`; the destination is probed from `salt`
    /// over non-base, non-self pairs.
    Insert {
        /// Source vertex (folded modulo `n` at resolve time).
        u: u32,
        /// Seeded draw that picks the probe start for the destination.
        salt: u64,
    },
    /// Delete the `salt % out_degree(u)`-th base out-edge of `u` (no-op
    /// batch when `u` has no base out-edges).
    Delete {
        /// Source vertex (folded modulo `n` at resolve time).
        u: u32,
        /// Seeded draw that picks which base out-edge dies.
        salt: u64,
    },
}

/// One generated request: a read query or a write op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MixOp {
    /// A point/traversal/analytics query, checked per-request against the
    /// sequential oracle in read-only mixes.
    Read(Query),
    /// An edge mutation, checked end-of-run against
    /// [`mutation_oracle_digest`].
    Write(WriteOp),
}

/// Expand a mix into its concrete op list for a graph with `n` vertices.
/// One PRNG stream, consumed in request order — the list does not depend
/// on `spec.clients`, so the same mix replayed at different concurrency
/// levels issues identical ops. A `hot_sources` pool folds every source
/// into `[0, pool)` *after* the uniform draw, so the draw sequence (and
/// therefore every other request in the stream) is unchanged by the pool
/// size. Write ops draw *extra* PRNG values (a salt and the delete/insert
/// split), but only on rolls that land in the write band — a
/// `write_weight` of 0 consumes exactly the historical draw sequence.
pub fn generate_ops(spec: &MixSpec, n: u32) -> Vec<MixOp> {
    let mut rng = Rng::seed_from_u64(spec.seed);
    let read_total = spec.point_weight + spec.traversal_weight + spec.analytics_weight;
    let total = (read_total + spec.write_weight).max(1) as u64;
    let n = n.max(1);
    let pool = spec.hot_sources.map(|h| h.clamp(1, n));
    let hops = spec.khop_hops.max(1);
    (0..spec.requests)
        .map(|_| {
            let roll = rng.u64_below(total) as u32;
            let mut source = rng.u64_below(n as u64) as u32;
            if let Some(pool) = pool {
                source %= pool;
            }
            if roll < spec.point_weight {
                MixOp::Read(if rng.gen_bool(0.5) {
                    Query::Degree { vertex: source }
                } else {
                    Query::KHop { source, hops }
                })
            } else if roll < spec.point_weight + spec.traversal_weight {
                MixOp::Read(Query::Run {
                    workload: Workload::Bfs,
                    source,
                })
            } else if roll < read_total {
                let workload = match rng.u64_below(3) {
                    0 => Workload::CComp,
                    1 => Workload::KCore,
                    _ => Workload::SPath,
                };
                MixOp::Read(Query::Run { workload, source })
            } else {
                let salt = rng.next_u64();
                MixOp::Write(
                    if rng.u64_below(100) < spec.write_delete_percent.min(100) as u64 {
                        WriteOp::Delete { u: source, salt }
                    } else {
                        WriteOp::Insert { u: source, salt }
                    },
                )
            }
        })
        .collect()
}

/// The read-only view of [`generate_ops`]: write ops are dropped. For a
/// mix with `write_weight == 0` this is the full stream and is
/// byte-identical to what the pre-write generator produced.
pub fn generate_requests(spec: &MixSpec, n: u32) -> Vec<Query> {
    generate_ops(spec, n)
        .into_iter()
        .filter_map(|op| match op {
            MixOp::Read(q) => Some(q),
            MixOp::Write(_) => None,
        })
        .collect()
}

/// Pin a symbolic write against `base` into a concrete mutation batch.
///
/// Deletes target only base edges; inserts probe (linearly from
/// `salt % n`) for the first non-self pair *not* in the base, with a
/// weight that is a pure hash of the pair. Base pairs and probed pairs
/// are therefore disjoint, and two ops resolving to the same pair carry
/// identical mutations — so every resolved stream is commutative and
/// idempotent over the overlay's set semantics: any interleaving, with
/// compaction folding at any point, reaches the same final edge set.
pub fn resolve_write(base: &ShardedGraph, op: WriteOp) -> Vec<crate::delta::Mutation> {
    use crate::delta::Mutation;
    let n = base.num_vertices() as u32;
    if n == 0 {
        return Vec::new();
    }
    match op {
        WriteOp::Delete { u, salt } => {
            let u = u % n;
            let row = base.service().out().neighbors(u);
            if row.is_empty() {
                return Vec::new();
            }
            let v = row[(salt % row.len() as u64) as usize];
            vec![Mutation::RemoveEdge { u, v }]
        }
        WriteOp::Insert { u, salt } => {
            let u = u % n;
            let row = base.service().out().neighbors(u);
            let mut v = (salt % n as u64) as u32;
            for _ in 0..n {
                if v != u && !row.contains(&v) {
                    return vec![Mutation::AddEdge {
                        u,
                        v,
                        w: synthetic_weight(u, v),
                    }];
                }
                v = (v + 1) % n;
            }
            Vec::new()
        }
    }
}

/// Deterministic weight for a generated insert: a pure hash of the edge
/// pair, so re-resolving (or re-applying) the same pair always writes the
/// same weight.
fn synthetic_weight(u: u32, v: u32) -> f32 {
    let h = (((u as u64) << 32) | v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    1.0 + (h >> 40) as f32 / 65_536.0
}

/// The write-path oracle: replay every write in `ops` sequentially,
/// single-threaded, through a fresh [`MutationBuffer`] over `base`, and
/// digest the result. Because resolved writes commute, this must equal
/// [`live_engine_digest`] after any concurrent replay of the same mix —
/// whether the engine is still mid-overlay or the compactor already
/// folded.
pub fn mutation_oracle_digest(base: &ShardedGraph, ops: &[MixOp]) -> u64 {
    let buffer = crate::delta::MutationBuffer::new(1, base.num_vertices() as u32);
    for op in ops {
        if let MixOp::Write(w) = op {
            buffer.apply(base, &resolve_write(base, *w));
        }
    }
    buffer.current().live_digest(base)
}

/// Structural digest of the engine's *current* graph state: the live
/// overlay view when mutations are still buffered, the published epoch's
/// graph otherwise. Comparable with [`mutation_oracle_digest`] and with
/// [`crate::delta::structural_digest`] of any rebuilt-from-scratch graph.
pub fn live_engine_digest(engine: &Engine) -> u64 {
    let snap = engine.store().snapshot();
    let ov = engine.overlay();
    if ov.epoch() == snap.epoch() && !ov.is_empty() {
        ov.live_digest(snap.graph())
    } else {
        crate::delta::structural_digest(snap.graph())
    }
}

/// Per-latency-class results of one mix replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// The class these stats cover.
    pub class: CostClass,
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries cancelled by their deadline.
    pub deadline_missed: u64,
    /// Queries cancelled explicitly or shed at shutdown.
    pub cancelled: u64,
    /// Queries whose kernel panicked (caught at the executor boundary).
    pub failed: u64,
    /// Median end-to-end latency (queue + exec) in microseconds.
    pub p50_us: u64,
    /// 99th percentile latency in microseconds.
    pub p99_us: u64,
    /// 99.9th percentile latency in microseconds.
    pub p999_us: u64,
    /// Worst observed latency in microseconds.
    pub max_us: u64,
}

/// Outcome of replaying one [`MixSpec`] against an [`Engine`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Requests in the mix (admitted + rejected).
    pub total_requests: usize,
    /// Requests that passed admission control.
    pub admitted: u64,
    /// Rejections due to a full submission queue.
    pub rejected_queue_full: u64,
    /// Rejections due to the in-flight cost budget.
    pub rejected_cost_budget: u64,
    /// Admitted queries whose workload has no serving entry point.
    pub unsupported: u64,
    /// Resubmissions after a rejection (0 unless a [`FaultPlan`] enables
    /// retry). Rejection counts above are *final* outcomes only; the
    /// engine-side `engine.rejected.*` counters see finals + retries.
    pub retries: u64,
    /// Wall-clock time of the whole replay in microseconds.
    pub wall_us: u64,
    /// Completed queries per second of wall time.
    pub throughput_rps: f64,
    /// Stats for every class, in `CostClass::ALL` order.
    pub classes: Vec<ClassStats>,
    /// `(request index, digest)` for every completed *read*, ascending by
    /// index — the concurrent side of the per-request oracle comparison.
    /// Writes carry no digest; their check is [`mutation_oracle_digest`].
    pub completed_digests: Vec<(usize, u64)>,
    /// Fired-fault counts (`<site>.<action>`, count) captured before the
    /// plan was disarmed. Empty for plain [`run_mix`] replays.
    pub fault_fired: Vec<(String, u64)>,
}

impl TrafficReport {
    /// Stats for one class (always present).
    pub fn class(&self, c: CostClass) -> &ClassStats {
        self.classes
            .iter()
            .find(|s| s.class == c)
            .expect("report covers every class")
    }
}

/// One latency target a finished mix failed to meet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloViolation {
    /// The latency class the target applied to.
    pub class: CostClass,
    /// Which quantile missed (`"p99"` or `"p999"`).
    pub quantile: &'static str,
    /// The observed latency in microseconds.
    pub observed_us: u64,
    /// The target it had to stay under.
    pub target_us: u64,
}

/// The end-of-run verdict of a [`SloSpec`] against a [`TrafficReport`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SloReport {
    /// Number of `(class, quantile)` targets checked.
    pub checked: u64,
    /// Every target that was missed.
    pub violations: Vec<SloViolation>,
}

impl SloReport {
    /// True when every checked target was met.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Publish the `slo.*` section: a `checked`/`violations` counter pair
    /// (the latter is what `graphbig-report --check` gates on), one
    /// target gauge per checked quantile, and a note per violation.
    pub fn write_to_manifest(&self, spec: &SloSpec, manifest: &mut RunManifest) {
        manifest.counter("slo.checked", self.checked);
        manifest.counter("slo.violations", self.violations.len() as u64);
        for (lane, class) in CostClass::ALL.iter().enumerate() {
            if let Some(target) = spec.for_lane(lane) {
                let key = class.name();
                manifest.gauge(&format!("slo.target.p99_us.{key}"), target.p99_us as f64);
                manifest.gauge(&format!("slo.target.p999_us.{key}"), target.p999_us as f64);
            }
        }
        for v in &self.violations {
            manifest.notes.push(format!(
                "slo violated: {} {} observed {}us > target {}us",
                v.class.name(),
                v.quantile,
                v.observed_us,
                v.target_us
            ));
        }
    }

    /// One line per violation, for terminal output.
    pub fn render(&self) -> String {
        if self.ok() {
            return format!("  ok  all {} SLO targets met", self.checked);
        }
        self.violations
            .iter()
            .map(|v| {
                format!(
                    "  MISS {} {} — observed {}us > target {}us",
                    v.class.name(),
                    v.quantile,
                    v.observed_us,
                    v.target_us
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Check every target in `spec` against the exact end-to-end latencies in
/// `report`. A class with no completed queries trivially meets its
/// targets (its percentiles are 0); a zero target is "no target" and is
/// not counted as checked.
pub fn evaluate_slo(report: &TrafficReport, spec: &SloSpec) -> SloReport {
    let mut out = SloReport::default();
    for (lane, class) in CostClass::ALL.iter().enumerate() {
        let Some(target) = spec.for_lane(lane) else {
            continue;
        };
        let stats = report.class(*class);
        for (quantile, observed, target_us) in [
            ("p99", stats.p99_us, target.p99_us),
            ("p999", stats.p999_us, target.p999_us),
        ] {
            if target_us == 0 {
                continue;
            }
            out.checked += 1;
            if observed > target_us {
                out.violations.push(SloViolation {
                    class: *class,
                    quantile,
                    observed_us: observed,
                    target_us,
                });
            }
        }
    }
    out
}

/// Exact percentile from a sorted latency sample, linearly interpolated
/// between the two order statistics straddling rank `q·(n-1)` and rounded
/// to the nearest microsecond.
///
/// This is the raw-sample analogue of
/// [`HistogramSnapshot::quantile`](graphbig_telemetry::HistogramSnapshot::quantile)'s
/// within-bucket interpolation: both estimators move smoothly with `q`
/// instead of jumping between elements, so the exact report and the
/// sliding-window gauges agree in definition. The old nearest-rank rule
/// could make p999 snap to the same element as p99 on small samples (and
/// its `ceil` ranking was one rounding error away from indexing past the
/// end); interpolation keeps quantiles monotone in `q`, always in range,
/// and distinct whenever the straddled order statistics differ.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let h = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = (h.floor() as usize).min(sorted.len() - 1);
    let hi = (lo + 1).min(sorted.len() - 1);
    let frac = h - lo as f64;
    (sorted[lo] as f64 + frac * (sorted[hi] as f64 - sorted[lo] as f64)).round() as u64
}

enum Outcome {
    Rejected(crate::admission::RejectReason),
    Response(QueryResponse, Option<u64>),
    /// A write batch applied synchronously, with its end-to-end latency.
    Applied(u64),
}

/// Replay `spec` against `engine` closed-loop and collect the report.
///
/// Client `c` of `spec.clients` submits requests `i` with
/// `i % clients == c`, in order, waiting for each response before the
/// next submission — the standard closed-loop model, so offered load
/// scales with the client count and rejected requests are *not* retried.
pub fn run_mix(engine: &Engine, spec: &MixSpec) -> TrafficReport {
    drive_mix(engine, spec, &FaultPlan::none())
}

/// Disarms the process-wide fault plan even if the drive panics.
struct DisarmGuard;

impl Drop for DisarmGuard {
    fn drop(&mut self) {
        chaos::disarm();
    }
}

/// Replay `spec` under an armed [`FaultPlan`]: every failpoint decision is
/// keyed by `attempt << 32 | request_idx`, and a rejected submission is
/// retried up to `plan.max_retries` times with capped exponential backoff
/// plus seeded jitter. The plan is disarmed before returning — chaos runs
/// are process-serial — so the sequential oracle always runs injection-free.
pub fn run_chaos_mix(engine: &Engine, spec: &MixSpec, plan: &FaultPlan) -> TrafficReport {
    let _guard = if plan.is_empty() {
        None
    } else {
        chaos::arm(plan);
        Some(DisarmGuard)
    };
    let mut report = drive_mix(engine, spec, plan);
    report.fault_fired = chaos::fired_counts();
    report
}

fn drive_mix(engine: &Engine, spec: &MixSpec, plan: &FaultPlan) -> TrafficReport {
    // The base snapshot every write in this drive resolves against. Held
    // for the whole replay so compaction mid-mix cannot change what a
    // later op means.
    let base = engine.store().snapshot();
    let ops = generate_ops(spec, base.graph().num_vertices() as u32);
    let clients = spec.clients.max(1);
    let deadline = spec.deadline_ms.map(Duration::from_millis);
    let start = Instant::now();
    let per_client: Vec<(Vec<(usize, Outcome)>, u64)> = std::thread::scope(|scope| {
        let ops = &ops;
        let base = &base;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut rng = Rng::seed_from_u64(
                        plan.seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut retries = 0u64;
                    let mut out = Vec::new();
                    for (i, op) in ops.iter().enumerate() {
                        if i % clients != c {
                            continue;
                        }
                        let batch = match op {
                            MixOp::Write(w) => resolve_write(base.graph(), *w),
                            MixOp::Read(_) => Vec::new(),
                        };
                        let mut attempt = 0u64;
                        let outcome = loop {
                            let tag = (attempt << 32) | i as u64;
                            // Failpoint `traffic.republish`: bump the epoch
                            // from the driver mid-mix before submitting.
                            if let Some(fault) = chaos::failpoint!("traffic.republish", tag) {
                                if fault.action == FaultAction::Republish {
                                    engine.republish();
                                }
                            }
                            let submitted = match op {
                                MixOp::Read(q) => {
                                    engine.submit_tagged(*q, deadline, tag).map(|ticket| {
                                        let response = ticket.wait();
                                        let digest = match &response.status {
                                            QueryStatus::Completed(o) => Some(o.digest()),
                                            _ => None,
                                        };
                                        Outcome::Response(response, digest)
                                    })
                                }
                                MixOp::Write(_) => {
                                    let t0 = Instant::now();
                                    engine.mutate_tagged(&batch, tag).map(|_receipt| {
                                        Outcome::Applied(t0.elapsed().as_micros().max(1) as u64)
                                    })
                                }
                            };
                            match submitted {
                                Ok(outcome) => break outcome,
                                Err(reason) => {
                                    if attempt >= plan.max_retries {
                                        break Outcome::Rejected(reason);
                                    }
                                    retries += 1;
                                    // Flight-record the resubmission, keyed
                                    // by the failed attempt's chaos tag.
                                    graphbig_telemetry::recorder::record(
                                        graphbig_telemetry::recorder::EventKind::Retry,
                                        tag,
                                        attempt,
                                    );
                                    let exp = plan
                                        .backoff_base_us
                                        .saturating_mul(1u64 << attempt.min(20))
                                        .min(plan.backoff_cap_us.max(plan.backoff_base_us));
                                    let jitter = rng.u64_below(exp / 2 + 1);
                                    std::thread::sleep(Duration::from_micros(exp + jitter));
                                    attempt += 1;
                                }
                            }
                        };
                        out.push((i, outcome));
                    }
                    (out, retries)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_us = start.elapsed().as_micros().max(1) as u64;
    let mut retries = 0u64;
    let mut outcomes: Vec<(usize, Outcome)> = Vec::with_capacity(ops.len());
    for (client_outcomes, client_retries) in per_client {
        retries += client_retries;
        outcomes.extend(client_outcomes);
    }
    outcomes.sort_by_key(|(i, _)| *i);

    let mut admitted = 0u64;
    let mut rejected_queue_full = 0u64;
    let mut rejected_cost_budget = 0u64;
    let mut unsupported = 0u64;
    let mut completed_digests = Vec::new();
    let mut latencies: [Vec<u64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut completed = [0u64; 4];
    let mut missed = [0u64; 4];
    let mut cancelled = [0u64; 4];
    let mut failed = [0u64; 4];
    const WRITE_LANE: usize = 3;
    for (i, outcome) in &outcomes {
        match outcome {
            Outcome::Rejected(crate::admission::RejectReason::QueueFull { .. }) => {
                rejected_queue_full += 1;
            }
            Outcome::Rejected(crate::admission::RejectReason::CostBudget { .. }) => {
                rejected_cost_budget += 1;
            }
            Outcome::Applied(us) => {
                admitted += 1;
                completed[WRITE_LANE] += 1;
                latencies[WRITE_LANE].push(*us);
            }
            Outcome::Response(r, digest) => {
                admitted += 1;
                let lane = CostClass::ALL
                    .iter()
                    .position(|c| *c == r.class)
                    .expect("known class");
                match &r.status {
                    QueryStatus::Completed(_) => {
                        completed[lane] += 1;
                        latencies[lane].push(r.queue_us + r.exec_us);
                        completed_digests.push((*i, digest.expect("completed has digest")));
                    }
                    QueryStatus::DeadlineExceeded => missed[lane] += 1,
                    QueryStatus::Cancelled => cancelled[lane] += 1,
                    QueryStatus::Unsupported(_) => unsupported += 1,
                    QueryStatus::Failed(_) => failed[lane] += 1,
                }
            }
        }
    }
    let classes = CostClass::ALL
        .iter()
        .enumerate()
        .map(|(lane, &class)| {
            latencies[lane].sort_unstable();
            let s = &latencies[lane];
            ClassStats {
                class,
                completed: completed[lane],
                deadline_missed: missed[lane],
                cancelled: cancelled[lane],
                failed: failed[lane],
                p50_us: percentile(s, 0.50),
                p99_us: percentile(s, 0.99),
                p999_us: percentile(s, 0.999),
                max_us: s.last().copied().unwrap_or(0),
            }
        })
        .collect();
    let total_completed: u64 = completed.iter().sum();
    TrafficReport {
        total_requests: ops.len(),
        admitted,
        rejected_queue_full,
        rejected_cost_budget,
        unsupported,
        retries,
        wall_us,
        throughput_rps: total_completed as f64 * 1_000_000.0 / wall_us as f64,
        classes,
        completed_digests,
        fault_fired: Vec::new(),
    }
}

/// Run every query sequentially (one at a time, no deadline) against
/// `graph` and return its digest — `None` where the workload is not
/// servable. This is the oracle the concurrent replay is checked against.
pub fn sequential_digests(
    graph: &ShardedGraph,
    pool: &ThreadPool,
    queries: &[Query],
) -> Vec<Option<u64>> {
    let never = CancelToken::never();
    queries
        .iter()
        .map(|q| match *q {
            Query::Degree { vertex } => {
                let (out, inc) = graph.degree(vertex).unwrap_or((0, 0));
                Some(QueryOutput::Degree { out, inc }.digest())
            }
            Query::KHop { source, hops } => {
                Some(QueryOutput::KHop(graph.k_hop(source, hops)).digest())
            }
            Query::Run { workload, source } => {
                match service::run_service(workload, pool, graph.service(), source, &never) {
                    Ok(o) => Some(QueryOutput::Workload(o).digest()),
                    Err(ServiceError::Unsupported(_)) => None,
                    Err(ServiceError::Cancelled) => {
                        unreachable!("never token cannot cancel")
                    }
                }
            }
        })
        .collect()
}

/// Check every completed concurrent result against the sequential oracle.
/// Returns the number of results verified, or a description of the first
/// mismatch.
pub fn verify_against_oracle(
    report: &TrafficReport,
    oracle: &[Option<u64>],
) -> Result<u64, String> {
    let mut checked = 0u64;
    for &(idx, digest) in &report.completed_digests {
        match oracle.get(idx) {
            Some(Some(expected)) if *expected == digest => checked += 1,
            Some(Some(expected)) => {
                return Err(format!(
                    "request {idx}: concurrent digest {digest:#018x} != sequential {expected:#018x}"
                ));
            }
            Some(None) => {
                return Err(format!(
                    "request {idx}: completed concurrently but oracle deems it unsupported"
                ));
            }
            None => return Err(format!("request {idx}: outside oracle range")),
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use graphbig_datagen::Dataset;
    use graphbig_framework::csr::Csr;
    use graphbig_telemetry::metrics::Registry;

    fn csr(n: usize) -> Csr {
        Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n))
    }

    #[test]
    fn mix_spec_round_trips_through_json() {
        let spec = MixSpec {
            seed: 7,
            requests: 50,
            clients: 3,
            point_weight: 10,
            traversal_weight: 5,
            analytics_weight: 1,
            write_weight: 4,
            write_delete_percent: 40,
            deadline_ms: Some(250),
            hot_sources: Some(16),
            khop_hops: 3,
            slo: Some(crate::slo::SloSpec {
                point: Some(crate::slo::ClassSlo {
                    p99_us: 700,
                    p999_us: 3_000,
                }),
                traversal: None,
                analytics: None,
                write: Some(crate::slo::ClassSlo {
                    p99_us: 900,
                    p999_us: 0,
                }),
            }),
        };
        let text = graphbig_json::to_pretty(&spec);
        let back: MixSpec = graphbig_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
        // `null` deadline parses as None.
        let none: MixSpec = graphbig_json::from_str(
            r#"{"seed":1,"requests":2,"clients":1,"point_weight":1,
                "traversal_weight":1,"analytics_weight":1,"deadline_ms":null}"#,
        )
        .unwrap();
        assert_eq!(none.deadline_ms, None);
    }

    #[test]
    fn old_mix_files_parse_with_defaulted_new_fields() {
        // Exactly the seven fields every pre-existing mix file carries —
        // must still parse, with the new knobs at their defaults.
        let old: MixSpec = graphbig_json::from_str(
            r#"{"seed":9,"requests":30,"clients":2,"point_weight":60,
                "traversal_weight":25,"analytics_weight":15,"deadline_ms":100}"#,
        )
        .unwrap();
        assert_eq!(old.hot_sources, None);
        assert_eq!(old.khop_hops, 2);
        assert_eq!(old.slo, None);
        assert_eq!(old.write_weight, 0, "old files stay pure-read");
        assert_eq!(old.write_delete_percent, 25);
        // And the defaulted spec generates the exact same stream as the
        // pre-extension generator did (hops hardcoded to 2, uniform
        // sources, no write band): pin it against a spec that spells the
        // defaults out.
        let explicit = MixSpec {
            hot_sources: None,
            khop_hops: 2,
            write_weight: 0,
            write_delete_percent: 25,
            slo: Some(crate::slo::SloSpec::default()),
            ..old.clone()
        };
        assert_eq!(
            generate_requests(&old, 500),
            generate_requests(&explicit, 500)
        );
        // With write_weight 0 the op stream is all reads — the read view
        // *is* the stream, position for position.
        let ops = generate_ops(&old, 500);
        assert_eq!(ops.len(), old.requests);
        assert!(ops.iter().all(|op| matches!(op, MixOp::Read(_))));
    }

    #[test]
    fn hot_sources_folds_without_changing_the_draw_sequence() {
        let uniform = MixSpec {
            requests: 200,
            ..MixSpec::default()
        };
        let hot = MixSpec {
            hot_sources: Some(8),
            ..uniform.clone()
        };
        let a = generate_requests(&uniform, 1000);
        let b = generate_requests(&hot, 1000);
        assert_eq!(a.len(), b.len());
        for (qa, qb) in a.iter().zip(&b) {
            // Same class and workload at every position — only the source
            // vertex is folded into the hot pool.
            assert_eq!(qa.class(), qb.class());
            let source = |q: &Query| match q {
                Query::Degree { vertex } => *vertex,
                Query::KHop { source, .. } => *source,
                Query::Run { source, .. } => *source,
            };
            assert!(source(qb) < 8, "folded into the pool");
            assert_eq!(source(qa) % 8, source(qb));
        }
        // khop_hops is threaded into generated k-hop queries.
        let deep = generate_requests(
            &MixSpec {
                khop_hops: 4,
                ..uniform.clone()
            },
            1000,
        );
        assert!(deep
            .iter()
            .all(|q| !matches!(q, Query::KHop { hops, .. } if *hops != 4)));
    }

    #[test]
    fn slo_evaluation_checks_targets_and_reports_misses() {
        let reg = Registry::new();
        let engine = Engine::with_registry(
            EngineConfig {
                pool_threads: 2,
                ..EngineConfig::default()
            },
            csr(300),
            &reg,
        );
        let spec = MixSpec {
            requests: 40,
            ..MixSpec::default()
        };
        let report = run_mix(&engine, &spec);

        // Generous targets: everything passes.
        let loose = crate::slo::SloSpec {
            point: Some(crate::slo::ClassSlo {
                p99_us: u64::MAX,
                p999_us: u64::MAX,
            }),
            traversal: None,
            analytics: None,
            write: None,
        };
        let verdict = evaluate_slo(&report, &loose);
        assert_eq!(verdict.checked, 2);
        assert!(verdict.ok(), "{}", verdict.render());

        // 1us targets: any class that completed work must miss.
        let tight = crate::slo::SloSpec {
            point: Some(crate::slo::ClassSlo {
                p99_us: 1,
                p999_us: 1,
            }),
            traversal: None,
            analytics: None,
            write: None,
        };
        let verdict = evaluate_slo(&report, &tight);
        assert_eq!(verdict.checked, 2);
        assert!(!verdict.ok());
        assert_eq!(verdict.violations.len(), 2);
        assert_eq!(verdict.violations[0].quantile, "p99");
        assert!(verdict.render().contains("MISS point p999"));

        // Manifest section: counters, target gauges, one note per miss.
        let mut manifest = RunManifest::new("test");
        verdict.write_to_manifest(&tight, &mut manifest);
        assert_eq!(
            manifest.metrics["slo.checked"],
            graphbig_telemetry::metrics::MetricValue::Counter(2)
        );
        assert_eq!(
            manifest.metrics["slo.violations"],
            graphbig_telemetry::metrics::MetricValue::Counter(2)
        );
        assert_eq!(
            manifest.metrics["slo.target.p99_us.point"],
            graphbig_telemetry::metrics::MetricValue::Gauge(1.0)
        );
        assert!(!manifest.metrics.contains_key("slo.target.p99_us.traversal"));
        assert_eq!(manifest.notes.len(), 2);
        assert!(manifest.notes[0].contains("slo violated: point p99"));

        // A zero target is "no target": nothing checked, nothing missed.
        let empty = evaluate_slo(&report, &crate::slo::SloSpec::default());
        assert_eq!(empty.checked, 0);
        assert!(empty.ok());
    }

    #[test]
    fn request_generation_is_seeded_and_weighted() {
        let spec = MixSpec {
            requests: 400,
            ..MixSpec::default()
        };
        let a = generate_requests(&spec, 1000);
        let b = generate_requests(&spec, 1000);
        assert_eq!(a, b, "same seed, same stream");
        let other = generate_requests(
            &MixSpec {
                seed: 43,
                ..spec.clone()
            },
            1000,
        );
        assert_ne!(a, other, "different seed, different stream");
        let classes: Vec<usize> = CostClass::ALL
            .iter()
            .map(|c| a.iter().filter(|q| q.class() == *c).count())
            .collect();
        // 60/25/15/0 weights over 400 requests: every read class is
        // represented, no writes are drawn, and point queries dominate.
        assert!(classes[..3].iter().all(|&c| c > 0), "{classes:?}");
        assert_eq!(classes[3], 0, "write_weight 0 draws no writes");
        assert!(
            classes[0] > classes[1] && classes[0] > classes[2],
            "{classes:?}"
        );
    }

    #[test]
    fn closed_loop_mix_matches_sequential_oracle() {
        let reg = Registry::new();
        let engine = Engine::with_registry(
            EngineConfig {
                pool_threads: 2,
                ..EngineConfig::default()
            },
            csr(400),
            &reg,
        );
        let spec = MixSpec {
            requests: 60,
            clients: 3,
            ..MixSpec::default()
        };
        let report = run_mix(&engine, &spec);
        assert_eq!(report.total_requests, 60);
        assert_eq!(
            report.admitted, 60,
            "closed-loop at 3 clients cannot overflow a 64-deep queue"
        );
        let snapshot = engine.store().snapshot();
        let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
        let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
        let checked = verify_against_oracle(&report, &oracle).expect("no mismatches");
        assert_eq!(checked, report.completed_digests.len() as u64);
        assert_eq!(checked, 60, "no deadline set: everything completes");
    }

    #[test]
    fn percentiles_are_interpolated_and_pinned() {
        // 10-sample vector: small enough that nearest-rank used to collapse
        // p99 and p999 onto max ambiguously; interpolation pins them.
        let ten: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&ten, 0.50), 6); // 5.5 rounds half-up
        assert_eq!(percentile(&ten, 0.99), 10); // 9.91 -> 10
        assert_eq!(percentile(&ten, 0.999), 10);
        // 100-sample vector.
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 0.50), 51);
        assert_eq!(percentile(&hundred, 0.99), 99); // 99.01 -> 99
        assert_eq!(percentile(&hundred, 0.999), 100); // 99.901 -> 100
                                                      // 1000-sample vector: p99 and p999 are now distinct interior
                                                      // points, not snapped bucket ends.
        let thousand: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&thousand, 0.50), 501);
        assert_eq!(percentile(&thousand, 0.99), 990);
        assert_eq!(percentile(&thousand, 0.999), 999);
        assert_eq!(percentile(&thousand, 1.0), 1000);
        // Degenerate inputs stay in range.
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.999), 7);
        assert_eq!(percentile(&[3, 9], 0.999), 9);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let sample: Vec<u64> = (0..137).map(|i| i * i % 1000).collect();
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        let mut last = 0;
        for i in 0..=1000 {
            let v = percentile(&sorted, i as f64 / 1000.0);
            assert!(v >= last, "quantile dipped at q={}", i as f64 / 1000.0);
            last = v;
        }
        assert!(percentile(&sorted, 0.999) >= percentile(&sorted, 0.99));
    }

    #[test]
    fn report_counts_balance() {
        let reg = Registry::new();
        let engine = Engine::with_registry(
            EngineConfig {
                pool_threads: 2,
                queue_capacity: 2,
                cost_budget: 5_000,
                ..EngineConfig::default()
            },
            csr(600),
            &reg,
        );
        let spec = MixSpec {
            requests: 80,
            clients: 4,
            deadline_ms: Some(2_000),
            ..MixSpec::default()
        };
        let report = run_mix(&engine, &spec);
        let outcomes: u64 = report
            .classes
            .iter()
            .map(|c| c.completed + c.deadline_missed + c.cancelled + c.failed)
            .sum::<u64>()
            + report.unsupported;
        assert_eq!(outcomes, report.admitted);
        assert_eq!(
            report.admitted + report.rejected_queue_full + report.rejected_cost_budget,
            report.total_requests as u64
        );
        // Whatever did complete must match the oracle even under shedding.
        let snapshot = engine.store().snapshot();
        let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
        let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
        verify_against_oracle(&report, &oracle).expect("no mismatches");
    }

    #[test]
    fn resolved_writes_are_deterministic_and_order_independent() {
        let g = crate::shard::ShardedGraph::build(csr(200), 4);
        let spec = MixSpec {
            requests: 300,
            write_weight: 50,
            point_weight: 30,
            traversal_weight: 15,
            analytics_weight: 5,
            ..MixSpec::default()
        };
        let ops = generate_ops(&spec, 200);
        let writes: Vec<WriteOp> = ops
            .iter()
            .filter_map(|op| match op {
                MixOp::Write(w) => Some(*w),
                MixOp::Read(_) => None,
            })
            .collect();
        assert!(writes.len() > 50, "write band drew {} ops", writes.len());
        assert!(
            writes.iter().any(|w| matches!(w, WriteOp::Delete { .. }))
                && writes.iter().any(|w| matches!(w, WriteOp::Insert { .. })),
            "both delete and insert ops are drawn"
        );
        for w in &writes {
            assert_eq!(resolve_write(&g, *w), resolve_write(&g, *w));
        }
        // Forward and reverse application orders converge on one digest —
        // the property the concurrent driver leans on.
        let forward = crate::delta::MutationBuffer::new(1, g.num_vertices() as u32);
        let reverse = crate::delta::MutationBuffer::new(1, g.num_vertices() as u32);
        for w in &writes {
            forward.apply(&g, &resolve_write(&g, *w));
        }
        for w in writes.iter().rev() {
            reverse.apply(&g, &resolve_write(&g, *w));
        }
        let fwd = forward.current().live_digest(&g);
        assert_eq!(fwd, reverse.current().live_digest(&g));
        assert_eq!(fwd, mutation_oracle_digest(&g, &ops));
        assert_ne!(
            fwd,
            crate::delta::structural_digest(&g),
            "the write stream actually changed the graph"
        );
    }

    #[test]
    fn mixed_mix_converges_on_the_mutation_oracle() {
        let reg = Registry::new();
        let engine = Engine::with_registry(
            EngineConfig {
                pool_threads: 2,
                ..EngineConfig::default()
            },
            csr(300),
            &reg,
        );
        let base = engine.store().snapshot();
        let spec = MixSpec {
            requests: 120,
            clients: 4,
            write_weight: 30,
            ..MixSpec::default()
        };
        let ops = generate_ops(&spec, base.graph().num_vertices() as u32);
        let expected = mutation_oracle_digest(base.graph(), &ops);
        let report = run_mix(&engine, &spec);
        // Every op resolves: reads and writes both count toward admission.
        assert_eq!(report.admitted, 120);
        let writes = report.class(CostClass::Write);
        assert!(writes.completed > 0, "the mix applied writes");
        assert!(writes.p50_us > 0, "write latencies are recorded");
        // Mid-overlay state matches the sequential oracle...
        assert_eq!(live_engine_digest(&engine), expected);
        // ...and so does the post-compaction epoch.
        engine.compact();
        assert_eq!(live_engine_digest(&engine), expected);
        assert_eq!(
            crate::delta::structural_digest(engine.store().snapshot().graph()),
            expected
        );
    }
}
