//! The concurrent query engine: priority lanes, executors, deadlines.
//!
//! Submission is synchronous admission control ([`Engine::submit`] returns
//! `Err(RejectReason)` immediately when over budget); admitted queries park
//! in one of four priority lanes (point < traversal < analytics < write,
//! served cheapest-first so point lookups never wait behind an analytics
//! run) and a small crew of executor threads drains them. Heavy kernels
//! run on one shared [`ThreadPool`] — the pool's per-worker channels
//! serialize concurrent broadcasts from different executors, so analytics
//! queries interleave at parallel-region granularity instead of fighting
//! over threads. Every query gets a [`CancelToken`] (optionally carrying a
//! deadline); kernels poll it at superstep boundaries, so a deadline miss
//! cancels the query instead of completing it late.
//!
//! The live write path rides alongside: [`Engine::mutate`] folds a batch
//! into the [`MutationBuffer`]'s copy-on-write overlay (billed through
//! admission under the `write` cost class, synchronously — mutations never
//! queue behind reads), point queries and kernels read *base + overlay*,
//! and a background compactor ([`Engine::compact`]) materializes the
//! overlay into a fresh CSR published as a new epoch while in-flight
//! queries keep their pinned snapshot.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use graphbig_chaos::{self as chaos, FaultAction};
use graphbig_framework::csr::Csr;
use graphbig_runtime::{CancelToken, ThreadPool};
use graphbig_telemetry::metrics::{Counter, Histogram, Registry};
use graphbig_telemetry::recorder::{self, EventKind};
use graphbig_workloads::service::{self, ServiceError, ServiceOutput};
use graphbig_workloads::{msbfs, parallel, CostClass, Workload};

use crate::admission::{AdmissionController, RejectReason};
use crate::batch::{self, BatchKind};
use crate::cache::ResultCache;
use crate::delta::{DeltaOverlay, IncrementalCComp, Mutation, MutationBuffer, MutationReceipt};
use crate::shard::ShardedGraph;
use crate::slo::{self, SloTracker, StatsSnapshot};
use crate::store::{EpochSnapshot, GraphStore};

/// Engine sizing knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Executor threads draining the lanes (each runs point queries inline
    /// and drives pool-parallel kernels for the heavy classes).
    pub executors: usize,
    /// Workers in the shared kernel thread pool.
    pub pool_threads: usize,
    /// Bounded submission-queue capacity (across all lanes).
    pub queue_capacity: usize,
    /// In-flight cost budget (units of [`Workload::cost_estimate`]).
    pub cost_budget: u64,
    /// Deadline applied by [`Engine::submit`] when the caller sets none.
    pub default_deadline: Option<Duration>,
    /// Shard count for the graph store's partitions.
    pub shards: usize,
    /// Scale static cost estimates by the feedback model's observed
    /// correction factor at admission (see [`SloTracker::correction`]).
    pub adaptive_costs: bool,
    /// Total entries in the epoch-keyed result cache (0 disables caching).
    pub cache_capacity: usize,
    /// Dequeues a non-empty lower-priority lane tolerates being passed
    /// over before it is served ahead of higher-priority lanes (0 =
    /// strict priority, lower lanes can starve under a point-query storm).
    pub lane_aging_limit: u64,
    /// Overlay edge-insert count at which the background compactor folds
    /// the delta overlay into a freshly published epoch. 0 disables the
    /// compactor thread (compaction happens only via [`Engine::compact`]).
    pub compact_threshold: usize,
    /// Maximum queued requests an executor coalesces into one shared batch
    /// (BFS batches are additionally capped at the MS-BFS lane width, 64).
    /// 0 or 1 disables coalescing entirely.
    pub batch_max: usize,
    /// Microseconds an executor holds a freshly-dequeued batchable request
    /// open for late joiners before running the batch. 0 (the default)
    /// coalesces only what is already queued and never adds latency.
    pub batch_window_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            executors: 2,
            pool_threads: 4,
            queue_capacity: 64,
            cost_budget: u64::MAX,
            default_deadline: None,
            shards: 8,
            adaptive_costs: true,
            cache_capacity: 1024,
            lane_aging_limit: 32,
            compact_threshold: 4096,
            batch_max: 64,
            batch_window_us: 0,
        }
    }
}

/// One query against the current epoch. `Hash` covers the shape and every
/// parameter, so `(epoch, delta-seq, Query)` is a sound result-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// Point lookup: (out-degree, in-degree) of a vertex.
    Degree {
        /// Dense vertex id.
        vertex: u32,
    },
    /// Point lookup: distinct vertices within `hops` steps of `source`.
    KHop {
        /// Dense root vertex id.
        source: u32,
        /// Maximum traversal depth.
        hops: u32,
    },
    /// A registry workload through [`service::run_service`].
    Run {
        /// The workload to execute.
        workload: Workload,
        /// Root vertex for traversal-rooted kernels (ignored by others).
        source: u32,
    },
}

impl Query {
    /// The priority lane / latency class this query bills to.
    pub fn class(&self) -> CostClass {
        match self {
            Query::Degree { .. } | Query::KHop { .. } => CostClass::Point,
            Query::Run { workload, .. } => workload.cost_class(),
        }
    }

    /// Abstract admission cost on a graph with `n` vertices and `m` edges.
    pub fn cost(&self, n: u64, m: u64) -> u64 {
        match self {
            Query::Degree { .. } => 1,
            Query::KHop { hops, .. } => {
                // Expected neighborhood size: avg-degree^hops, capped at
                // one full traversal.
                let avg = (m / n.max(1)).max(1);
                avg.saturating_pow((*hops).min(8))
                    .min(n.saturating_add(m))
                    .max(1)
            }
            Query::Run { workload, .. } => workload.cost_estimate(n, m),
        }
    }
}

/// Successful payload of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Out/in degree of the requested vertex (zeros when out of range).
    Degree {
        /// Out-degree.
        out: u32,
        /// In-degree.
        inc: u32,
    },
    /// Distinct vertices within the requested hop bound.
    KHop(u64),
    /// A workload kernel's typed output.
    Workload(ServiceOutput),
}

impl QueryOutput {
    /// Comparable 64-bit fingerprint (see [`ServiceOutput::digest`]).
    pub fn digest(&self) -> u64 {
        match self {
            QueryOutput::Degree { out, inc } => {
                0x9e37_79b9_7f4a_7c15u64 ^ ((*out as u64) << 32 | *inc as u64)
            }
            QueryOutput::KHop(c) => 0x2545_f491_4f6c_dd1du64 ^ c,
            QueryOutput::Workload(o) => o.digest(),
        }
    }
}

/// Terminal state of an admitted query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryStatus {
    /// Ran to completion.
    Completed(QueryOutput),
    /// The deadline passed before or during execution; partial work was
    /// abandoned, never returned.
    DeadlineExceeded,
    /// Explicitly cancelled (or shed during engine shutdown).
    Cancelled,
    /// The workload has no serving entry point.
    Unsupported(Workload),
    /// The kernel panicked; the panic was caught at the executor boundary,
    /// only this query failed, and the engine keeps serving. Carries the
    /// panic message.
    Failed(String),
}

/// What the engine hands back for one admitted query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Process-unique request id minted at admission (flight-recorder
    /// lifecycle events for this query carry the same id).
    pub request_id: u64,
    /// Epoch the query ran (or would have run) against.
    pub epoch: u64,
    /// Latency class it billed to.
    pub class: CostClass,
    /// Terminal status.
    pub status: QueryStatus,
    /// Microseconds spent queued before an executor picked it up.
    pub queue_us: u64,
    /// Microseconds spent executing (0 if never started).
    pub exec_us: u64,
}

/// Handle to one admitted query.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<QueryResponse>,
    token: CancelToken,
    request_id: u64,
}

impl Ticket {
    /// The request id minted at admission (matches
    /// [`QueryResponse::request_id`] and the flight-recorder events).
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Request cancellation; the query's kernel observes it at its next
    /// superstep boundary.
    pub fn cancel(&self) {
        recorder::record(EventKind::CancelRequest, self.request_id, 0);
        self.token.cancel();
    }

    /// Block until the engine responds. Every admitted query receives
    /// exactly one response, even across engine shutdown.
    pub fn wait(self) -> QueryResponse {
        self.rx.recv().expect("engine always responds to a ticket")
    }
}

/// Compact status code for flight-recorder `run`/`resolve` event args.
fn status_code(status: &QueryStatus) -> u64 {
    match status {
        QueryStatus::Completed(_) => 0,
        QueryStatus::DeadlineExceeded => 1,
        QueryStatus::Cancelled => 2,
        QueryStatus::Unsupported(_) => 3,
        QueryStatus::Failed(_) => 4,
    }
}

/// One-shot response channel. Exactly one of the paths that can terminate a
/// query (executor completion, shutdown shedding, drain-on-drop) wins the
/// CAS and sends; any loser is counted in `engine.double_resolve` instead
/// of delivering a second response. This is what makes "every ticket
/// resolved exactly once" a checkable invariant rather than a convention.
struct Resolver {
    tx: Sender<QueryResponse>,
    done: AtomicBool,
}

impl Resolver {
    fn new(tx: Sender<QueryResponse>) -> Self {
        Resolver {
            tx,
            done: AtomicBool::new(false),
        }
    }

    fn resolve(&self, metrics: &EngineMetrics, response: QueryResponse) {
        if self.done.swap(true, Ordering::AcqRel) {
            metrics.double_resolve.inc();
            recorder::record(EventKind::DoubleResolve, response.request_id, 0);
            return;
        }
        metrics.resolved.inc();
        recorder::record_lane(
            EventKind::Resolve,
            lane(response.class) as u8,
            response.request_id,
            status_code(&response.status),
        );
        // A dropped ticket just means nobody is waiting; not an error.
        let _ = self.tx.send(response);
    }
}

struct Job {
    query: Query,
    class: CostClass,
    /// Budget cost actually charged (the feedback-adjusted estimate).
    cost: u64,
    /// Unscaled `Query::cost` estimate — the denominator the feedback
    /// model calibrates against.
    static_cost: u64,
    snapshot: Arc<EpochSnapshot>,
    token: CancelToken,
    enqueued: Instant,
    /// Chaos request key (also the token's chaos key); auto-assigned for
    /// untagged submissions.
    tag: u64,
    /// Flight-recorder request id minted at admission.
    request_id: u64,
    resolver: Resolver,
}

/// Pick the lane to serve next. Strict priority (lowest index first)
/// except that any occupied lane whose skip counter has reached `limit`
/// is served ahead of everything else (lowest such index on ties) — the
/// aging rule that keeps an analytics queue moving under a point-query
/// storm. `limit == 0` disables aging. Pure so the policy is unit-testable
/// without an engine.
fn select_lane(occupied: [bool; 4], skips: [u64; 4], limit: u64) -> Option<usize> {
    if limit > 0 {
        if let Some(aged) = (0..4).find(|&l| occupied[l] && skips[l] >= limit) {
            return Some(aged);
        }
    }
    (0..4).find(|&l| occupied[l])
}

struct Lanes {
    queues: [VecDeque<Job>; 4],
    /// Consecutive times each lane was occupied yet passed over. Serving a
    /// lane resets its counter; lanes below the served one age by one.
    skips: [u64; 4],
    /// High-water mark of any skip counter — the starvation invariant
    /// bounds this by `aging_limit + 1`.
    max_skip: u64,
    aging_limit: u64,
    shutdown: bool,
}

impl Lanes {
    /// Pop the next job under the aging policy. The flag reports whether
    /// the job was served out of strict priority order (an "aged" serve).
    fn pop(&mut self) -> Option<(Job, bool)> {
        let occupied = [
            !self.queues[0].is_empty(),
            !self.queues[1].is_empty(),
            !self.queues[2].is_empty(),
            !self.queues[3].is_empty(),
        ];
        let served = select_lane(occupied, self.skips, self.aging_limit)?;
        let aged = occupied.iter().take(served).any(|&o| o);
        for (l, &occ) in occupied.iter().enumerate().skip(served + 1) {
            if occ {
                self.skips[l] += 1;
                self.max_skip = self.max_skip.max(self.skips[l]);
            }
        }
        self.skips[served] = 0;
        Some((self.queues[served].pop_front().unwrap(), aged))
    }
}

struct Shared {
    lanes: Mutex<Lanes>,
    available: Condvar,
    admission: AdmissionController,
    cache: ResultCache,
    /// The live write path's copy-on-write delta overlay buffer.
    buffer: MutationBuffer,
    /// Serializes the writers — mutate, compact, publish, republish — so
    /// `buffer.current().epoch() == store.epoch()` holds outside writer
    /// critical sections. Lock order: `write_lock` before the store's
    /// internal lock; the buffer's own mutex is a leaf.
    write_lock: Mutex<()>,
    /// Memoized materialization of one `(epoch, delta-seq)` overlay: a
    /// burst of workload queries (or the compactor) against the same
    /// overlay version pays the base+overlay fold exactly once.
    materialized: Mutex<Option<(u64, u64, Arc<ShardedGraph>)>>,
    /// Incremental connected-components state, seeded once per epoch.
    inc_ccomp: Mutex<Option<(u64, IncrementalCComp)>>,
    /// Background-compactor doorbell: `(work_pending, shutdown)`.
    compact_doorbell: (Mutex<(bool, bool)>, Condvar),
    shards: usize,
    /// Batch coalescing cap (see [`EngineConfig::batch_max`]).
    batch_max: usize,
    /// Batch formation window (see [`EngineConfig::batch_window_us`]).
    batch_window_us: u64,
}

fn lock(m: &Mutex<Lanes>) -> MutexGuard<'_, Lanes> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Poison-tolerant lock for the write-path mutexes (a panicking kernel
/// must not wedge every later mutation or compaction).
fn lockp<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-class and engine-wide metric handles, created eagerly in
/// [`Engine::with_registry`] so every run manifest carries the same metric
/// key set regardless of which events actually occurred (the golden
/// structural check depends on this).
#[derive(Clone)]
struct EngineMetrics {
    submitted: Counter,
    rejected_queue: Counter,
    rejected_cost: Counter,
    deadline_missed: Counter,
    cancelled: Counter,
    unsupported: Counter,
    failed: Counter,
    resolved: Counter,
    double_resolve: Counter,
    completed: [Counter; 4],
    latency_us: [Histogram; 4],
    queue_us: Histogram,
    /// Per-stage latency decomposition: queue-wait and execution per class,
    /// plus engine-wide admission and resolve cost. These feed the
    /// "Per-stage latency breakdown" manifest table.
    stage_queue_us: [Histogram; 4],
    stage_exec_us: [Histogram; 4],
    stage_admit_us: Histogram,
    stage_resolve_us: Histogram,
    cache_hit: Counter,
    cache_miss: Counter,
    cache_evict: Counter,
    /// Dequeues that served an aged lane ahead of a higher-priority one.
    lane_aged: Counter,
    /// Mutation batches applied (each bumps the overlay delta-seq once).
    mutations: Counter,
    /// Compactions entered / finished — the chaos invariant sweep requires
    /// these to balance after every mix.
    compact_started: Counter,
    compact_completed: Counter,
    /// Time the write path was blocked while a compaction folded the
    /// overlay under the write lock (the "compaction pause").
    compact_pause_us: Histogram,
    /// Requests sharing each coalesced batch (recorded once per formed
    /// batch of size >= 2; a distribution hugging 1 means coalescing never
    /// engages).
    batch_size: Histogram,
    /// Microseconds an executor spent draining and (optionally) waiting
    /// for batch mates between dequeue and kernel start.
    batch_coalesce_us: Histogram,
}

impl EngineMetrics {
    fn new(reg: &Registry) -> Self {
        let class_counter = |c: CostClass| reg.counter(&format!("engine.completed.{}", c.name()));
        let class_hist = |c: CostClass| reg.histogram(&format!("engine.latency_us.{}", c.name()));
        let stage_hist = |stage: &str, c: CostClass| {
            reg.histogram(&format!("engine.stage_us.{stage}.{}", c.name()))
        };
        EngineMetrics {
            submitted: reg.counter("engine.submitted"),
            rejected_queue: reg.counter("engine.rejected.queue_full"),
            rejected_cost: reg.counter("engine.rejected.cost_budget"),
            deadline_missed: reg.counter("engine.deadline_missed"),
            cancelled: reg.counter("engine.cancelled"),
            unsupported: reg.counter("engine.unsupported"),
            failed: reg.counter("engine.failed"),
            resolved: reg.counter("engine.resolved"),
            double_resolve: reg.counter("engine.double_resolve"),
            completed: [
                class_counter(CostClass::Point),
                class_counter(CostClass::Traversal),
                class_counter(CostClass::Analytics),
                class_counter(CostClass::Write),
            ],
            latency_us: [
                class_hist(CostClass::Point),
                class_hist(CostClass::Traversal),
                class_hist(CostClass::Analytics),
                class_hist(CostClass::Write),
            ],
            queue_us: reg.histogram("engine.queue_us"),
            stage_queue_us: [
                stage_hist("queue", CostClass::Point),
                stage_hist("queue", CostClass::Traversal),
                stage_hist("queue", CostClass::Analytics),
                stage_hist("queue", CostClass::Write),
            ],
            stage_exec_us: [
                stage_hist("exec", CostClass::Point),
                stage_hist("exec", CostClass::Traversal),
                stage_hist("exec", CostClass::Analytics),
                stage_hist("exec", CostClass::Write),
            ],
            stage_admit_us: reg.histogram("engine.stage_us.admit"),
            stage_resolve_us: reg.histogram("engine.stage_us.resolve"),
            cache_hit: reg.counter("engine.cache.hit"),
            cache_miss: reg.counter("engine.cache.miss"),
            cache_evict: reg.counter("engine.cache.evict"),
            lane_aged: reg.counter("engine.lane.aged"),
            mutations: reg.counter("engine.mutations"),
            compact_started: reg.counter("engine.compact.started"),
            compact_completed: reg.counter("engine.compact.completed"),
            compact_pause_us: reg.histogram("engine.compact.pause_us"),
            batch_size: reg.histogram("engine.batch.size"),
            batch_coalesce_us: reg.histogram("engine.batch.coalesce_us"),
        }
    }
}

fn lane(class: CostClass) -> usize {
    match class {
        CostClass::Point => 0,
        CostClass::Traversal => 1,
        CostClass::Analytics => 2,
        CostClass::Write => 3,
    }
}

/// Index of the write lane (mutations bill here without queueing).
const WRITE_LANE: usize = 3;

/// The serving engine: graph store + admission + executors + write path.
pub struct Engine {
    store: Arc<GraphStore>,
    pool: Arc<ThreadPool>,
    shared: Arc<Shared>,
    metrics: EngineMetrics,
    slo: SloTracker,
    default_deadline: Option<Duration>,
    shards: usize,
    adaptive_costs: bool,
    lane_aging_limit: u64,
    compact_threshold: usize,
    auto_tag: AtomicU64,
    executors: Vec<std::thread::JoinHandle<()>>,
    compactor: Option<std::thread::JoinHandle<()>>,
}

/// Auto-assigned chaos tags live above any tag the traffic driver hands
/// out (`attempt << 32 | request_idx`), so direct `submit` calls never
/// collide with a driven request's fault decisions.
const AUTO_TAG_BASE: u64 = 1 << 48;

impl Engine {
    /// An engine serving `csr` with metrics in the process-wide registry.
    pub fn new(cfg: EngineConfig, csr: Csr) -> Self {
        Self::with_registry(cfg, csr, graphbig_telemetry::metrics::global())
    }

    /// An engine with metrics in a caller-owned registry (tests, benches).
    pub fn with_registry(cfg: EngineConfig, csr: Csr, reg: &Registry) -> Self {
        let graph = ShardedGraph::build(csr, cfg.shards);
        let base_n = graph.num_vertices() as u32;
        let store = Arc::new(GraphStore::new(graph));
        let pool = Arc::new(ThreadPool::new(cfg.pool_threads));
        let metrics = EngineMetrics::new(reg);
        let shared = Arc::new(Shared {
            lanes: Mutex::new(Lanes {
                queues: [
                    VecDeque::new(),
                    VecDeque::new(),
                    VecDeque::new(),
                    VecDeque::new(),
                ],
                skips: [0; 4],
                max_skip: 0,
                aging_limit: cfg.lane_aging_limit,
                shutdown: false,
            }),
            available: Condvar::new(),
            admission: AdmissionController::new(cfg.queue_capacity, cfg.cost_budget),
            cache: ResultCache::new(
                cfg.cache_capacity,
                metrics.cache_hit.clone(),
                metrics.cache_miss.clone(),
                metrics.cache_evict.clone(),
            ),
            buffer: MutationBuffer::new(1, base_n),
            write_lock: Mutex::new(()),
            materialized: Mutex::new(None),
            inc_ccomp: Mutex::new(None),
            compact_doorbell: (Mutex::new((false, false)), Condvar::new()),
            shards: cfg.shards,
            batch_max: cfg.batch_max,
            batch_window_us: cfg.batch_window_us,
        });
        let slo = SloTracker::new();
        let executors = (0..cfg.executors.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let pool = Arc::clone(&pool);
                let metrics = metrics.clone();
                let slo = slo.clone();
                std::thread::Builder::new()
                    .name(format!("graphbig-executor-{i}"))
                    .spawn(move || executor_loop(&shared, &pool, &metrics, &slo))
                    .expect("spawn executor thread")
            })
            .collect();
        let compactor = (cfg.compact_threshold > 0).then(|| {
            let store = Arc::clone(&store);
            let shared = Arc::clone(&shared);
            let metrics = metrics.clone();
            let threshold = cfg.compact_threshold;
            std::thread::Builder::new()
                .name("graphbig-compactor".to_string())
                .spawn(move || compactor_loop(&store, &shared, &metrics, threshold))
                .expect("spawn compactor thread")
        });
        Engine {
            store,
            pool,
            shared,
            metrics,
            slo,
            default_deadline: cfg.default_deadline,
            shards: cfg.shards,
            adaptive_costs: cfg.adaptive_costs,
            lane_aging_limit: cfg.lane_aging_limit,
            compact_threshold: cfg.compact_threshold,
            auto_tag: AtomicU64::new(0),
            executors,
            compactor,
        }
    }

    /// Submit with the configured default deadline (if any).
    pub fn submit(&self, query: Query) -> Result<Ticket, RejectReason> {
        self.submit_with_deadline(query, self.default_deadline)
    }

    /// Submit with an explicit per-query deadline (`None` = no deadline).
    /// Returns synchronously with a rejection when admission fails.
    pub fn submit_with_deadline(
        &self,
        query: Query,
        deadline: Option<Duration>,
    ) -> Result<Ticket, RejectReason> {
        let tag = AUTO_TAG_BASE | self.auto_tag.fetch_add(1, Ordering::Relaxed);
        self.submit_tagged(query, deadline, tag)
    }

    /// Submit with an explicit deadline and chaos request key. The traffic
    /// driver tags every request `attempt << 32 | request_idx`, making every
    /// failpoint decision for it a pure function of the fault-plan seed.
    pub fn submit_tagged(
        &self,
        query: Query,
        deadline: Option<Duration>,
        tag: u64,
    ) -> Result<Ticket, RejectReason> {
        let admit_start = Instant::now();
        let request_id = recorder::next_request_id();
        let snapshot = self.store.snapshot();
        let (n, m) = (
            snapshot.graph().num_vertices() as u64,
            snapshot.graph().num_edges() as u64,
        );
        let class = query.class();
        let lane_idx = lane(class) as u8;
        let static_cost = query.cost(n, m);
        // Feedback cost model: charge the budget what this key has been
        // *observed* to cost relative to the global calibration, not what
        // the static formula guesses. Bounded by the correction clamp, so
        // an adjusted cost is always within [1/4, 4]x the static one.
        let cost = if self.adaptive_costs {
            self.slo.adaptive_cost(slo::query_key(&query), static_cost)
        } else {
            static_cost
        };
        // Lifecycle: `admit` opens the request's story; the arg carries the
        // chaos tag so fault_fired events (keyed by tag) correlate back.
        recorder::record_lane(EventKind::Admit, lane_idx, request_id, tag);
        if cost != static_cost {
            recorder::record_lane(EventKind::CostAdjust, lane_idx, request_id, cost);
        }
        if let Err(reason) = self.shared.admission.try_admit(cost) {
            match reason {
                RejectReason::QueueFull { .. } => {
                    self.metrics.rejected_queue.inc();
                    recorder::record_lane(EventKind::Reject, lane_idx, request_id, 0);
                }
                RejectReason::CostBudget { .. } => {
                    self.metrics.rejected_cost.inc();
                    recorder::record_lane(EventKind::Reject, lane_idx, request_id, 1);
                }
            }
            return Err(reason);
        }
        // Failpoint `engine.admit`: force a spurious rejection *after* a
        // successful admission (rolling the reservation back so the
        // controller's books look exactly like a real rejection), or delay.
        if let Some(fault) = chaos::failpoint!("engine.admit", tag) {
            match fault.action {
                FaultAction::RejectQueueFull => {
                    self.shared.admission.cancel_admit(cost);
                    self.metrics.rejected_queue.inc();
                    recorder::record_lane(EventKind::Reject, lane_idx, request_id, 0);
                    return Err(RejectReason::QueueFull {
                        depth: self.shared.admission.queued(),
                        limit: self.shared.admission.max_queue(),
                    });
                }
                FaultAction::RejectCostBudget => {
                    self.shared.admission.cancel_admit(cost);
                    self.metrics.rejected_cost.inc();
                    recorder::record_lane(EventKind::Reject, lane_idx, request_id, 1);
                    return Err(RejectReason::CostBudget {
                        in_flight: self.shared.admission.in_flight_cost(),
                        requested: cost,
                        limit: self.shared.admission.max_cost(),
                    });
                }
                _ => {}
            }
        }
        self.metrics.submitted.inc();
        let token = match deadline {
            Some(d) => CancelToken::with_timeout(d),
            None => CancelToken::new(),
        }
        .with_chaos_key(tag)
        .with_trace_id(request_id);
        let (tx, rx) = channel();
        let job = Job {
            query,
            class,
            cost,
            static_cost,
            snapshot,
            token: token.clone(),
            enqueued: Instant::now(),
            tag,
            request_id,
            resolver: Resolver::new(tx),
        };
        // `enqueue` is recorded before the push so an executor's `dequeue`
        // can never precede it in the event stream.
        recorder::record_lane(EventKind::Enqueue, lane_idx, request_id, cost);
        lock(&self.shared.lanes).queues[lane(class)].push_back(job);
        self.shared.available.notify_one();
        self.metrics
            .stage_admit_us
            .record(admit_start.elapsed().as_micros() as u64);
        Ok(Ticket {
            rx,
            token,
            request_id,
        })
    }

    /// Publish a new graph as the next epoch (resharded with the engine's
    /// shard count). In-flight queries keep the epoch they were admitted
    /// under. Any buffered mutations against the *old* graph are
    /// discarded: the caller is replacing the dataset wholesale.
    pub fn publish(&self, csr: Csr) -> u64 {
        let _ = chaos::failpoint!("engine.publish");
        let graph = ShardedGraph::build(csr, self.shards);
        let base_n = graph.num_vertices() as u32;
        let _w = lockp(&self.shared.write_lock);
        let epoch = self.store.publish(graph);
        self.shared.buffer.reset(epoch, base_n);
        // Epoch keying already makes old entries unreachable; the sweep
        // reclaims their memory promptly.
        self.shared.cache.invalidate();
        epoch
    }

    /// Republish the current graph under a new epoch number without
    /// rebuilding shards — the chaos driver's cheap mid-mix epoch bump.
    /// The delta overlay follows the graph to the new epoch with its
    /// contents intact (same base, new version number).
    pub fn republish(&self) -> u64 {
        let _ = chaos::failpoint!("engine.publish");
        let _w = lockp(&self.shared.write_lock);
        let epoch = self.store.republish();
        self.shared.buffer.retarget(epoch);
        self.shared.cache.invalidate();
        epoch
    }

    /// Apply a batch of mutations to the delta overlay. Synchronous on the
    /// caller's thread: the batch is billed through admission under the
    /// `write` cost class (one unit per mutation), folded into a fresh
    /// overlay version in one atomic step, and visible to every query
    /// admitted afterwards. Returns the receipt carrying the new
    /// delta-seq.
    pub fn mutate(&self, batch: &[Mutation]) -> Result<MutationReceipt, RejectReason> {
        let tag = AUTO_TAG_BASE | self.auto_tag.fetch_add(1, Ordering::Relaxed);
        self.mutate_tagged(batch, tag)
    }

    /// [`Engine::mutate`] with an explicit chaos request key (the traffic
    /// driver tags writes exactly like reads, so failpoint decisions stay
    /// a pure function of the fault-plan seed).
    pub fn mutate_tagged(
        &self,
        batch: &[Mutation],
        tag: u64,
    ) -> Result<MutationReceipt, RejectReason> {
        let start = Instant::now();
        let request_id = recorder::next_request_id();
        let cost = (batch.len() as u64).max(1);
        recorder::record_lane(EventKind::Admit, WRITE_LANE as u8, request_id, tag);
        if let Err(reason) = self.shared.admission.try_admit(cost) {
            match reason {
                RejectReason::QueueFull { .. } => {
                    self.metrics.rejected_queue.inc();
                    recorder::record_lane(EventKind::Reject, WRITE_LANE as u8, request_id, 0);
                }
                RejectReason::CostBudget { .. } => {
                    self.metrics.rejected_cost.inc();
                    recorder::record_lane(EventKind::Reject, WRITE_LANE as u8, request_id, 1);
                }
            }
            return Err(reason);
        }
        self.metrics.submitted.inc();
        self.shared.admission.on_start();
        // Failpoint `engine.mutate`: delay inside the write path, widening
        // the compaction-vs-mutation race window under chaos.
        let _ = chaos::failpoint!("engine.mutate", tag);
        let receipt = {
            let _w = lockp(&self.shared.write_lock);
            let snap = self.store.snapshot();
            // A publish that bypassed the engine (direct store access)
            // orphans the overlay; rebase on the live epoch rather than
            // feeding a future compaction a stale base.
            if self.shared.buffer.current().epoch() != snap.epoch() {
                self.shared
                    .buffer
                    .reset(snap.epoch(), snap.graph().num_vertices() as u32);
            }
            self.shared.buffer.apply(snap.graph(), batch)
        };
        self.shared.admission.on_finish(cost);
        let us = start.elapsed().as_micros() as u64;
        recorder::record_lane(EventKind::Mutate, WRITE_LANE as u8, request_id, receipt.seq);
        self.metrics.mutations.inc();
        self.metrics.completed[WRITE_LANE].inc();
        self.metrics.latency_us[WRITE_LANE].record(us);
        self.metrics.stage_exec_us[WRITE_LANE].record(us);
        self.metrics.resolved.inc();
        self.slo.record(WRITE_LANE, "write", us);
        if self.compact_threshold > 0
            && self.shared.buffer.current().overlay_edges() >= self.compact_threshold
        {
            let (doorbell, cv) = &self.shared.compact_doorbell;
            lockp(doorbell).0 = true;
            cv.notify_one();
        }
        Ok(receipt)
    }

    /// Fold the current delta overlay into a fresh sharded CSR and publish
    /// it as a new epoch; the overlay resets onto the new epoch with its
    /// sequence counter intact. In-flight queries keep their pinned
    /// snapshots. Returns the epoch serving reads afterwards (unchanged
    /// when the overlay was already empty). Safe to call concurrently with
    /// mutations, queries, and itself.
    pub fn compact(&self) -> u64 {
        compact_inner(&self.store, &self.shared, &self.metrics)
    }

    /// The overlay's current delta sequence number. Bumps once per applied
    /// mutation batch and is never reused across compactions or
    /// publishes — `(epoch, delta_seq)` names one exact graph state.
    pub fn delta_seq(&self) -> u64 {
        self.shared.buffer.current().seq()
    }

    /// The current delta overlay (size, epoch, and digest accessors for
    /// tests, stats lines, and the serve binary's write-path report).
    pub fn overlay(&self) -> Arc<DeltaOverlay> {
        self.shared.buffer.current()
    }

    /// Executor threads still running (the chaos invariant "no executor
    /// thread lost to a panic" compares this against
    /// [`Engine::executor_count`]).
    pub fn alive_executors(&self) -> usize {
        self.executors.iter().filter(|h| !h.is_finished()).count()
    }

    /// Configured executor thread count.
    pub fn executor_count(&self) -> usize {
        self.executors.len()
    }

    /// The epoch store (snapshots, epoch numbers, byte-level publish).
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// The shared kernel pool (the sequential oracle reuses it so engine
    /// and oracle run the exact same kernel configuration).
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// The admission controller's live counters.
    pub fn admission(&self) -> &AdmissionController {
        &self.shared.admission
    }

    /// The live sliding-window SLO tracker the executors feed.
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// Entries currently in the result cache (0 when caching is disabled).
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// High-water mark of any lane's consecutive skip count. The aging
    /// starvation invariant bounds this by
    /// [`Engine::lane_aging_limit`]` + 1`.
    pub fn max_lane_skip(&self) -> u64 {
        lock(&self.shared.lanes).max_skip
    }

    /// The configured aging limit (0 = strict priority).
    pub fn lane_aging_limit(&self) -> u64 {
        self.lane_aging_limit
    }

    /// A point-in-time serving snapshot: queue depth, in-flight cost, and
    /// the per-lane window stats (the `--stats-interval` line's payload).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            t_ms: slo::now_ms(),
            queue_depth: self.shared.admission.queued() as u64,
            in_flight_cost: self.shared.admission.in_flight_cost(),
            lanes: (0..4).map(|l| self.slo.lane_stats(l)).collect(),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let (doorbell, cv) = &self.shared.compact_doorbell;
            lockp(doorbell).1 = true;
            cv.notify_all();
        }
        if let Some(h) = self.compactor.take() {
            let _ = h.join();
        }
        {
            let mut lanes = lock(&self.shared.lanes);
            lanes.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
        // Backstop: if any job is still queued after the executors exited
        // (only possible if an executor died outside its panic guard),
        // resolve it here so no ticket ever hangs. The Resolver CAS makes
        // this race-free against any response an executor already sent.
        let mut lanes = lock(&self.shared.lanes);
        for queue in lanes.queues.iter_mut() {
            while let Some(job) = queue.pop_front() {
                self.shared.admission.on_start();
                self.shared.admission.on_finish(job.cost);
                self.metrics.cancelled.inc();
                let queue_us = job.enqueued.elapsed().as_micros() as u64;
                // Backstop sheds still get a full lifecycle in the flight
                // recorder (dequeue -> run(cancelled) -> resolve), so the
                // exactly-once-per-stage invariant holds on every path.
                let lane_idx = lane(job.class) as u8;
                recorder::record_lane(EventKind::Dequeue, lane_idx, job.request_id, queue_us);
                recorder::record_lane(
                    EventKind::Run,
                    lane_idx,
                    job.request_id,
                    status_code(&QueryStatus::Cancelled),
                );
                job.resolver.resolve(
                    &self.metrics,
                    QueryResponse {
                        request_id: job.request_id,
                        epoch: job.snapshot.epoch(),
                        class: job.class,
                        status: QueryStatus::Cancelled,
                        queue_us,
                        exec_us: 0,
                    },
                );
            }
        }
    }
}

fn executor_loop(shared: &Shared, pool: &ThreadPool, metrics: &EngineMetrics, slo: &SloTracker) {
    loop {
        let (job, draining) = {
            let mut lanes = lock(&shared.lanes);
            loop {
                if let Some((j, aged)) = lanes.pop() {
                    if aged {
                        metrics.lane_aged.inc();
                    }
                    break (Some(j), lanes.shutdown);
                }
                if lanes.shutdown {
                    break (None, true);
                }
                lanes = shared
                    .available
                    .wait(lanes)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else {
            return;
        };
        // Shared-traversal batching: coalesce compatible queued requests
        // behind this one and run a single shared kernel for all of them.
        // Only on the live path — a draining engine sheds queries instead.
        if !draining && shared.batch_max > 1 {
            if let Some(kind) = batch::kind_of(&job.query) {
                let opened = Instant::now();
                let mates = form_batch(shared, &job, kind);
                if !mates.is_empty() {
                    run_batch(
                        kind,
                        job,
                        mates,
                        opened.elapsed(),
                        pool,
                        shared,
                        metrics,
                        slo,
                    );
                    continue;
                }
            }
        }
        execute_single(job, draining, pool, shared, metrics, slo);
    }
}

/// The unbatched per-job execution path (also the fallback when a
/// batchable job finds no compatible mates queued).
fn execute_single(
    job: Job,
    draining: bool,
    pool: &ThreadPool,
    shared: &Shared,
    metrics: &EngineMetrics,
    slo: &SloTracker,
) {
    shared.admission.on_start();
    let queue_us = job.enqueued.elapsed().as_micros() as u64;
    metrics.queue_us.record(queue_us);
    let lane_idx = lane(job.class);
    metrics.stage_queue_us[lane_idx].record(queue_us);
    recorder::record_lane(EventKind::Dequeue, lane_idx as u8, job.request_id, queue_us);
    // Failpoint `engine.dequeue`: force a terminal status before the
    // kernel runs (deadline expiry / cancellation), or delay pickup.
    let forced = match chaos::failpoint!("engine.dequeue", job.tag) {
        Some(fault) => match fault.action {
            FaultAction::DeadlineExpire => Some(QueryStatus::DeadlineExceeded),
            FaultAction::Cancel => Some(QueryStatus::Cancelled),
            _ => None,
        },
        None => None,
    };
    let exec_start = Instant::now();
    let status = if draining {
        // Engine shutting down: shed the query without running it.
        QueryStatus::Cancelled
    } else if let Some(forced) = forced {
        forced
    } else if job.token.is_cancelled() {
        // Fired while queued — never start doomed work.
        if job.token.deadline_passed() {
            QueryStatus::DeadlineExceeded
        } else {
            QueryStatus::Cancelled
        }
    } else {
        run_guarded(&job, pool, shared)
    };
    let exec_us = exec_start.elapsed().as_micros() as u64;
    finish_job(job, queue_us, status, exec_us, shared, metrics, slo);
}

/// Terminal bookkeeping shared by the single path and every batch member:
/// exec-stage metrics, the `Run` event, per-status counters and SLO feed,
/// admission release, the `engine.resolve` / `engine.batch.fanout`
/// failpoints, then the one-shot resolve.
fn finish_job(
    job: Job,
    queue_us: u64,
    status: QueryStatus,
    exec_us: u64,
    shared: &Shared,
    metrics: &EngineMetrics,
    slo: &SloTracker,
) {
    let lane_idx = lane(job.class);
    metrics.stage_exec_us[lane_idx].record(exec_us);
    recorder::record_lane(
        EventKind::Run,
        lane_idx as u8,
        job.request_id,
        status_code(&status),
    );
    match &status {
        QueryStatus::Completed(_) => {
            metrics.completed[lane_idx].inc();
            metrics.latency_us[lane_idx].record(queue_us + exec_us);
            let key = slo::query_key(&job.query);
            slo.record(lane_idx, key, queue_us + exec_us);
            // Feed the feedback cost model with what execution
            // actually cost relative to the static estimate. Cache
            // hits count too — a hot cached key genuinely is cheap,
            // and its correction should drift toward the floor.
            slo.observe_cost(key, job.static_cost, exec_us);
        }
        QueryStatus::DeadlineExceeded => metrics.deadline_missed.inc(),
        QueryStatus::Cancelled => metrics.cancelled.inc(),
        QueryStatus::Unsupported(_) => metrics.unsupported.inc(),
        QueryStatus::Failed(_) => metrics.failed.inc(),
    }
    shared.admission.on_finish(job.cost);
    let response = QueryResponse {
        request_id: job.request_id,
        epoch: job.snapshot.epoch(),
        class: job.class,
        status,
        queue_us,
        exec_us,
    };
    // Failpoint `engine.resolve` (and its batch twin
    // `engine.batch.fanout`): a `DoubleResolve` fault delivers the
    // response twice — the second attempt loses the one-shot CAS and
    // trips the resolved-once invariant, exercising the failure dump.
    // Both sites are always evaluated so a plan's fire counts stay
    // independent of which one matches.
    let resolve_double = matches!(
        chaos::failpoint!("engine.resolve", job.tag),
        Some(f) if f.action == FaultAction::DoubleResolve
    );
    let fanout_double = matches!(
        chaos::failpoint!("engine.batch.fanout", job.tag),
        Some(f) if f.action == FaultAction::DoubleResolve
    );
    let resolve_start = Instant::now();
    if resolve_double || fanout_double {
        job.resolver.resolve(metrics, response.clone());
    }
    job.resolver.resolve(metrics, response);
    metrics
        .stage_resolve_us
        .record(resolve_start.elapsed().as_micros() as u64);
}

/// A batch member between dequeue bookkeeping and terminal resolution.
struct Pending {
    job: Job,
    queue_us: u64,
    /// Terminal status decided at formation time (forced fault, cancelled
    /// while queued) — the member skips the shared kernel.
    forced: Option<QueryStatus>,
}

/// Drain jobs compatible with `leader` from its lane (FIFO order
/// preserved). Members must share the leader's batch kind and epoch, and
/// the batch stops growing if the live overlay's `(epoch, delta-seq)`
/// moves mid-window — one batch executes against exactly one graph state.
/// With `batch_window_us == 0` this coalesces only what is already queued
/// and never waits.
fn form_batch(shared: &Shared, leader: &Job, kind: BatchKind) -> Vec<Job> {
    let cap = match kind {
        BatchKind::Bfs => shared.batch_max.min(msbfs::MSBFS_LANES),
        BatchKind::Point => shared.batch_max,
    };
    if cap <= 1 {
        return Vec::new();
    }
    let epoch = leader.snapshot.epoch();
    let ov = shared.buffer.current();
    let state = (ov.epoch(), ov.seq());
    let lane_idx = lane(leader.class);
    let window = Duration::from_micros(shared.batch_window_us);
    let opened = Instant::now();
    let mut mates: Vec<Job> = Vec::new();
    loop {
        {
            let mut lanes = lock(&shared.lanes);
            if lanes.shutdown {
                break;
            }
            let queue = &mut lanes.queues[lane_idx];
            let mut i = 0;
            while i < queue.len() && mates.len() + 1 < cap {
                let compatible = batch::kind_of(&queue[i].query) == Some(kind)
                    && queue[i].snapshot.epoch() == epoch;
                if compatible {
                    mates.push(queue.remove(i).expect("index is in bounds"));
                } else {
                    i += 1;
                }
            }
        }
        if mates.len() + 1 >= cap || shared.batch_window_us == 0 {
            break;
        }
        let elapsed = opened.elapsed();
        if elapsed >= window {
            break;
        }
        let cur = shared.buffer.current();
        if (cur.epoch(), cur.seq()) != state {
            break; // a mutation moved the graph state: close the batch
        }
        std::thread::sleep((window - elapsed).min(Duration::from_micros(50)));
    }
    mates
}

/// Execute a coalesced batch: batch metrics and the leader's `BatchStart`
/// event, per-member dequeue bookkeeping, then the kind-specific shared
/// execution. Every member keeps its own full lifecycle (admit/enqueue/
/// dequeue/run/resolve exactly once), deadline, and cancellation.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    kind: BatchKind,
    leader: Job,
    mates: Vec<Job>,
    coalesce: Duration,
    pool: &ThreadPool,
    shared: &Shared,
    metrics: &EngineMetrics,
    slo: &SloTracker,
) {
    let leader_rid = leader.request_id;
    let lane_idx = lane(leader.class) as u8;
    let size = 1 + mates.len();
    metrics.batch_size.record(size as u64);
    metrics
        .batch_coalesce_us
        .record(coalesce.as_micros() as u64);
    recorder::record_lane(EventKind::BatchStart, lane_idx, leader_rid, size as u64);
    let members: Vec<Job> = std::iter::once(leader).chain(mates).collect();
    let pendings = batch_preflight(members, leader_rid, shared, metrics);
    match kind {
        BatchKind::Bfs => run_bfs_batch(pendings, pool, shared, metrics, slo),
        BatchKind::Point => run_point_batch(pendings, pool, shared, metrics, slo),
    }
}

/// Per-member dequeue bookkeeping for a coalesced batch: exactly the
/// single-path sequence (admission start, queue-stage metrics, `Dequeue`
/// event, the `engine.dequeue` failpoint, the cancelled-while-queued
/// pre-check) plus the batch-only pieces — a `BatchJoin` event tying each
/// follower to the leader, and the `engine.batch.form` failpoint, which
/// can expire or cancel one member at formation time without touching the
/// rest of the batch.
fn batch_preflight(
    members: Vec<Job>,
    leader_rid: u64,
    shared: &Shared,
    metrics: &EngineMetrics,
) -> Vec<Pending> {
    members
        .into_iter()
        .enumerate()
        .map(|(i, job)| {
            shared.admission.on_start();
            let queue_us = job.enqueued.elapsed().as_micros() as u64;
            metrics.queue_us.record(queue_us);
            let lane_idx = lane(job.class);
            metrics.stage_queue_us[lane_idx].record(queue_us);
            recorder::record_lane(EventKind::Dequeue, lane_idx as u8, job.request_id, queue_us);
            if i > 0 {
                recorder::record_lane(
                    EventKind::BatchJoin,
                    lane_idx as u8,
                    job.request_id,
                    leader_rid,
                );
            }
            let forced_by = |fault: Option<chaos::Fault>| match fault {
                Some(f) => match f.action {
                    FaultAction::DeadlineExpire => Some(QueryStatus::DeadlineExceeded),
                    FaultAction::Cancel => Some(QueryStatus::Cancelled),
                    _ => None,
                },
                None => None,
            };
            let mut forced = forced_by(chaos::failpoint!("engine.dequeue", job.tag));
            if forced.is_none() {
                forced = forced_by(chaos::failpoint!("engine.batch.form", job.tag));
            }
            if forced.is_none() && job.token.is_cancelled() {
                forced = Some(if job.token.deadline_passed() {
                    QueryStatus::DeadlineExceeded
                } else {
                    QueryStatus::Cancelled
                });
            }
            Pending {
                job,
                queue_us,
                forced,
            }
        })
        .collect()
}

/// Shard-grouped point sweep: members sort by (shard index, vertex) so the
/// sweep walks each shard's slice of the CSR once instead of hopping
/// between shards per request, then each member runs through the exact
/// single-query path (cache, overlay, panic guard) in that order. The
/// batching win is pure access locality — every result is identical to
/// running that member alone.
fn run_point_batch(
    mut pendings: Vec<Pending>,
    pool: &ThreadPool,
    shared: &Shared,
    metrics: &EngineMetrics,
    slo: &SloTracker,
) {
    // All members share one epoch, so one snapshot's shard map orders all.
    let snapshot = Arc::clone(&pendings[0].job.snapshot);
    batch::shard_sweep_order(
        &mut pendings,
        |p| batch::point_vertex(&p.job.query),
        |v| snapshot.graph().shard_of(v).map(|s| s.index()),
    );
    for mut p in pendings {
        let exec_start = Instant::now();
        let status = match p.forced.take() {
            Some(forced) => forced,
            None => run_guarded(&p.job, pool, shared),
        };
        let exec_us = exec_start.elapsed().as_micros() as u64;
        finish_job(p.job, p.queue_us, status, exec_us, shared, metrics, slo);
    }
}

/// Shared multi-source BFS execution: resolve forced and cache-hit members
/// up front, then run every remaining member as one bit-lane of a single
/// [`msbfs::msbfs_cancellable`] pass. Per-lane output is bit-identical to
/// the single-source kernel, so fanned-out results (and the cache entries
/// they leave behind) match what each member would have produced alone.
fn run_bfs_batch(
    pendings: Vec<Pending>,
    pool: &ThreadPool,
    shared: &Shared,
    metrics: &EngineMetrics,
    slo: &SloTracker,
) {
    let snapshot = Arc::clone(&pendings[0].job.snapshot);
    let epoch = snapshot.epoch();
    let ov = shared.buffer.current();
    // Cacheable only while the live overlay still describes this batch's
    // epoch — the same transitional-view rule as `run_query`.
    let cache_key = (ov.epoch() == epoch).then(|| (epoch, ov.seq()));
    let mut runnable: Vec<Pending> = Vec::new();
    for mut p in pendings {
        if let Some(status) = p.forced.take() {
            finish_job(p.job, p.queue_us, status, 0, shared, metrics, slo);
            continue;
        }
        if let Some((e, s)) = cache_key {
            if let Some(output) = shared.cache.get(e, s, &p.job.query) {
                recorder::record_lane(
                    EventKind::CacheHit,
                    lane(p.job.class) as u8,
                    p.job.request_id,
                    e,
                );
                let status = QueryStatus::Completed(output);
                finish_job(p.job, p.queue_us, status, 0, shared, metrics, slo);
                continue;
            }
        }
        // `engine.run.pre` parity with the single path's guard: an
        // injected panic here fails exactly one member, never the batch.
        let pre = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(fault) = chaos::failpoint!("engine.run.pre", p.job.tag) {
                if fault.is_panic() {
                    panic!("{} at engine.run.pre", chaos::PANIC_MSG);
                }
            }
        }));
        if let Err(payload) = pre {
            let status = QueryStatus::Failed(panic_message(payload.as_ref()));
            finish_job(p.job, p.queue_us, status, 0, shared, metrics, slo);
            continue;
        }
        runnable.push(p);
    }
    if runnable.is_empty() {
        return;
    }
    let use_overlay = cache_key.is_some() && !ov.is_empty();
    // `engine.overlay.read` parity: when an overlay would be applied, a
    // `StaleRead` fault drops it for that member only. Stale members leave
    // the shared pass and run alone against the stale base — exactly what
    // the single path serves under the same fault.
    let mut stale: Vec<Pending> = Vec::new();
    if use_overlay {
        let mut kept = Vec::with_capacity(runnable.len());
        for p in runnable {
            let is_stale = matches!(
                chaos::failpoint!("engine.overlay.read", p.job.tag),
                Some(f) if f.action == FaultAction::StaleRead
            );
            if is_stale {
                stale.push(p);
            } else {
                kept.push(p);
            }
        }
        runnable = kept;
    }
    for p in stale {
        let exec_start = Instant::now();
        let status = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_query_uncached(&p.job, pool, shared, None)
        })) {
            Ok(status) => status,
            Err(payload) => QueryStatus::Failed(panic_message(payload.as_ref())),
        };
        // Single-path parity: the stale result still lands in the cache
        // under the live key (that is the drill — the oracle catches it).
        if let (Some((e, s)), QueryStatus::Completed(output)) = (cache_key, &status) {
            if shared.cache.enabled() {
                let stored = match chaos::failpoint!("engine.cache.insert", p.job.tag) {
                    Some(f) if f.action == FaultAction::CorruptCache => corrupted(output),
                    _ => output.clone(),
                };
                shared.cache.insert(e, s, p.job.query, stored);
            }
        }
        let exec_us = exec_start.elapsed().as_micros() as u64;
        finish_job(p.job, p.queue_us, status, exec_us, shared, metrics, slo);
    }
    if runnable.is_empty() {
        return;
    }
    // One graph for the whole pass: the memoized base+overlay
    // materialization when an overlay is live, the pinned base otherwise.
    let materialized;
    let service = if use_overlay {
        materialized = materialized_for(shared, &snapshot, &ov);
        materialized.service()
    } else {
        snapshot.graph().service()
    };
    // Traced members get the same `KernelStart` marker `run_service`
    // would have recorded (arg = Bfs's index in the workload registry).
    let bfs_index = Workload::ALL
        .iter()
        .position(|&w| w == Workload::Bfs)
        .unwrap_or(0) as u64;
    for p in &runnable {
        if p.job.token.trace_id() != 0 {
            recorder::record(EventKind::KernelStart, p.job.token.trace_id(), bfs_index);
        }
    }
    let sources: Vec<u32> = runnable
        .iter()
        .map(|p| batch::point_vertex(&p.job.query))
        .collect();
    let tokens: Vec<&CancelToken> = runnable.iter().map(|p| &p.job.token).collect();
    let exec_start = Instant::now();
    let kernel = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        msbfs::msbfs_dir_opt_cancellable(pool, service.bi(), &sources, &tokens)
    }));
    let exec_us = exec_start.elapsed().as_micros() as u64;
    match kernel {
        Err(payload) => {
            // A genuine kernel panic fails every lane still in the pass —
            // the shared-fate cost of sharing one kernel. The executor and
            // every other query keep going, same as the single-path guard.
            let msg = panic_message(payload.as_ref());
            for p in runnable {
                let status = QueryStatus::Failed(msg.clone());
                finish_job(p.job, p.queue_us, status, exec_us, shared, metrics, slo);
            }
        }
        Ok(results) => {
            for (p, result) in runnable.into_iter().zip(results) {
                let status = match result {
                    Ok(levels) => {
                        QueryStatus::Completed(QueryOutput::Workload(ServiceOutput::Levels(levels)))
                    }
                    Err(_) => {
                        if p.job.token.deadline_passed() {
                            QueryStatus::DeadlineExceeded
                        } else {
                            QueryStatus::Cancelled
                        }
                    }
                };
                // `engine.run.post` parity, contained per member.
                let status = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(fault) = chaos::failpoint!("engine.run.post", p.job.tag) {
                        if fault.is_panic() {
                            panic!("{} at engine.run.post", chaos::PANIC_MSG);
                        }
                    }
                    status
                })) {
                    Ok(status) => status,
                    Err(payload) => QueryStatus::Failed(panic_message(payload.as_ref())),
                };
                if let (Some((e, s)), QueryStatus::Completed(output)) = (cache_key, &status) {
                    if shared.cache.enabled() {
                        let stored = match chaos::failpoint!("engine.cache.insert", p.job.tag) {
                            Some(f) if f.action == FaultAction::CorruptCache => corrupted(output),
                            _ => output.clone(),
                        };
                        shared.cache.insert(e, s, p.job.query, stored);
                    }
                }
                finish_job(p.job, p.queue_us, status, exec_us, shared, metrics, slo);
            }
        }
    }
}

/// Run the query inside a panic guard. A kernel panic — injected via the
/// `engine.run.pre`/`engine.run.post`/`runtime.cancel.check` failpoints, or
/// a genuine bug surfacing through `ThreadPool::broadcast`'s re-throw —
/// terminates *this query* with [`QueryStatus::Failed`]; the executor
/// thread, the pool workers, and every other query keep going.
fn run_guarded(job: &Job, pool: &ThreadPool, shared: &Shared) -> QueryStatus {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(fault) = chaos::failpoint!("engine.run.pre", job.tag) {
            if fault.is_panic() {
                panic!("{} at engine.run.pre", chaos::PANIC_MSG);
            }
        }
        let status = run_query(job, pool, shared);
        if let Some(fault) = chaos::failpoint!("engine.run.post", job.tag) {
            if fault.is_panic() {
                panic!("{} at engine.run.post", chaos::PANIC_MSG);
            }
        }
        status
    }));
    match result {
        Ok(status) => status,
        Err(payload) => QueryStatus::Failed(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Chaos cache poisoning: the corrupted entry a firing
/// [`FaultAction::CorruptCache`] stores in place of the real output. Any
/// later hit serves a wrong answer whose digest cannot match the
/// sequential oracle's — the drill that proves the oracle guards the
/// cache path.
fn corrupted(output: &QueryOutput) -> QueryOutput {
    QueryOutput::KHop(output.digest() ^ 0xBAD_CAC4E)
}

fn run_query(job: &Job, pool: &ThreadPool, shared: &Shared) -> QueryStatus {
    let epoch = job.snapshot.epoch();
    let ov = shared.buffer.current();
    if ov.epoch() != epoch {
        // A publish or compaction raced this job between admission and
        // execution: the live overlay no longer describes this job's
        // pinned base. Serve the pinned snapshot as-is and bypass the
        // cache — no (epoch, delta-seq) key names this transitional view.
        return run_query_uncached(job, pool, shared, None);
    }
    let seq = ov.seq();
    // Serve from the (epoch, delta-seq)-keyed cache first: identical query
    // + identical graph state = bit-identical output, so a hit skips the
    // kernel entirely while the response (and its digest) stays exactly
    // what a fresh run would produce. Any mutation bumps the delta-seq,
    // making every entry cached against the older overlay unreachable.
    if let Some(output) = shared.cache.get(epoch, seq, &job.query) {
        recorder::record_lane(
            EventKind::CacheHit,
            lane(job.class) as u8,
            job.request_id,
            epoch,
        );
        return QueryStatus::Completed(output);
    }
    let overlay = if ov.is_empty() { None } else { Some(&*ov) };
    let status = run_query_uncached(job, pool, shared, overlay);
    // The clone feeding the store is skipped outright when the cache is
    // off (`cache_capacity: 0`) — a benchmark or test that disables the
    // cache should not pay a per-result deep copy for nothing.
    if let QueryStatus::Completed(output) = &status {
        if shared.cache.enabled() {
            let stored = match chaos::failpoint!("engine.cache.insert", job.tag) {
                Some(f) if f.action == FaultAction::CorruptCache => corrupted(output),
                _ => output.clone(),
            };
            shared.cache.insert(epoch, seq, job.query, stored);
        }
    }
    status
}

fn run_query_uncached(
    job: &Job,
    pool: &ThreadPool,
    shared: &Shared,
    overlay: Option<&DeltaOverlay>,
) -> QueryStatus {
    let graph = job.snapshot.graph();
    // Failpoint `engine.overlay.read`: a `StaleRead` fault drops the
    // overlay from this read and serves the stale base — the drill that
    // proves the rebuild oracle catches a broken overlay-read path.
    let overlay = match overlay {
        Some(ov) => match chaos::failpoint!("engine.overlay.read", job.tag) {
            Some(f) if f.action == FaultAction::StaleRead => None,
            _ => Some(ov),
        },
        None => None,
    };
    match job.query {
        // Point queries run inline on the executor thread: waking the pool
        // would cost more than the lookup.
        Query::Degree { vertex } => {
            let (out, inc) = match overlay {
                Some(ov) => ov.degree(graph, vertex),
                None => graph.degree(vertex),
            }
            .unwrap_or((0, 0));
            QueryStatus::Completed(QueryOutput::Degree { out, inc })
        }
        Query::KHop { source, hops } => {
            let count = match overlay {
                Some(ov) => ov.k_hop(graph, source, hops),
                None => graph.k_hop(source, hops),
            };
            QueryStatus::Completed(QueryOutput::KHop(count))
        }
        Query::Run { workload, source } => {
            let served = match overlay {
                None => service::run_service(workload, pool, graph.service(), source, &job.token),
                Some(ov) => run_overlay_service(job, pool, shared, ov, workload, source),
            };
            match served {
                Ok(output) => QueryStatus::Completed(QueryOutput::Workload(output)),
                Err(ServiceError::Cancelled) => {
                    if job.token.deadline_passed() {
                        QueryStatus::DeadlineExceeded
                    } else {
                        QueryStatus::Cancelled
                    }
                }
                Err(ServiceError::Unsupported(w)) => QueryStatus::Unsupported(w),
            }
        }
    }
}

/// Serve a workload query against base + overlay. Connected components on
/// an insert-only ("clean") overlay goes through the incremental
/// union-find kernel; everything else recomputes on the memoized
/// materialized graph.
fn run_overlay_service(
    job: &Job,
    pool: &ThreadPool,
    shared: &Shared,
    ov: &DeltaOverlay,
    workload: Workload,
    source: u32,
) -> Result<ServiceOutput, ServiceError> {
    if workload == Workload::CComp && !ov.dirty() {
        if let Some(labels) = incremental_ccomp(pool, shared, job, ov)? {
            return Ok(ServiceOutput::Labels(labels));
        }
    }
    let graph = materialized_for(shared, &job.snapshot, ov);
    service::run_service(workload, pool, graph.service(), source, &job.token)
}

/// Advance the per-epoch incremental connected-components state to this
/// overlay's insert log and return the labels. `None` when the shared
/// state has already advanced past this overlay's log (an older in-flight
/// view must recompute — union-find cannot rewind).
fn incremental_ccomp(
    pool: &ThreadPool,
    shared: &Shared,
    job: &Job,
    ov: &DeltaOverlay,
) -> Result<Option<Vec<u32>>, ServiceError> {
    let mut guard = lockp(&shared.inc_ccomp);
    let needs_seed = !matches!(&*guard, Some((e, _)) if *e == ov.epoch());
    if needs_seed {
        // Seed once per epoch with a full pool run over the base graph;
        // every later clean-overlay CComp is a cheap union of the new
        // insert-log suffix instead of a whole-graph recompute.
        let base =
            parallel::ccomp_cancellable(pool, job.snapshot.graph().service().sym(), &job.token)?;
        *guard = Some((ov.epoch(), IncrementalCComp::new(&base)));
    }
    let (_, inc) = guard.as_mut().expect("state seeded above");
    if inc.applied() > ov.insert_log().len() {
        return Ok(None);
    }
    inc.advance(ov.insert_log());
    Ok(Some(inc.labels(ov.n_total() as usize)))
}

/// The memoized materialization of `(epoch, delta-seq)` — base + overlay
/// folded into a real sharded CSR, shared by every workload query and by
/// the compactor so one overlay version pays the fold exactly once.
fn materialized_for(shared: &Shared, snap: &EpochSnapshot, ov: &DeltaOverlay) -> Arc<ShardedGraph> {
    let mut memo = lockp(&shared.materialized);
    if let Some((e, s, g)) = &*memo {
        if *e == ov.epoch() && *s == ov.seq() {
            return Arc::clone(g);
        }
    }
    let g = Arc::new(ov.materialize(snap.graph(), shared.shards));
    *memo = Some((ov.epoch(), ov.seq(), Arc::clone(&g)));
    g
}

/// Background compaction worker: waits on the doorbell the write path
/// rings when the overlay crosses the configured threshold, folds, and
/// re-checks (mutations landing mid-fold may already warrant another
/// pass).
fn compactor_loop(store: &GraphStore, shared: &Shared, metrics: &EngineMetrics, threshold: usize) {
    let (doorbell, cv) = &shared.compact_doorbell;
    loop {
        {
            let mut state = lockp(doorbell);
            while !state.0 && !state.1 {
                state = cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            if state.1 {
                return;
            }
            state.0 = false;
        }
        compact_inner(store, shared, metrics);
        if shared.buffer.current().overlay_edges() >= threshold {
            lockp(doorbell).0 = true;
        }
    }
}

/// Fold the current overlay into a fresh sharded CSR and publish it as a
/// new epoch. Materialization runs *off* the write lock (mutations keep
/// landing); publication retries optimistically and only falls back to
/// folding under the lock — the measured "compaction pause" — when writers
/// keep winning the race. Returns the serving epoch (unchanged when there
/// was nothing to fold).
fn compact_inner(store: &GraphStore, shared: &Shared, metrics: &EngineMetrics) -> u64 {
    let ov0 = shared.buffer.current();
    if ov0.is_empty() {
        return store.epoch();
    }
    metrics.compact_started.inc();
    recorder::record(EventKind::CompactStart, ov0.epoch(), ov0.seq());
    let _ = chaos::failpoint!("engine.compact.pre");
    let mut attempts = 0;
    let epoch = loop {
        attempts += 1;
        if attempts > 3 {
            // Writers keep beating us to the buffer: fold while holding
            // the write lock. This is the stop-the-world pause the bench
            // reports; the optimistic path below keeps it rare.
            let _w = lockp(&shared.write_lock);
            let snap = store.snapshot();
            let cur = shared.buffer.current();
            if cur.is_empty() {
                break 0;
            }
            let pause = Instant::now();
            let graph = Arc::new(cur.materialize(snap.graph(), shared.shards));
            break publish_folded(store, shared, metrics, graph, pause);
        }
        let snap = store.snapshot();
        let cur = shared.buffer.current();
        if cur.is_empty() {
            break 0; // another writer already folded or replaced the graph
        }
        if cur.epoch() != snap.epoch() {
            continue; // raced a publish; re-grab a consistent pair
        }
        let graph = materialized_for(shared, &snap, &cur);
        let pause = Instant::now();
        let _w = lockp(&shared.write_lock);
        if shared.buffer.current().seq() == cur.seq() && store.epoch() == snap.epoch() {
            break publish_folded(store, shared, metrics, graph, pause);
        }
        // A batch landed while we materialized; retry with the fresh log.
    };
    let _ = chaos::failpoint!("engine.compact.post");
    recorder::record(EventKind::CompactEnd, ov0.epoch(), epoch);
    metrics.compact_completed.inc();
    if epoch == 0 {
        store.epoch()
    } else {
        epoch
    }
}

/// Publish an already-folded graph as the next epoch, reset the overlay
/// onto it (sequence counter preserved), and sweep the cache. The caller
/// holds the write lock; `pause` marks when the write path stalled.
fn publish_folded(
    store: &GraphStore,
    shared: &Shared,
    metrics: &EngineMetrics,
    graph: Arc<ShardedGraph>,
    pause: Instant,
) -> u64 {
    let n_total = graph.num_vertices() as u32;
    let epoch = store.publish_shared(graph);
    shared.buffer.reset(epoch, n_total);
    shared.cache.invalidate();
    metrics
        .compact_pause_us
        .record(pause.elapsed().as_micros() as u64);
    epoch
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_datagen::Dataset;

    fn csr(n: usize) -> Csr {
        Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n))
    }

    fn quiet_cfg() -> EngineConfig {
        EngineConfig {
            pool_threads: 2,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn point_and_analytics_queries_complete() {
        let reg = Registry::new();
        let engine = Engine::with_registry(quiet_cfg(), csr(200), &reg);
        let t1 = engine.submit(Query::Degree { vertex: 0 }).unwrap();
        let t2 = engine
            .submit(Query::Run {
                workload: Workload::CComp,
                source: 0,
            })
            .unwrap();
        let r1 = t1.wait();
        let r2 = t2.wait();
        assert_eq!(r1.epoch, 1);
        assert_eq!(r1.class, CostClass::Point);
        assert!(matches!(
            r1.status,
            QueryStatus::Completed(QueryOutput::Degree { .. })
        ));
        assert_eq!(r2.class, CostClass::Analytics);
        assert!(matches!(
            r2.status,
            QueryStatus::Completed(QueryOutput::Workload(ServiceOutput::Labels(_)))
        ));
        let snap = reg.snapshot();
        use graphbig_telemetry::MetricValue;
        assert_eq!(snap["engine.submitted"], MetricValue::Counter(2));
        assert_eq!(snap["engine.completed.point"], MetricValue::Counter(1));
        assert_eq!(snap["engine.completed.analytics"], MetricValue::Counter(1));
    }

    #[test]
    fn cost_budget_rejection_is_synchronous_and_counted() {
        let reg = Registry::new();
        let cfg = EngineConfig {
            cost_budget: 1, // only Degree-class queries fit
            ..quiet_cfg()
        };
        let engine = Engine::with_registry(cfg, csr(100), &reg);
        // Occupy the whole budget so the engine is busy (an idle engine
        // now admits any cost — see the admission livelock regression).
        engine.admission().try_admit(1).unwrap();
        let err = engine
            .submit(Query::Run {
                workload: Workload::KCore,
                source: 0,
            })
            .unwrap_err();
        assert!(matches!(err, RejectReason::CostBudget { .. }), "{err}");
        // Releasing the budget lets a cost-1 point query through.
        engine.admission().on_start();
        engine.admission().on_finish(1);
        let t = engine.submit(Query::Degree { vertex: 1 }).unwrap();
        assert!(matches!(t.wait().status, QueryStatus::Completed(_)));
        let snap = reg.snapshot();
        use graphbig_telemetry::MetricValue;
        assert_eq!(snap["engine.rejected.cost_budget"], MetricValue::Counter(1));
        assert_eq!(snap["engine.submitted"], MetricValue::Counter(1));
    }

    #[test]
    fn oversized_query_completes_on_an_idle_engine() {
        // End-to-end form of the admission livelock regression: KCore's
        // estimate dwarfs a budget of 1, but an idle engine must still
        // serve it rather than reject it forever.
        let reg = Registry::new();
        let cfg = EngineConfig {
            cost_budget: 1,
            ..quiet_cfg()
        };
        let engine = Engine::with_registry(cfg, csr(100), &reg);
        let t = engine
            .submit(Query::Run {
                workload: Workload::KCore,
                source: 0,
            })
            .unwrap();
        assert!(matches!(t.wait().status, QueryStatus::Completed(_)));
        assert_eq!(engine.admission().in_flight_cost(), 0);
    }

    #[test]
    fn expired_deadline_cancels_instead_of_completing() {
        let reg = Registry::new();
        let engine = Engine::with_registry(quiet_cfg(), csr(300), &reg);
        let t = engine
            .submit_with_deadline(
                Query::Run {
                    workload: Workload::CComp,
                    source: 0,
                },
                Some(Duration::ZERO),
            )
            .unwrap();
        let r = t.wait();
        assert_eq!(r.status, QueryStatus::DeadlineExceeded);
        use graphbig_telemetry::MetricValue;
        assert_eq!(
            reg.snapshot()["engine.deadline_missed"],
            MetricValue::Counter(1)
        );
        // Budget is released even for missed queries.
        assert_eq!(engine.admission().in_flight_cost(), 0);
    }

    #[test]
    fn explicit_cancel_reports_cancelled() {
        let reg = Registry::new();
        let engine = Engine::with_registry(quiet_cfg(), csr(100), &reg);
        let t = engine
            .submit(Query::Run {
                workload: Workload::SPath,
                source: 0,
            })
            .unwrap();
        t.cancel();
        let r = t.wait();
        // Depending on timing the cancel lands before or during execution;
        // either way the query must not complete... unless it already
        // finished before the cancel arrived, which tiny graphs allow.
        match r.status {
            QueryStatus::Cancelled | QueryStatus::Completed(_) => {}
            other => panic!("unexpected status {other:?}"),
        }
    }

    #[test]
    fn unsupported_workload_is_reported_not_hung() {
        let reg = Registry::new();
        let engine = Engine::with_registry(quiet_cfg(), csr(50), &reg);
        let t = engine
            .submit(Query::Run {
                workload: Workload::Gibbs,
                source: 0,
            })
            .unwrap();
        assert_eq!(t.wait().status, QueryStatus::Unsupported(Workload::Gibbs));
    }

    #[test]
    fn publish_moves_new_queries_to_new_epoch() {
        let engine = Engine::with_registry(quiet_cfg(), csr(64), &Registry::new());
        let t1 = engine.submit(Query::Degree { vertex: 0 }).unwrap();
        assert_eq!(engine.publish(csr(128)), 2);
        let t2 = engine.submit(Query::Degree { vertex: 0 }).unwrap();
        assert_eq!(t1.wait().epoch, 1);
        assert_eq!(t2.wait().epoch, 2);
    }

    #[test]
    fn accounting_balances_after_mixed_load() {
        let reg = Registry::new();
        let cfg = EngineConfig {
            queue_capacity: 4,
            ..quiet_cfg()
        };
        let engine = Engine::with_registry(cfg, csr(150), &reg);
        let mut tickets = Vec::new();
        let mut sent = 0u64;
        let mut rejected = 0u64;
        for i in 0..50u32 {
            let q = match i % 3 {
                0 => Query::Degree { vertex: i % 150 },
                1 => Query::KHop {
                    source: i % 150,
                    hops: 2,
                },
                _ => Query::Run {
                    workload: Workload::CComp,
                    source: 0,
                },
            };
            match engine.submit(q) {
                Ok(t) => {
                    sent += 1;
                    tickets.push(t);
                }
                Err(_) => rejected += 1,
            }
        }
        let responses: Vec<QueryResponse> = tickets.into_iter().map(Ticket::wait).collect();
        assert_eq!(responses.len() as u64, sent);
        assert_eq!(sent + rejected, 50);
        assert_eq!(engine.admission().in_flight_cost(), 0);
        assert_eq!(engine.admission().queued(), 0);
        let completed = responses
            .iter()
            .filter(|r| matches!(r.status, QueryStatus::Completed(_)))
            .count() as u64;
        assert_eq!(completed, sent, "no deadline was set, all must complete");
    }

    #[test]
    fn shutdown_sheds_queued_queries_with_responses() {
        let reg = Registry::new();
        let cfg = EngineConfig {
            executors: 1,
            pool_threads: 1,
            ..EngineConfig::default()
        };
        let engine = Engine::with_registry(cfg, csr(400), &reg);
        // Stack up slow analytics; drop the engine before they all run.
        let tickets: Vec<Ticket> = (0..8)
            .filter_map(|_| {
                engine
                    .submit(Query::Run {
                        workload: Workload::KCore,
                        source: 0,
                    })
                    .ok()
            })
            .collect();
        drop(engine);
        for t in tickets {
            let r = t.wait();
            assert!(
                matches!(r.status, QueryStatus::Completed(_) | QueryStatus::Cancelled),
                "shutdown must complete or shed, got {:?}",
                r.status
            );
        }
    }

    #[test]
    fn select_lane_ages_starving_lanes() {
        let all = [true, true, true, true];
        // Strict priority while nobody has aged out.
        assert_eq!(select_lane(all, [0; 4], 4), Some(0));
        assert_eq!(select_lane([false, true, true, false], [0; 4], 4), Some(1));
        assert_eq!(select_lane([false; 4], [9; 4], 4), None);
        // A lane at the limit is served ahead of higher priorities.
        assert_eq!(select_lane(all, [0, 0, 4, 0], 4), Some(2));
        assert_eq!(
            select_lane(all, [0, 4, 4, 0], 4),
            Some(1),
            "lowest aged wins"
        );
        // The write lane ages into service like any other.
        assert_eq!(select_lane(all, [0, 0, 0, 4], 4), Some(3));
        // An empty lane never ages into service.
        assert_eq!(
            select_lane([true, false, true, false], [0, 9, 0, 9], 4),
            Some(0)
        );
        // Limit 0 = aging off: strict priority no matter the counters.
        assert_eq!(select_lane(all, [0, 99, 99, 99], 0), Some(0));
    }

    #[test]
    fn lane_skip_counts_are_bounded_by_the_aging_limit() {
        // Model a point-query storm directly on the Lanes state machine:
        // lane 0 never empties, lane 2 holds a steady backlog. Without
        // aging lane 2 would starve forever; with it, lane 2 is served at
        // least once every `limit + 1` dequeues and its skip counter never
        // passes `limit + 1`.
        let limit = 4u64;
        let mut lanes = Lanes {
            queues: [
                VecDeque::new(),
                VecDeque::new(),
                VecDeque::new(),
                VecDeque::new(),
            ],
            skips: [0; 4],
            max_skip: 0,
            aging_limit: limit,
            shutdown: false,
        };
        let stub = |class: CostClass| {
            let (tx, _rx) = channel();
            Job {
                query: Query::Degree { vertex: 0 },
                class,
                cost: 1,
                static_cost: 1,
                snapshot: GraphStore::new(ShardedGraph::build(
                    Csr::from_graph(&graphbig_datagen::Dataset::Ldbc.generate_with_vertices(8)),
                    2,
                ))
                .snapshot(),
                token: CancelToken::new(),
                enqueued: Instant::now(),
                tag: 0,
                request_id: 0,
                resolver: Resolver::new(tx),
            }
        };
        let mut analytics_served = 0u64;
        for round in 0..100 {
            lanes.queues[0].push_back(stub(CostClass::Point));
            if lanes.queues[2].is_empty() {
                lanes.queues[2].push_back(stub(CostClass::Analytics));
            }
            let (job, aged) = lanes.pop().unwrap();
            if job.class == CostClass::Analytics {
                analytics_served += 1;
                assert!(aged, "analytics only gets served via aging here");
            }
            assert!(
                lanes.max_skip <= limit + 1,
                "round {round}: skip {} exceeds bound",
                lanes.max_skip
            );
        }
        assert!(
            analytics_served >= 100 / (limit + 2),
            "lane 2 starved: served {analytics_served} of 100"
        );
    }

    #[test]
    fn cache_serves_identical_results_and_publish_invalidates() {
        let reg = Registry::new();
        let engine = Engine::with_registry(quiet_cfg(), csr(200), &reg);
        let q = Query::KHop { source: 3, hops: 2 };
        let first = engine.submit(q).unwrap().wait();
        let QueryStatus::Completed(ref cold) = first.status else {
            panic!("{:?}", first.status);
        };
        assert!(engine.cache_len() >= 1);
        let second = engine.submit(q).unwrap().wait();
        let QueryStatus::Completed(ref hot) = second.status else {
            panic!("{:?}", second.status);
        };
        assert_eq!(cold, hot, "cache hit must be bit-identical");
        assert_eq!(cold.digest(), hot.digest());
        use graphbig_telemetry::MetricValue;
        assert_eq!(reg.snapshot()["engine.cache.hit"], MetricValue::Counter(1));
        // Publishing a *different* graph must not serve stale results.
        engine.publish(csr(300));
        assert_eq!(engine.cache_len(), 0, "publish sweeps the cache");
        let fresh = engine.submit(q).unwrap().wait();
        let QueryStatus::Completed(ref post) = fresh.status else {
            panic!("{:?}", fresh.status);
        };
        assert_ne!(
            cold.digest(),
            post.digest(),
            "a 200- vs 300-vertex graph must answer differently"
        );
        let snap = reg.snapshot();
        assert!(matches!(snap["engine.cache.evict"], MetricValue::Counter(n) if n >= 1));
    }

    #[test]
    fn disabled_cache_never_hits() {
        let reg = Registry::new();
        let cfg = EngineConfig {
            cache_capacity: 0,
            ..quiet_cfg()
        };
        let engine = Engine::with_registry(cfg, csr(100), &reg);
        let q = Query::Degree { vertex: 5 };
        let a = engine.submit(q).unwrap().wait();
        let b = engine.submit(q).unwrap().wait();
        assert_eq!(a.status, b.status, "identical answers either way");
        use graphbig_telemetry::MetricValue;
        let snap = reg.snapshot();
        assert_eq!(snap["engine.cache.hit"], MetricValue::Counter(0));
        assert_eq!(snap["engine.cache.miss"], MetricValue::Counter(0));
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn query_cost_scales_with_class() {
        let (n, m) = (1000u64, 8000u64);
        let degree = Query::Degree { vertex: 0 }.cost(n, m);
        let khop = Query::KHop { source: 0, hops: 2 }.cost(n, m);
        let bfs = Query::Run {
            workload: Workload::Bfs,
            source: 0,
        }
        .cost(n, m);
        let heavy = Query::Run {
            workload: Workload::CComp,
            source: 0,
        }
        .cost(n, m);
        assert_eq!(degree, 1);
        assert!(degree <= khop && khop <= bfs && bfs < heavy);
    }

    fn manual_compaction_cfg() -> EngineConfig {
        EngineConfig {
            compact_threshold: 0,
            ..quiet_cfg()
        }
    }

    #[test]
    fn mutations_read_through_the_overlay_and_compaction_preserves_them() {
        let reg = Registry::new();
        let engine = Engine::with_registry(manual_compaction_cfg(), csr(64), &reg);
        let before = engine.submit(Query::Degree { vertex: 0 }).unwrap().wait();
        let QueryStatus::Completed(QueryOutput::Degree { out: out0, .. }) = before.status else {
            panic!("{:?}", before.status);
        };
        // A new vertex (id 64) plus an edge to it from vertex 0.
        let receipt = engine
            .mutate(&[
                Mutation::AddVertex,
                Mutation::AddEdge {
                    u: 0,
                    v: 64,
                    w: 1.0,
                },
            ])
            .unwrap();
        assert_eq!((receipt.epoch, receipt.seq, receipt.applied), (1, 1, 2));
        let during = engine.submit(Query::Degree { vertex: 0 }).unwrap().wait();
        let QueryStatus::Completed(QueryOutput::Degree { out: out1, .. }) = during.status else {
            panic!("{:?}", during.status);
        };
        assert_eq!(out1, out0 + 1, "reads must see the overlay insert");
        // Compaction folds the overlay into epoch 2; the read sticks.
        assert_eq!(engine.compact(), 2);
        assert!(engine.overlay().is_empty());
        assert_eq!(engine.delta_seq(), 1, "delta-seq survives compaction");
        let after = engine.submit(Query::Degree { vertex: 0 }).unwrap().wait();
        assert_eq!(after.epoch, 2);
        let QueryStatus::Completed(QueryOutput::Degree { out: out2, .. }) = after.status else {
            panic!("{:?}", after.status);
        };
        assert_eq!(out2, out0 + 1);
        use graphbig_telemetry::MetricValue;
        let snap = reg.snapshot();
        assert_eq!(snap["engine.mutations"], MetricValue::Counter(1));
        assert_eq!(snap["engine.completed.write"], MetricValue::Counter(1));
        assert_eq!(snap["engine.compact.started"], MetricValue::Counter(1));
        assert_eq!(snap["engine.compact.completed"], MetricValue::Counter(1));
    }

    #[test]
    fn mutation_moves_the_cache_to_a_new_delta_seq() {
        let reg = Registry::new();
        let engine = Engine::with_registry(manual_compaction_cfg(), csr(100), &reg);
        let q = Query::Degree { vertex: 7 };
        let a = engine.submit(q).unwrap().wait();
        let _warm = engine.submit(q).unwrap().wait();
        use graphbig_telemetry::MetricValue;
        assert_eq!(reg.snapshot()["engine.cache.hit"], MetricValue::Counter(1));
        // A mutation bumps the delta-seq: same epoch, new key — the entry
        // cached at seq 0 must be unreachable, not served stale.
        engine
            .mutate(&[
                Mutation::AddVertex,
                Mutation::AddEdge {
                    u: 7,
                    v: 100,
                    w: 1.0,
                },
            ])
            .unwrap();
        let c = engine.submit(q).unwrap().wait();
        assert_eq!(
            reg.snapshot()["engine.cache.hit"],
            MetricValue::Counter(1),
            "the pre-mutation entry must not hit"
        );
        let d = engine.submit(q).unwrap().wait();
        assert_eq!(
            reg.snapshot()["engine.cache.hit"],
            MetricValue::Counter(2),
            "the post-mutation entry caches at the new delta-seq"
        );
        assert_eq!(c.status, d.status, "hit is bit-identical");
        let QueryStatus::Completed(QueryOutput::Degree { out: oa, .. }) = a.status else {
            panic!("{:?}", a.status);
        };
        let QueryStatus::Completed(QueryOutput::Degree { out: oc, .. }) = c.status else {
            panic!("{:?}", c.status);
        };
        assert_eq!(oc, oa + 1);
    }

    #[test]
    fn incremental_ccomp_over_the_overlay_matches_materialized_recompute() {
        let cfg = EngineConfig {
            cache_capacity: 0,
            ..manual_compaction_cfg()
        };
        let engine = Engine::with_registry(cfg, csr(120), &Registry::new());
        let q = Query::Run {
            workload: Workload::CComp,
            source: 0,
        };
        // Bridge two far-apart vertices through a fresh one: a clean
        // (insert-only) overlay, so the incremental union-find path serves
        // this query.
        engine
            .mutate(&[
                Mutation::AddVertex,
                Mutation::AddEdge {
                    u: 3,
                    v: 120,
                    w: 1.0,
                },
                Mutation::AddEdge {
                    u: 90,
                    v: 120,
                    w: 1.0,
                },
            ])
            .unwrap();
        let inc = engine.submit(q).unwrap().wait();
        let QueryStatus::Completed(ref inc_out) = inc.status else {
            panic!("{:?}", inc.status);
        };
        // The same logical graph served from the compacted CSR must agree
        // bit-for-bit.
        engine.compact();
        let full = engine.submit(q).unwrap().wait();
        let QueryStatus::Completed(ref full_out) = full.status else {
            panic!("{:?}", full.status);
        };
        assert_eq!(inc_out.digest(), full_out.digest());
    }

    #[test]
    fn background_compactor_folds_the_overlay_past_the_threshold() {
        let cfg = EngineConfig {
            compact_threshold: 4,
            ..quiet_cfg()
        };
        let engine = Engine::with_registry(cfg, csr(64), &Registry::new());
        engine.mutate(&[Mutation::AddVertex]).unwrap();
        for u in 0..6u32 {
            engine
                .mutate(&[Mutation::AddEdge { u, v: 64, w: 1.0 }])
                .unwrap();
        }
        // The compactor folds asynchronously; wait for the epoch to move.
        let deadline = Instant::now() + Duration::from_secs(30);
        while engine.store().epoch() == 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            engine.store().epoch() >= 2,
            "compactor never folded the overlay"
        );
        // All six inserts survive, wherever the compaction boundary fell.
        let r = engine.submit(Query::Degree { vertex: 64 }).unwrap().wait();
        let QueryStatus::Completed(QueryOutput::Degree { inc, .. }) = r.status else {
            panic!("{:?}", r.status);
        };
        assert_eq!(inc, 6);
    }
}
