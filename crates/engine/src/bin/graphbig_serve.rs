//! `graphbig-serve`: closed-loop serving benchmark for the query engine.
//!
//! Loads (or generates) a dataset, stands up an [`Engine`], replays a
//! seeded multi-tenant request mix ([`MixSpec`]) closed-loop, and reports
//! throughput plus per-class p50/p99/p999 latency. With `--oracle` every
//! completed concurrent result is cross-checked against the same queries
//! run sequentially; any mismatch exits non-zero.
//!
//! ```text
//! graphbig-serve --vertices 65536 --clients 4 --requests 400 --oracle \
//!     --emit results/engine_run.json
//! graphbig-serve --mix traffic/smoke_200.json --oracle --quiet
//! ```
//!
//! Flags: `--dataset <short-name>` (default `ldbc`), `--vertices N`,
//! `--mix <path>` (a [`MixSpec`] JSON file; overrides the request-shape
//! flags), `--requests`, `--clients`, `--seed`, `--point-weight`,
//! `--traversal-weight`, `--analytics-weight`, `--write-weight` (edge
//! mutations in the mix; 0 = pure-read), `--write-delete-percent`,
//! `--deadline-ms`, `--hot-sources N` (fold every source into a pool of
//! N hot vertices), `--khop-hops N`, `--executors`, `--pool-threads`,
//! `--queue-capacity`, `--cost-budget` (0 = unlimited), `--shards`,
//! `--compact-threshold N` (buffered overlay edges that wake the
//! background compactor; 0 = manual only), `--oracle`, `--emit <path>`,
//! `--quiet`, `--faults <path>` (a `FaultPlan` JSON file — replay the
//! mix under deterministic fault injection and sweep the chaos
//! invariants; needs a build with the `chaos` feature to actually
//! inject).
//!
//! With `--oracle` on a pure-read mix, every completed result is checked
//! bit-identical against a sequential replay. On a mix with writes the
//! per-request check gives way to the final-state check: the engine's
//! live graph (mid-overlay, and again after a forced compaction) must
//! digest-identical to a single-threaded sequential replay of the same
//! write stream over the starting snapshot.
//!
//! Adaptive-serving flags: `--cache-capacity N` (epoch-keyed result
//! cache entries; 0 disables), `--no-adaptive` (charge static cost
//! estimates instead of feedback-corrected ones), `--aging-limit N`
//! (dequeues a starving lower lane may be skipped before it is served
//! first; 0 = strict priority), `--batch-max N` (requests coalesced into
//! one shared-traversal batch; 1 disables) with `--batch-window-us N`
//! (how long an executor holds a batch open for late joiners; 0 drains
//! only what is already queued), `--slo <path>` (a [`SloSpec`] JSON file
//! with per-class p99/p999 targets in microseconds; overrides the mix
//! file's `slo` member). Targets are stamped onto every stats line and
//! checked against the exact end-of-run latencies — the verdict lands in
//! the manifest as `slo.checked`/`slo.violations`, which
//! `graphbig-report --check` gates on.
//!
//! Observability flags: `--stats-interval <ms>` prints a structured
//! stats snapshot line (schema `graphbig.stats/v1`: queue depth,
//! in-flight cost, per-lane sliding-window p50/p99/p999 + EWMA) to stdout
//! at that cadence while the mix runs, plus once before and once after;
//! `--trace <path>` exports the flight recorder's request lifecycles as
//! Chrome `trace_event` JSON; `--flight-dump <path>` overrides where the
//! always-on flight recorder auto-dumps on an invariant violation, a
//! non-injected panic, or an oracle mismatch.
//!
//! This binary intentionally does not depend on `graphbig-bench` (which
//! depends on the engine through `graphbig`), so it carries its own tiny
//! flag parsing and builds the [`RunManifest`] directly.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use graphbig_chaos::{self as chaos, FaultPlan};
use graphbig_datagen::Dataset;
use graphbig_engine::traffic::{
    evaluate_slo, generate_ops, generate_requests, live_engine_digest, mutation_oracle_digest,
    run_chaos_mix, sequential_digests, verify_against_oracle,
};
use graphbig_engine::{
    check_chaos_invariants, Engine, EngineConfig, MixSpec, SloSpec, TrafficReport,
};
use graphbig_framework::csr::Csr;
use graphbig_telemetry::recorder;
use graphbig_telemetry::{self as telemetry, MetricSink, MetricValue, RunManifest, TableData};

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parsed_arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    arg_value(flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn load_mix() -> Result<MixSpec, String> {
    let mut spec = if let Some(path) = arg_value("--mix") {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read mix file {path}: {e}"))?;
        graphbig_json::from_str(&text).map_err(|e| format!("cannot parse mix file {path}: {e}"))?
    } else {
        let defaults = MixSpec::default();
        MixSpec {
            seed: parsed_arg("--seed", defaults.seed),
            requests: parsed_arg("--requests", defaults.requests),
            clients: parsed_arg("--clients", defaults.clients),
            point_weight: parsed_arg("--point-weight", defaults.point_weight),
            traversal_weight: parsed_arg("--traversal-weight", defaults.traversal_weight),
            analytics_weight: parsed_arg("--analytics-weight", defaults.analytics_weight),
            write_weight: parsed_arg("--write-weight", defaults.write_weight),
            write_delete_percent: parsed_arg(
                "--write-delete-percent",
                defaults.write_delete_percent,
            ),
            deadline_ms: arg_value("--deadline-ms").and_then(|v| v.parse().ok()),
            hot_sources: arg_value("--hot-sources").and_then(|v| v.parse().ok()),
            khop_hops: parsed_arg("--khop-hops", defaults.khop_hops),
            slo: None,
        }
    };
    // An explicit `--slo <path>` beats the mix file's inline `slo` member.
    if let Some(path) = arg_value("--slo") {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read slo spec {path}: {e}"))?;
        spec.slo = Some(
            graphbig_json::from_str::<SloSpec>(&text)
                .map_err(|e| format!("cannot parse slo spec {path}: {e}"))?,
        );
    }
    Ok(spec)
}

fn load_faults() -> Result<FaultPlan, String> {
    let Some(path) = arg_value("--faults") else {
        return Ok(FaultPlan::none());
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read fault plan {path}: {e}"))?;
    graphbig_json::from_str(&text).map_err(|e| format!("cannot parse fault plan {path}: {e}"))
}

fn latency_table(report: &TrafficReport) -> TableData {
    TableData {
        title: "Traffic mix latency by class".into(),
        headers: [
            "class",
            "completed",
            "missed",
            "cancelled",
            "failed",
            "p50_us",
            "p99_us",
            "p999_us",
            "max_us",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows: report
            .classes
            .iter()
            .map(|c| {
                vec![
                    c.class.name().to_string(),
                    c.completed.to_string(),
                    c.deadline_missed.to_string(),
                    c.cancelled.to_string(),
                    c.failed.to_string(),
                    c.p50_us.to_string(),
                    c.p99_us.to_string(),
                    c.p999_us.to_string(),
                    c.max_us.to_string(),
                ]
            })
            .collect(),
    }
}

/// Per-stage latency breakdown built from the `engine.stage_us.*`
/// histograms the engine records eagerly (admit and resolve are
/// lane-agnostic; queue and exec split by cost class).
fn stage_table(snap: &BTreeMap<String, MetricValue>) -> TableData {
    let mut rows = Vec::new();
    {
        let mut push = |stage: &str, class: &str, name: String| {
            if let Some(MetricValue::Histogram(h)) = snap.get(&name) {
                rows.push(vec![
                    stage.to_string(),
                    class.to_string(),
                    h.count.to_string(),
                    h.quantile(0.50).to_string(),
                    h.quantile(0.99).to_string(),
                    format!("{:.1}", h.mean()),
                ]);
            }
        };
        push("admit", "all", "engine.stage_us.admit".into());
        for class in ["point", "traversal", "analytics", "write"] {
            push("queue", class, format!("engine.stage_us.queue.{class}"));
        }
        for class in ["point", "traversal", "analytics", "write"] {
            push("exec", class, format!("engine.stage_us.exec.{class}"));
        }
        push("resolve", "all", "engine.stage_us.resolve".into());
    }
    TableData {
        title: "Per-stage latency breakdown (us)".into(),
        headers: ["stage", "class", "count", "p50_us", "p99_us", "mean_us"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Dump the flight recorder on any non-injected panic, then delegate to
/// the previous hook. Chaos-injected kernel panics are routine during a
/// fault-plan replay and are left to the quiet hook.
fn install_dump_panic_hook() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.starts_with(chaos::PANIC_MSG))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.starts_with(chaos::PANIC_MSG))
            })
            .unwrap_or(false);
        if !injected {
            if let Some(path) = recorder::auto_dump("panic") {
                eprintln!("flight recorder dumped to {path}");
            }
        }
        prev(info);
    }));
}

fn render(table: &TableData) -> String {
    let mut widths: Vec<usize> = table.headers.iter().map(String::len).collect();
    for row in &table.rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = format!("{}\n", table.title);
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(&table.headers));
    out.push('\n');
    for row in &table.rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

fn main() -> ExitCode {
    telemetry::enable();
    if let Some(path) = arg_value("--flight-dump") {
        recorder::set_auto_dump_path(&path);
    }
    install_dump_panic_hook();
    let quiet = has_flag("--quiet");
    let dataset_name = arg_value("--dataset").unwrap_or_else(|| "ldbc".to_string());
    let Some(dataset) = Dataset::ALL
        .iter()
        .copied()
        .find(|d| d.short_name() == dataset_name)
    else {
        eprintln!(
            "error: unknown dataset {dataset_name}; known: {}",
            Dataset::ALL
                .iter()
                .map(|d| d.short_name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    };
    let vertices: usize = parsed_arg("--vertices", 1usize << 16);
    let spec = match load_mix() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = match load_faults() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !plan.is_empty() {
        if chaos::compiled() {
            chaos::install_quiet_panic_hook();
        } else {
            eprintln!(
                "warning: --faults given but failpoints are compiled out; \
                 rebuild with `--features chaos` to inject (plan ignored)"
            );
        }
    }
    let cost_budget: u64 = parsed_arg("--cost-budget", 0u64);
    let cfg_defaults = EngineConfig::default();
    let cfg = EngineConfig {
        executors: parsed_arg("--executors", 2usize),
        pool_threads: parsed_arg("--pool-threads", 4usize),
        queue_capacity: parsed_arg("--queue-capacity", 64usize),
        cost_budget: if cost_budget == 0 {
            u64::MAX
        } else {
            cost_budget
        },
        default_deadline: None,
        shards: parsed_arg("--shards", 8usize),
        adaptive_costs: !has_flag("--no-adaptive"),
        cache_capacity: parsed_arg("--cache-capacity", cfg_defaults.cache_capacity),
        lane_aging_limit: parsed_arg("--aging-limit", cfg_defaults.lane_aging_limit),
        compact_threshold: parsed_arg("--compact-threshold", cfg_defaults.compact_threshold),
        batch_max: parsed_arg("--batch-max", cfg_defaults.batch_max),
        batch_window_us: parsed_arg("--batch-window-us", cfg_defaults.batch_window_us),
    };

    if !quiet {
        eprintln!("generating {dataset_name} with {vertices} vertices...");
    }
    let csr = Csr::from_graph(&dataset.generate_with_vertices(vertices));
    let engine = Engine::new(cfg.clone(), csr);
    if !quiet {
        eprintln!(
            "serving {} requests from {} clients (weights {}/{}/{}/{}, deadline {:?} ms)...",
            spec.requests,
            spec.clients,
            spec.point_weight,
            spec.traversal_weight,
            spec.analytics_weight,
            spec.write_weight,
            spec.deadline_ms
        );
    }
    // Pinned before any traffic: writes resolve against this snapshot, and
    // the write oracle replays against it after the mix drains.
    let base_snapshot = engine.store().snapshot();
    let stats_interval: u64 = parsed_arg("--stats-interval", 0u64);
    // Every stats line carries the per-lane SLO targets (0 = none), so a
    // live reader can compare window quantiles against targets in place.
    let slo_spec = spec.slo.unwrap_or_default();
    let stats_line = |engine: &Engine| {
        let mut snap = engine.stats_snapshot();
        snap.apply_slo(&slo_spec);
        snap.to_json_line()
    };
    let report = if stats_interval == 0 {
        run_chaos_mix(&engine, &spec, &plan)
    } else {
        // One snapshot line before traffic, one at each interval while the
        // mix runs, and one after it drains (printed below).
        println!("{}", stats_line(&engine));
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let engine = &engine;
            let stop = &stop;
            let stats_line = &stats_line;
            s.spawn(move || {
                let mut since_last_ms = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                    since_last_ms += 20;
                    if since_last_ms >= stats_interval {
                        println!("{}", stats_line(engine));
                        since_last_ms = 0;
                    }
                }
            });
            let report = run_chaos_mix(engine, &spec, &plan);
            stop.store(true, Ordering::Relaxed);
            report
        })
    };
    if stats_interval > 0 {
        println!("{}", stats_line(&engine));
    }
    // Publish the sliding-window SLO gauges the mix just filled, so the
    // manifest (and any later registry reader) sees `engine.window.*`.
    engine.slo().publish(telemetry::metrics::global());

    let mut oracle_digests = None;
    let mut mutation_oracle = "off";
    if has_flag("--oracle") {
        if spec.write_weight == 0 {
            // Pure-read mix: every completed result has a sequential twin.
            let queries = generate_requests(&spec, base_snapshot.graph().num_vertices() as u32);
            oracle_digests = Some(sequential_digests(
                base_snapshot.graph(),
                engine.pool(),
                &queries,
            ));
        } else {
            // Writes in the mix: per-request read digests depend on the
            // interleaving, so the check becomes final-state equivalence —
            // mid-overlay, then again after a forced compaction.
            let ops = generate_ops(&spec, base_snapshot.graph().num_vertices() as u32);
            let expected = mutation_oracle_digest(base_snapshot.graph(), &ops);
            let mid = live_engine_digest(&engine);
            engine.compact();
            let folded = live_engine_digest(&engine);
            if mid != expected || folded != expected {
                eprintln!(
                    "error: mutation oracle mismatch: sequential replay {expected:#018x}, \
                     mid-overlay {mid:#018x}, post-compaction {folded:#018x}"
                );
                if let Some(path) = recorder::auto_dump("oracle-mismatch") {
                    eprintln!("flight recorder dumped to {path}");
                }
                return ExitCode::FAILURE;
            }
            mutation_oracle = "ok";
            if !quiet {
                eprintln!(
                    "oracle: live graph matches sequential write replay \
                     ({expected:#018x}), mid-overlay and post-compaction"
                );
            }
        }
    }
    let mut oracle_checked = None;
    if let Some(oracle) = &oracle_digests {
        match verify_against_oracle(&report, oracle) {
            Ok(checked) => {
                oracle_checked = Some(checked);
                if !quiet {
                    eprintln!("oracle: {checked} completed results verified bit-identical");
                }
            }
            Err(e) => {
                eprintln!("error: oracle mismatch: {e}");
                if let Some(path) = recorder::auto_dump("oracle-mismatch") {
                    eprintln!("flight recorder dumped to {path}");
                }
                return ExitCode::FAILURE;
            }
        }
    }

    // Let any in-flight background fold finish its bookkeeping before the
    // metric-balance sweep: the compactor publishes under the write lock
    // but stamps its completion counter just after, so a sweep taken in
    // that window would see started > completed.
    let quiesce_deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snap = telemetry::metrics::global().snapshot();
        let get = |name: &str| match snap.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        if get("engine.compact.started") == get("engine.compact.completed")
            || std::time::Instant::now() > quiesce_deadline
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // The post-mix invariant sweep. The global registry is fresh for this
    // engine + mix pair (one mix per process), so the metric-balance checks
    // are exact — with or without an armed fault plan.
    let invariants = check_chaos_invariants(
        &engine,
        &report,
        oracle_digests.as_deref(),
        telemetry::metrics::global(),
    );
    if !invariants.ok() {
        eprintln!("error: chaos invariants violated:\n{}", invariants.render());
    } else if !quiet && !plan.is_empty() {
        eprintln!("chaos invariants:\n{}", invariants.render());
    }

    // End-of-run SLO verdict over the *exact* latencies (not the sliding
    // window). A miss does not change this binary's exit code — the gate
    // lives in `graphbig-report --check`, which fails any manifest whose
    // `slo.violations` counter is nonzero.
    let slo_verdict = evaluate_slo(&report, &slo_spec);
    if slo_spec.any() {
        if !slo_verdict.ok() {
            eprintln!("SLO targets missed:\n{}", slo_verdict.render());
        } else if !quiet {
            eprintln!("SLO targets:\n{}", slo_verdict.render());
        }
    }

    let table = latency_table(&report);
    if !quiet {
        println!("{}", render(&table));
        println!(
            "admitted {}/{} (queue-full {}, cost-budget {}, retries {}), \
             {:.0} completed/s over {:.1} ms",
            report.admitted,
            report.total_requests,
            report.rejected_queue_full,
            report.rejected_cost_budget,
            report.retries,
            report.throughput_rps,
            report.wall_us as f64 / 1000.0
        );
        if !report.fault_fired.is_empty() {
            let fired: Vec<String> = report
                .fault_fired
                .iter()
                .map(|(label, count)| format!("{label} x{count}"))
                .collect();
            println!("faults fired: {}", fired.join(", "));
        }
    }

    if let Some(path) = arg_value("--trace") {
        let trace = recorder::to_trace(&recorder::snapshot());
        if let Err(e) = telemetry::chrome::write_chrome_trace(&trace, &path) {
            eprintln!("error: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("request-lifecycle trace written to {path}");
        }
    }

    if let Some(path) = arg_value("--emit") {
        let mut manifest = RunManifest::new("graphbig-serve");
        manifest.dataset = Some(dataset_name.clone());
        manifest.threads = cfg.pool_threads as u64;
        manifest.features = telemetry::compiled_features();
        if chaos::compiled() {
            manifest.features.push("chaos".into());
        }
        manifest.param("vertices", vertices);
        manifest.param("seed", spec.seed);
        manifest.param("requests", spec.requests);
        manifest.param("clients", spec.clients);
        manifest.param(
            "weights",
            format!(
                "{}/{}/{}/{}",
                spec.point_weight, spec.traversal_weight, spec.analytics_weight, spec.write_weight
            ),
        );
        manifest.param("write_delete_percent", spec.write_delete_percent);
        manifest.param("compact_threshold", cfg.compact_threshold);
        manifest.param("mutation_oracle", mutation_oracle);
        manifest.param(
            "deadline_ms",
            spec.deadline_ms
                .map(|d| d.to_string())
                .unwrap_or_else(|| "none".into()),
        );
        manifest.param("executors", cfg.executors);
        manifest.param("queue_capacity", cfg.queue_capacity);
        manifest.param("cost_budget", cost_budget);
        manifest.param("shards", cfg.shards);
        manifest.param("cache_capacity", cfg.cache_capacity);
        manifest.param("adaptive_costs", cfg.adaptive_costs);
        manifest.param("aging_limit", cfg.lane_aging_limit);
        manifest.param("batch_max", cfg.batch_max);
        manifest.param("batch_window_us", cfg.batch_window_us);
        manifest.param(
            "hot_sources",
            spec.hot_sources
                .map(|h| h.to_string())
                .unwrap_or_else(|| "none".into()),
        );
        manifest.param("khop_hops", spec.khop_hops);
        manifest.param(
            "oracle_checked",
            oracle_checked
                .map(|c| c.to_string())
                .unwrap_or_else(|| "off".into()),
        );
        manifest.param(
            "faults",
            arg_value("--faults").unwrap_or_else(|| "none".into()),
        );
        if !plan.is_empty() {
            manifest.param("fault_seed", plan.seed);
            manifest.param("fault_max_retries", plan.max_retries);
        }
        for (label, count) in &report.fault_fired {
            manifest.counter(&format!("chaos.fired.{label}"), *count);
        }
        invariants.write_to_manifest(&mut manifest);
        slo_verdict.write_to_manifest(&slo_spec, &mut manifest);
        manifest.gauge("engine.lane.max_skip", engine.max_lane_skip() as f64);
        for class in &report.classes {
            let name = class.class.name();
            manifest.gauge(&format!("engine.p50_us.{name}"), class.p50_us as f64);
            manifest.gauge(&format!("engine.p99_us.{name}"), class.p99_us as f64);
            manifest.gauge(&format!("engine.p999_us.{name}"), class.p999_us as f64);
        }
        manifest.gauge("engine.throughput_rps", report.throughput_rps);
        manifest.gauge("engine.wall_us", report.wall_us as f64);
        let flight = recorder::snapshot();
        manifest.counter("recorder.captured", flight.events.len() as u64);
        manifest.counter("recorder.evicted", flight.evicted);
        engine.pool().export_metrics(&mut manifest);
        let global_snap = telemetry::metrics::global().snapshot();
        let stages = stage_table(&global_snap);
        for (name, value) in global_snap {
            manifest.metrics.entry(name).or_insert(value);
        }
        manifest.absorb_trace(&telemetry::take_trace());
        manifest.tables.push(table);
        manifest.tables.push(stages);
        if let Err(e) = manifest.write_to(&path) {
            eprintln!("error: cannot write manifest to {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("run manifest written to {path}");
        }
    }
    if invariants.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
