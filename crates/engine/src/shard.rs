//! Degree-balanced sharding of a CSR snapshot.
//!
//! A [`ShardedGraph`] splits the vertex range into P contiguous
//! [`CsrShard`]s whose *edge* counts are balanced (prefix-sum partitioning
//! over `degree + 1` weights, the same weighting the runtime's dynamic
//! scheduler uses for chunks). Contiguous ranges keep each shard's
//! adjacency data contiguous in the CSR arrays — a point query touching one
//! shard stays inside one cache-friendly window, and per-shard degree stats
//! give the admission controller a cheap skew signal.
//!
//! Shards are *views*: they hold no edge data themselves, only the range
//! and its statistics. All kernels still run over the shared
//! [`ServiceGraph`] views, so sharding adds zero copies.

use graphbig_framework::csr::Csr;
use graphbig_workloads::service::ServiceGraph;

/// One contiguous vertex range of a sharded graph, with the degree
/// statistics the scheduler and admission controller consult.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrShard {
    index: usize,
    start: u32,
    end: u32,
    edges: u64,
    max_degree: u32,
}

impl CsrShard {
    /// Position of this shard in the partition.
    pub fn index(&self) -> usize {
        self.index
    }

    /// First vertex (dense id) in the shard.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One past the last vertex in the shard.
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Vertices in the shard.
    pub fn vertices(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Out-edges owned by the shard's vertices.
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// Largest out-degree in the shard (hub detector).
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Mean out-degree in the shard.
    pub fn avg_degree(&self) -> f64 {
        if self.vertices() == 0 {
            0.0
        } else {
            self.edges as f64 / self.vertices() as f64
        }
    }

    /// True when the shard owns vertex `v`.
    pub fn contains(&self, v: u32) -> bool {
        self.start <= v && v < self.end
    }
}

/// A graph snapshot partitioned into degree-balanced shards, sharing the
/// kernel views of a [`ServiceGraph`].
pub struct ShardedGraph {
    service: ServiceGraph,
    shards: Vec<CsrShard>,
}

impl ShardedGraph {
    /// Shard `csr` into at most `num_shards` contiguous vertex ranges with
    /// near-equal edge mass, and precompute the kernel views.
    pub fn build(csr: Csr, num_shards: usize) -> Self {
        let n = csr.num_vertices();
        let p = num_shards.max(1);
        let total_weight: u64 = (0..n as u32).map(|v| csr.degree(v) as u64 + 1).sum();
        let target = total_weight.div_ceil(p as u64).max(1);
        let mut shards = Vec::with_capacity(p);
        let mut start = 0u32;
        let mut acc = 0u64;
        let mut edges = 0u64;
        let mut max_degree = 0u32;
        for v in 0..n as u32 {
            let d = csr.degree(v);
            acc += d as u64 + 1;
            edges += d as u64;
            max_degree = max_degree.max(d);
            // Close the shard once it reaches its weight target, unless the
            // remaining vertices are needed to populate remaining shards.
            let remaining_shards = p - shards.len();
            let remaining_vertices = n as u32 - v;
            if (acc >= target && remaining_vertices as usize >= remaining_shards)
                || remaining_vertices as usize == remaining_shards - 1
            {
                shards.push(CsrShard {
                    index: shards.len(),
                    start,
                    end: v + 1,
                    edges,
                    max_degree,
                });
                start = v + 1;
                acc = 0;
                edges = 0;
                max_degree = 0;
                if shards.len() == p {
                    break;
                }
            }
        }
        if start < n as u32 || shards.is_empty() {
            let mut edges = 0u64;
            let mut max_degree = 0u32;
            for v in start..n as u32 {
                let d = csr.degree(v);
                edges += d as u64;
                max_degree = max_degree.max(d);
            }
            shards.push(CsrShard {
                index: shards.len(),
                start,
                end: n as u32,
                edges,
                max_degree,
            });
        }
        ShardedGraph {
            service: ServiceGraph::build(csr),
            shards,
        }
    }

    /// The kernel views this partition shares.
    pub fn service(&self) -> &ServiceGraph {
        &self.service
    }

    /// The shard list, ascending by vertex range.
    pub fn shards(&self) -> &[CsrShard] {
        &self.shards
    }

    /// Vertices in the graph.
    pub fn num_vertices(&self) -> usize {
        self.service.num_vertices()
    }

    /// Directed edges in the graph.
    pub fn num_edges(&self) -> usize {
        self.service.num_edges()
    }

    /// The shard owning vertex `v` (binary search over the contiguous
    /// ranges), or `None` when `v` is out of range.
    pub fn shard_of(&self, v: u32) -> Option<&CsrShard> {
        let idx = self
            .shards
            .partition_point(|s| s.end() <= v)
            .min(self.shards.len().saturating_sub(1));
        self.shards.get(idx).filter(|s| s.contains(v))
    }

    /// Point query: out-degree of `v` plus in-degree via the transpose —
    /// one adjacency-offset subtraction each, no edge scan.
    pub fn degree(&self, v: u32) -> Option<(u32, u32)> {
        if (v as usize) < self.num_vertices() {
            Some((
                self.service.out().degree(v),
                self.service.bi().inc().degree(v),
            ))
        } else {
            None
        }
    }

    /// Point query: number of distinct vertices within `hops` out-edge
    /// steps of `source` (including the source itself). Runs sequentially —
    /// a bounded neighborhood never justifies waking the pool.
    pub fn k_hop(&self, source: u32, hops: u32) -> u64 {
        let n = self.num_vertices();
        if n == 0 || source as usize >= n {
            return 0;
        }
        let out = self.service.out();
        let mut visited = vec![false; n];
        visited[source as usize] = true;
        let mut frontier = vec![source];
        let mut next = Vec::new();
        let mut count = 1u64;
        for _ in 0..hops {
            if frontier.is_empty() {
                break;
            }
            for &u in &frontier {
                for &v in out.neighbors(u) {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        count += 1;
                        next.push(v);
                    }
                }
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_datagen::Dataset;

    fn sharded(n: usize, p: usize) -> ShardedGraph {
        let g = Dataset::Ldbc.generate_with_vertices(n);
        ShardedGraph::build(Csr::from_graph(&g), p)
    }

    #[test]
    fn shards_cover_the_vertex_range_exactly_once() {
        for p in [1usize, 2, 7, 8, 64] {
            let sg = sharded(512, p);
            let shards = sg.shards();
            assert!(!shards.is_empty() && shards.len() <= p, "p={p}");
            assert_eq!(shards[0].start(), 0);
            assert_eq!(shards.last().unwrap().end() as usize, sg.num_vertices());
            for w in shards.windows(2) {
                assert_eq!(w[0].end(), w[1].start(), "p={p}: gap or overlap");
            }
            let total_edges: u64 = shards.iter().map(|s| s.edges()).sum();
            assert_eq!(total_edges, sg.num_edges() as u64, "p={p}");
        }
    }

    #[test]
    fn shards_balance_edge_mass() {
        let sg = sharded(1024, 8);
        let weights: Vec<u64> = sg
            .shards()
            .iter()
            .map(|s| s.edges() + s.vertices() as u64)
            .collect();
        let max = *weights.iter().max().unwrap();
        let avg = weights.iter().sum::<u64>() as f64 / weights.len() as f64;
        // Contiguous-range partitioning can't be perfect, but no shard
        // should carry more than ~2x the average weight on a power-law graph
        // at this size.
        assert!(
            (max as f64) < 2.5 * avg,
            "imbalanced shards: {weights:?} (avg {avg:.0})"
        );
    }

    #[test]
    fn shard_of_agrees_with_contains() {
        let sg = sharded(300, 4);
        for v in 0..300u32 {
            let s = sg.shard_of(v).expect("in range");
            assert!(s.contains(v), "vertex {v} not in its shard");
            assert_eq!(sg.shards()[s.index()], *s);
        }
        assert!(sg.shard_of(300).is_none());
        assert!(sg.shard_of(u32::MAX).is_none());
    }

    #[test]
    fn shard_stats_match_csr() {
        let g = Dataset::Ldbc.generate_with_vertices(256);
        let csr = Csr::from_graph(&g);
        let reference = csr.clone();
        let sg = ShardedGraph::build(csr, 4);
        for s in sg.shards() {
            let edges: u64 = (s.start()..s.end())
                .map(|v| reference.degree(v) as u64)
                .sum();
            let maxd = (s.start()..s.end())
                .map(|v| reference.degree(v))
                .max()
                .unwrap_or(0);
            assert_eq!(s.edges(), edges, "shard {}", s.index());
            assert_eq!(s.max_degree(), maxd, "shard {}", s.index());
            if s.vertices() > 0 {
                assert!((s.avg_degree() - edges as f64 / s.vertices() as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn k_hop_counts_bounded_neighborhoods() {
        // 0 -> 1 -> 2 -> 3 line plus 0 -> 4.
        let edges = [(0u32, 1u32, 1.0f32), (1, 2, 1.0), (2, 3, 1.0), (0, 4, 1.0)];
        let sg = ShardedGraph::build(Csr::from_edges(5, &edges), 2);
        assert_eq!(sg.k_hop(0, 0), 1);
        assert_eq!(sg.k_hop(0, 1), 3); // {0, 1, 4}
        assert_eq!(sg.k_hop(0, 2), 4); // + {2}
        assert_eq!(sg.k_hop(0, 3), 5);
        assert_eq!(sg.k_hop(0, 99), 5);
        assert_eq!(sg.k_hop(3, 5), 1, "sink vertex sees only itself");
        assert_eq!(sg.k_hop(9, 1), 0, "out of range");
        assert_eq!(sg.degree(0), Some((2, 0)));
        assert_eq!(sg.degree(1), Some((1, 1)));
        assert_eq!(sg.degree(9), None);
    }

    #[test]
    fn empty_graph_builds_one_empty_shard() {
        let sg = ShardedGraph::build(Csr::from_edges(0, &[]), 4);
        assert_eq!(sg.shards().len(), 1);
        assert_eq!(sg.shards()[0].vertices(), 0);
        assert_eq!(sg.k_hop(0, 3), 0);
        assert!(sg.shard_of(0).is_none());
    }

    #[test]
    fn more_shards_than_vertices_degrades_gracefully() {
        let sg = sharded(3, 16);
        assert!(sg.shards().len() <= 3);
        let covered: usize = sg.shards().iter().map(|s| s.vertices()).sum();
        assert_eq!(covered, 3);
    }
}
