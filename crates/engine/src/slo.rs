//! Live SLO stats: sliding-window latency estimators over the serving path.
//!
//! End-of-run percentiles tell you how a mix went; an operator (and the
//! ROADMAP's adaptive admission loop) needs the *current* latency picture.
//! The [`SloTracker`] keeps, per priority lane and per workload key, a
//! 10-second [`WindowedHistogram`] plus an [`Ewma`], fed by the executors
//! on every completed query. Three consumers read it:
//!
//! * [`SloTracker::publish`] — `engine.window.*` gauges in the metric
//!   registry, with a **fixed key set** (every lane and every servable
//!   workload key is pre-registered) so the manifest's golden structural
//!   check stays stable whether or not a key saw traffic;
//! * [`Engine::stats_snapshot`](crate::engine::Engine::stats_snapshot) —
//!   a [`StatsSnapshot`] combining queue depth, in-flight cost, and the
//!   per-lane window stats, rendered by
//!   [`StatsSnapshot::to_json_line`] as the structured line
//!   `graphbig-serve --stats-interval` prints;
//! * tests/benches via [`SloTracker::lane_stats`].

use std::collections::BTreeMap;
use std::sync::Arc;

use graphbig_telemetry::metrics::Registry;
use graphbig_telemetry::{span, Ewma, WindowedHistogram};
use graphbig_workloads::{CostClass, Workload};

use crate::engine::Query;

/// Schema identifier of the periodic stats snapshot line.
pub const STATS_SCHEMA: &str = "graphbig.stats/v1";

/// Window geometry: 8 slices of 1250 ms = a 10-second sliding window.
const WINDOW_SLICES: usize = 8;
const SLICE_MS: u64 = 1250;
/// EWMA smoothing: ~5% weight per observation.
const EWMA_ALPHA: f64 = 0.05;

/// Stable lowercase key for a workload in `engine.window.*` metric names.
pub fn workload_key(w: Workload) -> &'static str {
    match w {
        Workload::Bfs => "bfs",
        Workload::Dfs => "dfs",
        Workload::GCons => "gcons",
        Workload::GUp => "gup",
        Workload::TMorph => "tmorph",
        Workload::SPath => "spath",
        Workload::KCore => "kcore",
        Workload::CComp => "ccomp",
        Workload::GColor => "gcolor",
        Workload::Tc => "tc",
        Workload::Gibbs => "gibbs",
        Workload::DCentr => "dcentr",
        Workload::BCentr => "bcentr",
    }
}

/// Stable lowercase key for any query shape.
pub fn query_key(q: &Query) -> &'static str {
    match q {
        Query::Degree { .. } => "degree",
        Query::KHop { .. } => "khop",
        Query::Run { workload, .. } => workload_key(*workload),
    }
}

/// One lane's (or workload key's) estimator pair.
struct LaneWindow {
    hist: WindowedHistogram,
    ewma: Ewma,
}

impl LaneWindow {
    fn new() -> LaneWindow {
        LaneWindow {
            hist: WindowedHistogram::new(WINDOW_SLICES, SLICE_MS),
            ewma: Ewma::new(EWMA_ALPHA),
        }
    }

    fn record(&self, latency_us: u64) {
        self.hist.record(latency_us);
        self.ewma.observe(latency_us);
    }
}

struct Inner {
    lanes: [LaneWindow; 3],
    /// Per-workload-key windows. The key set is fixed at construction —
    /// every query shape the engine can serve — so published metric names
    /// never depend on traffic.
    workloads: BTreeMap<&'static str, (CostClass, LaneWindow)>,
}

/// Sliding-window latency stats for the serving engine, shared between the
/// executors (writers) and stats consumers (readers) via a cheap clone.
#[derive(Clone)]
pub struct SloTracker {
    inner: Arc<Inner>,
}

impl Default for SloTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl SloTracker {
    /// A fresh tracker with empty windows and the fixed key set.
    pub fn new() -> SloTracker {
        let mut workloads: BTreeMap<&'static str, (CostClass, LaneWindow)> = BTreeMap::new();
        workloads.insert("degree", (CostClass::Point, LaneWindow::new()));
        workloads.insert("khop", (CostClass::Point, LaneWindow::new()));
        for w in Workload::ALL {
            if graphbig_workloads::service::servable(w) {
                workloads.insert(workload_key(w), (w.cost_class(), LaneWindow::new()));
            }
        }
        SloTracker {
            inner: Arc::new(Inner {
                lanes: [LaneWindow::new(), LaneWindow::new(), LaneWindow::new()],
                workloads,
            }),
        }
    }

    /// Record one completed query's end-to-end latency (queue + exec) into
    /// its lane window and, when the key is a known query shape, into the
    /// per-workload window.
    pub fn record(&self, lane: usize, key: &str, latency_us: u64) {
        self.inner.lanes[lane].record(latency_us);
        if let Some((_, w)) = self.inner.workloads.get(key) {
            w.record(latency_us);
        }
    }

    /// The current window stats for one lane.
    pub fn lane_stats(&self, lane: usize) -> LaneStats {
        let lw = &self.inner.lanes[lane];
        let snap = lw.hist.snapshot();
        LaneStats {
            class: CostClass::ALL[lane],
            count: snap.count,
            p50_us: snap.quantile(0.5),
            p99_us: snap.quantile(0.99),
            p999_us: snap.quantile(0.999),
            ewma_us: lw.ewma.value(),
        }
    }

    /// Publish the fixed `engine.window.*` gauge set into `reg`: per lane
    /// `count` / `p50_us` / `p99_us` / `p999_us` / `ewma_us`, and per
    /// workload key `p99_us` / `ewma_us`.
    pub fn publish(&self, reg: &Registry) {
        for lane in 0..3 {
            let s = self.lane_stats(lane);
            let base = format!("engine.window.{}", s.class.name());
            reg.set_gauge(&format!("{base}.count"), s.count as f64);
            reg.set_gauge(&format!("{base}.p50_us"), s.p50_us as f64);
            reg.set_gauge(&format!("{base}.p99_us"), s.p99_us as f64);
            reg.set_gauge(&format!("{base}.p999_us"), s.p999_us as f64);
            reg.set_gauge(&format!("{base}.ewma_us"), s.ewma_us);
        }
        for (key, (class, w)) in &self.inner.workloads {
            let base = format!("engine.window.{}.{key}", class.name());
            reg.set_gauge(
                &format!("{base}.p99_us"),
                w.hist.snapshot().quantile(0.99) as f64,
            );
            reg.set_gauge(&format!("{base}.ewma_us"), w.ewma.value());
        }
    }
}

/// One lane's sliding-window latency summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneStats {
    /// The lane's cost class.
    pub class: CostClass,
    /// Observations currently inside the window.
    pub count: u64,
    /// Interpolated window p50 in microseconds.
    pub p50_us: u64,
    /// Interpolated window p99 in microseconds.
    pub p99_us: u64,
    /// Interpolated window p99.9 in microseconds.
    pub p999_us: u64,
    /// EWMA latency in microseconds.
    pub ewma_us: f64,
}

/// A point-in-time serving snapshot: live queue/cost counters plus the
/// per-lane window stats. Rendered by [`StatsSnapshot::to_json_line`] for
/// the `--stats-interval` output.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Milliseconds since the process epoch.
    pub t_ms: u64,
    /// Queries currently queued across all lanes.
    pub queue_depth: u64,
    /// Cost units currently admitted and not yet finished.
    pub in_flight_cost: u64,
    /// Window stats per lane, in lane order (point, traversal, analytics).
    pub lanes: Vec<LaneStats>,
}

impl StatsSnapshot {
    /// One compact JSON line (no trailing newline) under
    /// [`STATS_SCHEMA`].
    pub fn to_json_line(&self) -> String {
        use graphbig_telemetry::json::{Json, ObjBuilder};
        let lanes = self
            .lanes
            .iter()
            .map(|l| {
                ObjBuilder::new()
                    .push("class", Json::Str(l.class.name().into()))
                    .push("count", Json::Num(l.count as f64))
                    .push("p50_us", Json::Num(l.p50_us as f64))
                    .push("p99_us", Json::Num(l.p99_us as f64))
                    .push("p999_us", Json::Num(l.p999_us as f64))
                    .push("ewma_us", Json::Num(l.ewma_us))
                    .build()
            })
            .collect();
        ObjBuilder::new()
            .push("schema", Json::Str(STATS_SCHEMA.into()))
            .push("t_ms", Json::Num(self.t_ms as f64))
            .push("queue_depth", Json::Num(self.queue_depth as f64))
            .push("in_flight_cost", Json::Num(self.in_flight_cost as f64))
            .push("lanes", Json::Arr(lanes))
            .build()
            .to_compact()
    }
}

/// Milliseconds since the process epoch, for snapshot timestamps.
pub(crate) fn now_ms() -> u64 {
    span::now_us() / 1000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_cover_every_query_shape() {
        assert_eq!(query_key(&Query::Degree { vertex: 0 }), "degree");
        assert_eq!(query_key(&Query::KHop { source: 0, hops: 2 }), "khop");
        assert_eq!(
            query_key(&Query::Run {
                workload: Workload::Bfs,
                source: 0
            }),
            "bfs"
        );
        // Every workload has a distinct key.
        let keys: std::collections::BTreeSet<_> =
            Workload::ALL.iter().map(|&w| workload_key(w)).collect();
        assert_eq!(keys.len(), 13);
    }

    #[test]
    fn tracker_records_into_lane_and_workload_windows() {
        let t = SloTracker::new();
        for _ in 0..50 {
            t.record(1, "bfs", 1000);
        }
        let s = t.lane_stats(1);
        assert_eq!(s.class, CostClass::Traversal);
        assert_eq!(s.count, 50);
        assert!(s.p50_us >= 512 && s.p50_us <= 1024, "{}", s.p50_us);
        assert!(s.p999_us >= s.p50_us);
        assert!((s.ewma_us - 1000.0).abs() < 1e-9);
        // Other lanes unaffected.
        assert_eq!(t.lane_stats(0).count, 0);
        assert_eq!(t.lane_stats(0).ewma_us, 0.0);
        // Unknown keys still land in the lane window.
        t.record(0, "not-a-workload", 5);
        assert_eq!(t.lane_stats(0).count, 1);
    }

    #[test]
    fn published_gauge_set_is_fixed_and_traffic_independent() {
        let quiet = Registry::new();
        SloTracker::new().publish(&quiet);
        let busy_tracker = SloTracker::new();
        busy_tracker.record(0, "degree", 10);
        busy_tracker.record(2, "ccomp", 90_000);
        let busy = Registry::new();
        busy_tracker.publish(&busy);
        let quiet_keys: Vec<String> = quiet.snapshot().into_keys().collect();
        let busy_keys: Vec<String> = busy.snapshot().into_keys().collect();
        assert_eq!(
            quiet_keys, busy_keys,
            "metric name set must not depend on traffic"
        );
        assert!(quiet_keys.contains(&"engine.window.point.p50_us".to_string()));
        assert!(quiet_keys.contains(&"engine.window.traversal.ewma_us".to_string()));
        assert!(quiet_keys.contains(&"engine.window.analytics.ccomp.p99_us".to_string()));
        assert!(quiet_keys.contains(&"engine.window.point.degree.ewma_us".to_string()));
    }

    #[test]
    fn stats_line_is_compact_json_with_the_schema() {
        let t = SloTracker::new();
        t.record(0, "degree", 42);
        let snap = StatsSnapshot {
            t_ms: now_ms(),
            queue_depth: 3,
            in_flight_cost: 17,
            lanes: (0..3).map(|l| t.lane_stats(l)).collect(),
        };
        let line = snap.to_json_line();
        assert!(!line.contains('\n'));
        let doc = graphbig_telemetry::json::parse(&line).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(STATS_SCHEMA));
        assert_eq!(doc.get("queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("in_flight_cost").unwrap().as_u64(), Some(17));
        let lanes = doc.get("lanes").unwrap().as_arr().unwrap();
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes[0].get("class").unwrap().as_str(), Some("point"));
        assert_eq!(lanes[0].get("count").unwrap().as_u64(), Some(1));
        for field in ["p50_us", "p99_us", "p999_us", "ewma_us"] {
            assert!(lanes[0].get(field).is_some(), "{field}");
        }
    }
}
