//! Live SLO stats: sliding-window latency estimators over the serving path.
//!
//! End-of-run percentiles tell you how a mix went; an operator (and the
//! ROADMAP's adaptive admission loop) needs the *current* latency picture.
//! The [`SloTracker`] keeps, per priority lane and per workload key, a
//! 10-second [`WindowedHistogram`] plus an [`Ewma`], fed by the executors
//! on every completed query. Three consumers read it:
//!
//! * [`SloTracker::publish`] — `engine.window.*` gauges in the metric
//!   registry, with a **fixed key set** (every lane and every servable
//!   workload key is pre-registered) so the manifest's golden structural
//!   check stays stable whether or not a key saw traffic;
//! * [`Engine::stats_snapshot`](crate::engine::Engine::stats_snapshot) —
//!   a [`StatsSnapshot`] combining queue depth, in-flight cost, and the
//!   per-lane window stats, rendered by
//!   [`StatsSnapshot::to_json_line`] as the structured line
//!   `graphbig-serve --stats-interval` prints;
//! * tests/benches via [`SloTracker::lane_stats`];
//! * the **feedback cost model** — [`SloTracker::observe_cost`] folds each
//!   completed query's `exec_us / static_cost` ratio into a global
//!   calibration EWMA and a per-key EWMA, and
//!   [`SloTracker::correction`] turns the pair into a bounded factor the
//!   engine multiplies into the static `cost_estimate` at admission. A key
//!   that consistently runs hotter than the global calibration predicts is
//!   charged more budget; one that runs cooler (e.g. because the result
//!   cache absorbs it) is charged less, down to the clamp floor.
//!
//! This module also defines the [`SloSpec`] / [`ClassSlo`] JSON types: the
//! per-class p99/p999 latency targets a mix file declares, surfaced in
//! stats lines and enforced end-of-run by `graphbig-report --check`.

use std::collections::BTreeMap;
use std::sync::Arc;

use graphbig_json::json_struct;
use graphbig_telemetry::metrics::Registry;
use graphbig_telemetry::{span, Ewma, WindowedHistogram};
use graphbig_workloads::{CostClass, Workload};

use crate::engine::Query;

/// Schema identifier of the periodic stats snapshot line.
pub const STATS_SCHEMA: &str = "graphbig.stats/v1";

/// Window geometry: 8 slices of 1250 ms = a 10-second sliding window.
const WINDOW_SLICES: usize = 8;
const SLICE_MS: u64 = 1250;
/// EWMA smoothing: ~5% weight per observation.
const EWMA_ALPHA: f64 = 0.05;
/// Feedback-model smoothing: faster than the latency EWMAs so admission
/// adapts within a few dozen requests of a regime change.
const FEEDBACK_ALPHA: f64 = 0.1;
/// Lower clamp on the cost-correction factor: a key never gets cheaper
/// than a quarter of its static estimate.
pub const CORRECTION_MIN: f64 = 0.25;
/// Upper clamp: a key never gets more than 4x its static estimate.
pub const CORRECTION_MAX: f64 = 4.0;
/// Observations (global and per-key) required before the correction
/// leaves its neutral 1.0 — cold estimators make bad calibrators.
pub const FEEDBACK_WARMUP: u64 = 8;

/// Stable lowercase key for a workload in `engine.window.*` metric names.
pub fn workload_key(w: Workload) -> &'static str {
    match w {
        Workload::Bfs => "bfs",
        Workload::Dfs => "dfs",
        Workload::GCons => "gcons",
        Workload::GUp => "gup",
        Workload::TMorph => "tmorph",
        Workload::SPath => "spath",
        Workload::KCore => "kcore",
        Workload::CComp => "ccomp",
        Workload::GColor => "gcolor",
        Workload::Tc => "tc",
        Workload::Gibbs => "gibbs",
        Workload::DCentr => "dcentr",
        Workload::BCentr => "bcentr",
    }
}

/// Stable lowercase key for any query shape.
pub fn query_key(q: &Query) -> &'static str {
    match q {
        Query::Degree { .. } => "degree",
        Query::KHop { .. } => "khop",
        Query::Run { workload, .. } => workload_key(*workload),
    }
}

/// One lane's (or workload key's) estimator pair.
struct LaneWindow {
    hist: WindowedHistogram,
    ewma: Ewma,
}

impl LaneWindow {
    fn new() -> LaneWindow {
        LaneWindow {
            hist: WindowedHistogram::new(WINDOW_SLICES, SLICE_MS),
            ewma: Ewma::new(EWMA_ALPHA),
        }
    }

    fn record(&self, latency_us: u64) {
        self.hist.record(latency_us);
        self.ewma.observe(latency_us);
    }
}

struct Inner {
    lanes: [LaneWindow; 4],
    /// Per-workload-key windows. The key set is fixed at construction —
    /// every query shape the engine can serve — so published metric names
    /// never depend on traffic.
    workloads: BTreeMap<&'static str, (CostClass, LaneWindow)>,
    /// Global calibration: EWMA of `exec_us / static_cost` across every
    /// completed query — "how many microseconds one cost unit buys on this
    /// graph/hardware".
    unit: Ewma,
    /// Per-key `exec_us / static_cost` EWMAs (same fixed key set as
    /// `workloads`). The ratio of a key's EWMA to the global one is its
    /// cost-correction factor.
    costs: BTreeMap<&'static str, Ewma>,
}

/// Sliding-window latency stats for the serving engine, shared between the
/// executors (writers) and stats consumers (readers) via a cheap clone.
#[derive(Clone)]
pub struct SloTracker {
    inner: Arc<Inner>,
}

impl Default for SloTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl SloTracker {
    /// A fresh tracker with empty windows and the fixed key set.
    pub fn new() -> SloTracker {
        let mut workloads: BTreeMap<&'static str, (CostClass, LaneWindow)> = BTreeMap::new();
        workloads.insert("degree", (CostClass::Point, LaneWindow::new()));
        workloads.insert("khop", (CostClass::Point, LaneWindow::new()));
        for w in Workload::ALL {
            if graphbig_workloads::service::servable(w) {
                workloads.insert(workload_key(w), (w.cost_class(), LaneWindow::new()));
            }
        }
        let costs = workloads
            .keys()
            .map(|&k| (k, Ewma::new(FEEDBACK_ALPHA)))
            .collect();
        SloTracker {
            inner: Arc::new(Inner {
                lanes: [
                    LaneWindow::new(),
                    LaneWindow::new(),
                    LaneWindow::new(),
                    LaneWindow::new(),
                ],
                workloads,
                unit: Ewma::new(FEEDBACK_ALPHA),
                costs,
            }),
        }
    }

    /// Record one completed query's end-to-end latency (queue + exec) into
    /// its lane window and, when the key is a known query shape, into the
    /// per-workload window.
    pub fn record(&self, lane: usize, key: &str, latency_us: u64) {
        self.inner.lanes[lane].record(latency_us);
        if let Some((_, w)) = self.inner.workloads.get(key) {
            w.record(latency_us);
        }
    }

    /// Feed one completed query into the feedback cost model: fold its
    /// `exec_us / static_cost` ratio into the global calibration EWMA and
    /// the key's own EWMA. Zero static costs are skipped (no ratio exists);
    /// unknown keys calibrate the global unit only.
    pub fn observe_cost(&self, key: &str, static_cost: u64, exec_us: u64) {
        if static_cost == 0 {
            return;
        }
        let ratio = exec_us as f64 / static_cost as f64;
        self.inner.unit.observe_f64(ratio);
        if let Some(e) = self.inner.costs.get(key) {
            e.observe_f64(ratio);
        }
    }

    /// The bounded cost-correction factor for `key`: the ratio of the
    /// key's observed µs-per-cost-unit to the global calibration, clamped
    /// to [[`CORRECTION_MIN`], [`CORRECTION_MAX`]]. Neutral (1.0) until
    /// both estimators have [`FEEDBACK_WARMUP`] observations, for unknown
    /// keys, and whenever the calibration is degenerate.
    pub fn correction(&self, key: &str) -> f64 {
        let unit = &self.inner.unit;
        let Some(observed) = self.inner.costs.get(key) else {
            return 1.0;
        };
        if unit.count() < FEEDBACK_WARMUP || observed.count() < FEEDBACK_WARMUP {
            return 1.0;
        }
        let (u, o) = (unit.value(), observed.value());
        if !u.is_finite() || u <= 0.0 || !o.is_finite() {
            return 1.0;
        }
        (o / u).clamp(CORRECTION_MIN, CORRECTION_MAX)
    }

    /// The budget cost to charge for a query of `static_cost` under `key`:
    /// the static estimate scaled by [`SloTracker::correction`], never
    /// below 1.
    pub fn adaptive_cost(&self, key: &str, static_cost: u64) -> u64 {
        ((static_cost as f64 * self.correction(key)).round() as u64).max(1)
    }

    /// The current window stats for one lane.
    pub fn lane_stats(&self, lane: usize) -> LaneStats {
        let lw = &self.inner.lanes[lane];
        let snap = lw.hist.snapshot();
        LaneStats {
            class: CostClass::ALL[lane],
            count: snap.count,
            p50_us: snap.quantile(0.5),
            p99_us: snap.quantile(0.99),
            p999_us: snap.quantile(0.999),
            ewma_us: lw.ewma.value(),
            p99_target_us: 0,
            p999_target_us: 0,
        }
    }

    /// Publish the fixed `engine.window.*` gauge set into `reg`: per lane
    /// `count` / `p50_us` / `p99_us` / `p999_us` / `ewma_us`, and per
    /// workload key `p99_us` / `ewma_us`.
    pub fn publish(&self, reg: &Registry) {
        for lane in 0..4 {
            let s = self.lane_stats(lane);
            let base = format!("engine.window.{}", s.class.name());
            reg.set_gauge(&format!("{base}.count"), s.count as f64);
            reg.set_gauge(&format!("{base}.p50_us"), s.p50_us as f64);
            reg.set_gauge(&format!("{base}.p99_us"), s.p99_us as f64);
            reg.set_gauge(&format!("{base}.p999_us"), s.p999_us as f64);
            reg.set_gauge(&format!("{base}.ewma_us"), s.ewma_us);
        }
        for (key, (class, w)) in &self.inner.workloads {
            let base = format!("engine.window.{}.{key}", class.name());
            reg.set_gauge(
                &format!("{base}.p99_us"),
                w.hist.snapshot().quantile(0.99) as f64,
            );
            reg.set_gauge(&format!("{base}.ewma_us"), w.ewma.value());
            reg.set_gauge(&format!("{base}.correction"), self.correction(key));
        }
        reg.set_gauge("engine.feedback.unit_ratio", self.inner.unit.value());
    }
}

/// One lane's sliding-window latency summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneStats {
    /// The lane's cost class.
    pub class: CostClass,
    /// Observations currently inside the window.
    pub count: u64,
    /// Interpolated window p50 in microseconds.
    pub p50_us: u64,
    /// Interpolated window p99 in microseconds.
    pub p99_us: u64,
    /// Interpolated window p99.9 in microseconds.
    pub p999_us: u64,
    /// EWMA latency in microseconds.
    pub ewma_us: f64,
    /// Declared p99 target in microseconds (0 = no target declared).
    pub p99_target_us: u64,
    /// Declared p99.9 target in microseconds (0 = no target declared).
    pub p999_target_us: u64,
}

/// Per-class latency targets declared in a mix file's `slo` member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassSlo {
    /// p99 end-to-end latency target in microseconds (0 = unchecked).
    pub p99_us: u64,
    /// p99.9 end-to-end latency target in microseconds (0 = unchecked).
    pub p999_us: u64,
}
json_struct!(ClassSlo { p99_us, p999_us });

/// The full SLO declaration: optional targets per cost class. Absent
/// classes are unchecked, so old mix files (no `slo` member at all) keep
/// parsing and checking nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SloSpec {
    /// Targets for the Point lane.
    pub point: Option<ClassSlo>,
    /// Targets for the Traversal lane.
    pub traversal: Option<ClassSlo>,
    /// Targets for the Analytics lane.
    pub analytics: Option<ClassSlo>,
    /// Targets for the Write lane (mutation batches).
    pub write: Option<ClassSlo>,
}

impl graphbig_json::ToJson for SloSpec {
    fn to_json(&self) -> graphbig_json::Json {
        graphbig_json::Json::Obj(vec![
            ("point".to_string(), self.point.to_json()),
            ("traversal".to_string(), self.traversal.to_json()),
            ("analytics".to_string(), self.analytics.to_json()),
            ("write".to_string(), self.write.to_json()),
        ])
    }
}

impl graphbig_json::FromJson for SloSpec {
    fn from_json(v: &graphbig_json::Json) -> Result<Self, graphbig_json::DecodeError> {
        // Each class is optional *and* omissible: `field_or_default` keeps
        // hand-written specs that mention only one class valid.
        Ok(SloSpec {
            point: graphbig_json::codec::field_or_default(v, "point")?,
            traversal: graphbig_json::codec::field_or_default(v, "traversal")?,
            analytics: graphbig_json::codec::field_or_default(v, "analytics")?,
            write: graphbig_json::codec::field_or_default(v, "write")?,
        })
    }
}

impl SloSpec {
    /// The targets for a lane index (0 point, 1 traversal, 2 analytics,
    /// 3 write).
    pub fn for_lane(&self, lane: usize) -> Option<ClassSlo> {
        match lane {
            0 => self.point,
            1 => self.traversal,
            2 => self.analytics,
            _ => self.write,
        }
    }

    /// True when at least one class declares a target.
    pub fn any(&self) -> bool {
        self.point.is_some()
            || self.traversal.is_some()
            || self.analytics.is_some()
            || self.write.is_some()
    }
}

/// A point-in-time serving snapshot: live queue/cost counters plus the
/// per-lane window stats. Rendered by [`StatsSnapshot::to_json_line`] for
/// the `--stats-interval` output.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Milliseconds since the process epoch.
    pub t_ms: u64,
    /// Queries currently queued across all lanes.
    pub queue_depth: u64,
    /// Cost units currently admitted and not yet finished.
    pub in_flight_cost: u64,
    /// Window stats per lane, in lane order (point, traversal, analytics,
    /// write).
    pub lanes: Vec<LaneStats>,
}

impl StatsSnapshot {
    /// Stamp each lane's declared SLO targets onto the snapshot so the
    /// stats line shows live latency *against its target* (0 stays "no
    /// target" for absent classes or fields).
    pub fn apply_slo(&mut self, spec: &SloSpec) {
        for (lane, stats) in self.lanes.iter_mut().enumerate() {
            if let Some(slo) = spec.for_lane(lane) {
                stats.p99_target_us = slo.p99_us;
                stats.p999_target_us = slo.p999_us;
            }
        }
    }

    /// One compact JSON line (no trailing newline) under
    /// [`STATS_SCHEMA`].
    pub fn to_json_line(&self) -> String {
        use graphbig_telemetry::json::{Json, ObjBuilder};
        let lanes = self
            .lanes
            .iter()
            .map(|l| {
                ObjBuilder::new()
                    .push("class", Json::Str(l.class.name().into()))
                    .push("count", Json::Num(l.count as f64))
                    .push("p50_us", Json::Num(l.p50_us as f64))
                    .push("p99_us", Json::Num(l.p99_us as f64))
                    .push("p999_us", Json::Num(l.p999_us as f64))
                    .push("ewma_us", Json::Num(l.ewma_us))
                    .push("p99_target_us", Json::Num(l.p99_target_us as f64))
                    .push("p999_target_us", Json::Num(l.p999_target_us as f64))
                    .build()
            })
            .collect();
        ObjBuilder::new()
            .push("schema", Json::Str(STATS_SCHEMA.into()))
            .push("t_ms", Json::Num(self.t_ms as f64))
            .push("queue_depth", Json::Num(self.queue_depth as f64))
            .push("in_flight_cost", Json::Num(self.in_flight_cost as f64))
            .push("lanes", Json::Arr(lanes))
            .build()
            .to_compact()
    }
}

/// Milliseconds since the process epoch, for snapshot timestamps.
pub(crate) fn now_ms() -> u64 {
    span::now_us() / 1000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_cover_every_query_shape() {
        assert_eq!(query_key(&Query::Degree { vertex: 0 }), "degree");
        assert_eq!(query_key(&Query::KHop { source: 0, hops: 2 }), "khop");
        assert_eq!(
            query_key(&Query::Run {
                workload: Workload::Bfs,
                source: 0
            }),
            "bfs"
        );
        // Every workload has a distinct key.
        let keys: std::collections::BTreeSet<_> =
            Workload::ALL.iter().map(|&w| workload_key(w)).collect();
        assert_eq!(keys.len(), 13);
    }

    #[test]
    fn tracker_records_into_lane_and_workload_windows() {
        let t = SloTracker::new();
        for _ in 0..50 {
            t.record(1, "bfs", 1000);
        }
        let s = t.lane_stats(1);
        assert_eq!(s.class, CostClass::Traversal);
        assert_eq!(s.count, 50);
        assert!(s.p50_us >= 512 && s.p50_us <= 1024, "{}", s.p50_us);
        assert!(s.p999_us >= s.p50_us);
        assert!((s.ewma_us - 1000.0).abs() < 1e-9);
        // Other lanes unaffected.
        assert_eq!(t.lane_stats(0).count, 0);
        assert_eq!(t.lane_stats(0).ewma_us, 0.0);
        // Unknown keys still land in the lane window.
        t.record(0, "not-a-workload", 5);
        assert_eq!(t.lane_stats(0).count, 1);
    }

    #[test]
    fn published_gauge_set_is_fixed_and_traffic_independent() {
        let quiet = Registry::new();
        SloTracker::new().publish(&quiet);
        let busy_tracker = SloTracker::new();
        busy_tracker.record(0, "degree", 10);
        busy_tracker.record(2, "ccomp", 90_000);
        let busy = Registry::new();
        busy_tracker.publish(&busy);
        let quiet_keys: Vec<String> = quiet.snapshot().into_keys().collect();
        let busy_keys: Vec<String> = busy.snapshot().into_keys().collect();
        assert_eq!(
            quiet_keys, busy_keys,
            "metric name set must not depend on traffic"
        );
        assert!(quiet_keys.contains(&"engine.window.point.p50_us".to_string()));
        assert!(quiet_keys.contains(&"engine.window.traversal.ewma_us".to_string()));
        assert!(quiet_keys.contains(&"engine.window.analytics.ccomp.p99_us".to_string()));
        assert!(quiet_keys.contains(&"engine.window.point.degree.ewma_us".to_string()));
        assert!(quiet_keys.contains(&"engine.window.write.p99_us".to_string()));
    }

    #[test]
    fn stats_line_is_compact_json_with_the_schema() {
        let t = SloTracker::new();
        t.record(0, "degree", 42);
        let snap = StatsSnapshot {
            t_ms: now_ms(),
            queue_depth: 3,
            in_flight_cost: 17,
            lanes: (0..4).map(|l| t.lane_stats(l)).collect(),
        };
        let line = snap.to_json_line();
        assert!(!line.contains('\n'));
        let doc = graphbig_telemetry::json::parse(&line).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(STATS_SCHEMA));
        assert_eq!(doc.get("queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("in_flight_cost").unwrap().as_u64(), Some(17));
        let lanes = doc.get("lanes").unwrap().as_arr().unwrap();
        assert_eq!(lanes.len(), 4);
        assert_eq!(lanes[3].get("class").unwrap().as_str(), Some("write"));
        assert_eq!(lanes[0].get("class").unwrap().as_str(), Some("point"));
        assert_eq!(lanes[0].get("count").unwrap().as_u64(), Some(1));
        for field in [
            "p50_us",
            "p99_us",
            "p999_us",
            "ewma_us",
            "p99_target_us",
            "p999_target_us",
        ] {
            assert!(lanes[0].get(field).is_some(), "{field}");
        }
    }

    #[test]
    fn correction_is_neutral_until_warmed_up_and_then_clamped() {
        let t = SloTracker::new();
        assert_eq!(t.correction("degree"), 1.0, "cold model is neutral");
        assert_eq!(t.adaptive_cost("degree", 100), 100);
        // Calibrate: khop runs at exactly 1 µs per cost unit.
        for _ in 0..FEEDBACK_WARMUP {
            t.observe_cost("khop", 100, 100);
        }
        assert_eq!(
            t.correction("degree"),
            1.0,
            "a key with no observations of its own stays neutral"
        );
        // degree consistently runs 2x hotter than its static estimate.
        for _ in 0..FEEDBACK_WARMUP {
            t.observe_cost("degree", 100, 200);
        }
        let c = t.correction("degree");
        assert!(c > 1.0 && c <= CORRECTION_MAX, "hot key costs more: {c}");
        assert!(t.adaptive_cost("degree", 100) > 100);
        // An absurdly hot key pins at the upper clamp, never beyond. The
        // unit calibration sees every sample too, so keep baseline
        // ratio-1 traffic flowing — as real mixed traffic would — or the
        // "unit" would chase the outlier and neutralize the correction.
        for _ in 0..8 {
            t.observe_cost("degree", 1, 1_000_000);
            for _ in 0..99 {
                t.observe_cost("khop", 100, 100);
            }
        }
        assert_eq!(t.correction("degree"), CORRECTION_MAX);
        assert_eq!(t.adaptive_cost("degree", 100), 400);
        // An absurdly cool key pins at the floor, and costs stay >= 1.
        for _ in 0..8 {
            t.observe_cost("bfs", 1_000_000, 1);
            for _ in 0..99 {
                t.observe_cost("khop", 100, 100);
            }
        }
        assert_eq!(t.correction("bfs"), CORRECTION_MIN);
        assert_eq!(t.adaptive_cost("bfs", 100), 25);
        assert_eq!(t.adaptive_cost("bfs", 1), 1, "adaptive cost floors at 1");
        // Unknown keys and zero static costs are inert.
        assert_eq!(t.correction("not-a-key"), 1.0);
        t.observe_cost("degree", 0, 5_000);
    }

    #[test]
    fn slo_spec_parses_with_missing_and_null_classes() {
        let spec: SloSpec = graphbig_json::from_str(
            r#"{"point": {"p99_us": 500, "p999_us": 2000}, "traversal": null}"#,
        )
        .unwrap();
        assert_eq!(
            spec.point,
            Some(ClassSlo {
                p99_us: 500,
                p999_us: 2000
            })
        );
        assert_eq!(spec.traversal, None);
        assert_eq!(spec.analytics, None, "omitted class defaults to None");
        assert!(spec.any());
        assert!(!SloSpec::default().any());
        // Round trip.
        let back: SloSpec = graphbig_json::from_str(&graphbig_json::to_pretty(&spec)).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn stats_snapshot_carries_slo_targets() {
        let t = SloTracker::new();
        let mut snap = StatsSnapshot {
            t_ms: 0,
            queue_depth: 0,
            in_flight_cost: 0,
            lanes: (0..4).map(|l| t.lane_stats(l)).collect(),
        };
        snap.apply_slo(&SloSpec {
            point: Some(ClassSlo {
                p99_us: 700,
                p999_us: 3000,
            }),
            traversal: None,
            analytics: None,
            write: Some(ClassSlo {
                p99_us: 900,
                p999_us: 0,
            }),
        });
        let doc = graphbig_telemetry::json::parse(&snap.to_json_line()).unwrap();
        let lanes = doc.get("lanes").unwrap().as_arr().unwrap();
        assert_eq!(lanes[0].get("p99_target_us").unwrap().as_u64(), Some(700));
        assert_eq!(lanes[0].get("p999_target_us").unwrap().as_u64(), Some(3000));
        assert_eq!(
            lanes[1].get("p99_target_us").unwrap().as_u64(),
            Some(0),
            "undeclared class renders target 0"
        );
        assert_eq!(lanes[3].get("p99_target_us").unwrap().as_u64(), Some(900));
    }
}
