//! Post-chaos invariant checking.
//!
//! After a chaotic mix ([`run_chaos_mix`](crate::traffic::run_chaos_mix))
//! the engine must look *exactly* as if nothing unusual had happened:
//! every ticket resolved exactly once, every completed result bit-identical
//! to the sequential oracle, no executor thread lost, admission counters
//! drained to zero, and the `engine.*` metrics in perfect agreement with
//! the driver's outcome tally. [`check_chaos_invariants`] verifies all of
//! that and [`InvariantReport::write_to_manifest`] publishes the verdict as
//! the machine-checkable `chaos.invariants` section a run manifest carries
//! (and `graphbig-report --check` gates on).
//!
//! The metric-consistency checks assume the registry was fresh for this
//! engine + mix pair (a per-test `Registry`, or the process-global registry
//! in a binary that runs one mix) — cumulative counters from an earlier mix
//! on the same registry would legitimately disagree with one report.

use graphbig_telemetry::metrics::{MetricValue, Registry};
use graphbig_telemetry::{MetricSink, RunManifest};

use crate::engine::Engine;
use crate::traffic::{verify_against_oracle, TrafficReport};

/// One named invariant: held or violated (with detail).
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantCheck {
    /// Short stable name (becomes `chaos.invariants.<name>` in manifests).
    pub name: &'static str,
    /// True when the invariant held.
    pub held: bool,
    /// Human-readable evidence (counts compared, first mismatch, ...).
    pub detail: String,
}

/// The verdict of one post-chaos sweep over all invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantReport {
    /// Every check performed, in a fixed order.
    pub checks: Vec<InvariantCheck>,
}

impl InvariantReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|c| c.held)
    }

    /// Number of violated invariants.
    pub fn violations(&self) -> u64 {
        self.checks.iter().filter(|c| !c.held).count() as u64
    }

    /// Publish the `chaos.invariants` section: a `checked`/`violations`
    /// counter pair, one 0/1 gauge per named check, and a note per
    /// violation. The counter `chaos.invariants.violations` is what
    /// `graphbig-report --check` gates on.
    pub fn write_to_manifest(&self, manifest: &mut RunManifest) {
        manifest.counter("chaos.invariants.checked", self.checks.len() as u64);
        manifest.counter("chaos.invariants.violations", self.violations());
        for check in &self.checks {
            manifest.gauge(
                &format!("chaos.invariants.{}", check.name),
                if check.held { 1.0 } else { 0.0 },
            );
            if !check.held {
                manifest.notes.push(format!(
                    "chaos invariant violated: {}: {}",
                    check.name, check.detail
                ));
            }
        }
    }

    /// One line per check, for terminal output.
    pub fn render(&self) -> String {
        self.checks
            .iter()
            .map(|c| {
                format!(
                    "  {} {} — {}",
                    if c.held { "ok " } else { "FAIL" },
                    c.name,
                    c.detail
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn counter(snap: &std::collections::BTreeMap<String, MetricValue>, name: &str) -> u64 {
    match snap.get(name) {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    }
}

/// Run the full invariant sweep for one finished mix.
///
/// `oracle` is the sequential digest list from
/// [`sequential_digests`](crate::traffic::sequential_digests) (pass `None`
/// to skip the digest comparison, e.g. when the caller already gated on
/// it). `reg` must be the registry the engine's metrics live in.
pub fn check_chaos_invariants(
    engine: &Engine,
    report: &TrafficReport,
    oracle: Option<&[Option<u64>]>,
    reg: &Registry,
) -> InvariantReport {
    let snap = reg.snapshot();
    let mut checks = Vec::new();

    // 1. Every ticket resolved exactly once: each admission produced one
    //    response and the one-shot CAS never saw a second resolver.
    let submitted = counter(&snap, "engine.submitted");
    let resolved = counter(&snap, "engine.resolved");
    let double = counter(&snap, "engine.double_resolve");
    checks.push(InvariantCheck {
        name: "resolved_once",
        held: submitted == resolved && double == 0,
        detail: format!("submitted {submitted}, resolved {resolved}, double-resolved {double}"),
    });

    // 2. Completed results digest-equal to the sequential oracle.
    if let Some(oracle) = oracle {
        let (held, detail) = match verify_against_oracle(report, oracle) {
            Ok(checked) => (true, format!("{checked} completed digests verified")),
            Err(e) => (false, e),
        };
        checks.push(InvariantCheck {
            name: "oracle_digests",
            held,
            detail,
        });
    }

    // 3. No executor thread lost to a panic.
    let alive = engine.alive_executors();
    let configured = engine.executor_count();
    checks.push(InvariantCheck {
        name: "executors_alive",
        held: alive == configured,
        detail: format!("{alive}/{configured} executor threads alive"),
    });

    // 4. Admission counters balance: drained to zero, and every request is
    //    accounted for exactly once in the outcome tally.
    let queued = engine.admission().queued();
    let in_flight = engine.admission().in_flight_cost();
    let outcomes: u64 = report
        .classes
        .iter()
        .map(|c| c.completed + c.deadline_missed + c.cancelled + c.failed)
        .sum::<u64>()
        + report.unsupported;
    let finals = report.admitted + report.rejected_queue_full + report.rejected_cost_budget;
    let balanced = queued == 0
        && in_flight == 0
        && outcomes == report.admitted
        && finals == report.total_requests as u64;
    checks.push(InvariantCheck {
        name: "admission_balanced",
        held: balanced,
        detail: format!(
            "queued {queued}, in-flight cost {in_flight}; outcomes {outcomes} vs admitted {}; \
             finals {finals} vs requests {}",
            report.admitted, report.total_requests
        ),
    });

    // 5. engine.* metrics consistent with the outcome tally.
    let m_completed: u64 = ["point", "traversal", "analytics", "write"]
        .iter()
        .map(|c| counter(&snap, &format!("engine.completed.{c}")))
        .sum();
    let r_completed: u64 = report.classes.iter().map(|c| c.completed).sum();
    let m_rejected = counter(&snap, "engine.rejected.queue_full")
        + counter(&snap, "engine.rejected.cost_budget");
    let r_rejected = report.rejected_queue_full + report.rejected_cost_budget + report.retries;
    let r_missed: u64 = report.classes.iter().map(|c| c.deadline_missed).sum();
    let r_cancelled: u64 = report.classes.iter().map(|c| c.cancelled).sum();
    let r_failed: u64 = report.classes.iter().map(|c| c.failed).sum();
    let pairs = [
        ("completed", m_completed, r_completed),
        ("rejected(+retries)", m_rejected, r_rejected),
        (
            "deadline_missed",
            counter(&snap, "engine.deadline_missed"),
            r_missed,
        ),
        ("cancelled", counter(&snap, "engine.cancelled"), r_cancelled),
        ("failed", counter(&snap, "engine.failed"), r_failed),
        (
            "unsupported",
            counter(&snap, "engine.unsupported"),
            report.unsupported,
        ),
        ("submitted", submitted, report.admitted),
    ];
    let mismatches: Vec<String> = pairs
        .iter()
        .filter(|(_, m, r)| m != r)
        .map(|(name, m, r)| format!("{name}: metric {m} != report {r}"))
        .collect();
    checks.push(InvariantCheck {
        name: "metrics_consistent",
        held: mismatches.is_empty(),
        detail: if mismatches.is_empty() {
            format!("completed {m_completed}, rejected+retries {m_rejected}, all tallies agree")
        } else {
            mismatches.join("; ")
        },
    });

    // 6. Lane aging bounds starvation: no lane's consecutive-skip counter
    //    ever passed `aging_limit + 1` (the +1 covers one extra skip while
    //    another already-aged lane is served first). With aging disabled
    //    (limit 0) strict priority makes no bound claim.
    let limit = engine.lane_aging_limit();
    let max_skip = engine.max_lane_skip();
    checks.push(InvariantCheck {
        name: "lane_starvation",
        held: limit == 0 || max_skip <= limit + 1,
        detail: format!("max lane skip {max_skip} vs aging limit {limit}"),
    });

    // 7. Cache accounting: every hit is a completed query, so hits can
    //    never exceed completions.
    let hits = counter(&snap, "engine.cache.hit");
    checks.push(InvariantCheck {
        name: "cache_consistent",
        held: hits <= m_completed,
        detail: format!("{hits} cache hits vs {m_completed} completions"),
    });

    // 8. Write-path accounting: the delta sequence number advances exactly
    //    once per applied batch, so the mutation counter and the buffer's
    //    sequence must agree (both survive compaction untouched).
    let mutations = counter(&snap, "engine.mutations");
    let seq = engine.delta_seq();
    checks.push(InvariantCheck {
        name: "mutations_sequenced",
        held: mutations == seq,
        detail: format!("{mutations} mutation batches vs delta-seq {seq}"),
    });

    // 9. Compaction lifecycle: every started fold finished (published or
    //    yielded) — a mismatch means the compactor died mid-fold.
    let c_started = counter(&snap, "engine.compact.started");
    let c_completed = counter(&snap, "engine.compact.completed");
    checks.push(InvariantCheck {
        name: "compaction_balanced",
        held: c_started == c_completed,
        detail: format!("{c_started} compactions started, {c_completed} completed"),
    });

    let report = InvariantReport { checks };
    if !report.ok() {
        // A violated invariant is exactly the moment the last-N-events
        // story matters: dump the always-on flight recorder so the failure
        // ships with every request's per-stage lifecycle attached.
        match graphbig_telemetry::recorder::auto_dump("invariant-violation") {
            Some(path) => eprintln!("invariant violation: flight recorder dumped to {path}"),
            None => eprintln!("invariant violation: flight recorder dump failed"),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::traffic::{generate_requests, run_mix, sequential_digests, MixSpec};
    use graphbig_datagen::Dataset;
    use graphbig_framework::csr::Csr;

    #[test]
    fn clean_mix_passes_every_invariant() {
        let reg = Registry::new();
        let engine = Engine::with_registry(
            EngineConfig {
                pool_threads: 2,
                ..EngineConfig::default()
            },
            Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(300)),
            &reg,
        );
        let spec = MixSpec {
            requests: 40,
            ..MixSpec::default()
        };
        let report = run_mix(&engine, &spec);
        let snapshot = engine.store().snapshot();
        let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
        let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
        let inv = check_chaos_invariants(&engine, &report, Some(&oracle), &reg);
        assert!(inv.ok(), "{}", inv.render());
        assert_eq!(inv.violations(), 0);
        assert_eq!(inv.checks.len(), 9);

        let mut manifest = RunManifest::new("test");
        inv.write_to_manifest(&mut manifest);
        assert_eq!(
            manifest.metrics["chaos.invariants.checked"],
            MetricValue::Counter(9)
        );
        assert_eq!(
            manifest.metrics["chaos.invariants.violations"],
            MetricValue::Counter(0)
        );
        assert_eq!(
            manifest.metrics["chaos.invariants.resolved_once"],
            MetricValue::Gauge(1.0)
        );
        assert!(manifest.notes.is_empty(), "no violations, no notes");
    }

    #[test]
    fn violations_are_reported_with_notes() {
        let report = InvariantReport {
            checks: vec![
                InvariantCheck {
                    name: "resolved_once",
                    held: true,
                    detail: "fine".into(),
                },
                InvariantCheck {
                    name: "executors_alive",
                    held: false,
                    detail: "1/2 executor threads alive".into(),
                },
            ],
        };
        assert!(!report.ok());
        assert_eq!(report.violations(), 1);
        let mut manifest = RunManifest::new("test");
        report.write_to_manifest(&mut manifest);
        assert_eq!(
            manifest.metrics["chaos.invariants.violations"],
            MetricValue::Counter(1)
        );
        assert_eq!(
            manifest.metrics["chaos.invariants.executors_alive"],
            MetricValue::Gauge(0.0)
        );
        assert_eq!(manifest.notes.len(), 1);
        assert!(manifest.notes[0].contains("executors_alive"));
        assert!(report.render().contains("FAIL executors_alive"));
    }
}
