//! Adaptive-serving guarantees, property-tested:
//!
//! * the feedback correction factor never leaves its clamp, whatever the
//!   observation stream looks like;
//! * adaptive cost charging never lets a *busy* admission controller
//!   exceed its budget (the idle escape hatch is the only exception, and
//!   it admits exactly one query);
//! * a full mix with the result cache enabled — hot sources, adaptive
//!   costs, the lot — stays digest-identical to the sequential oracle,
//!   and a publish makes the cache agree with the *new* graph.

use graphbig_datagen::prop::{self, Config};
use graphbig_datagen::Dataset;
use graphbig_engine::slo::{SloTracker, CORRECTION_MAX, CORRECTION_MIN};
use graphbig_engine::traffic::{
    generate_requests, run_mix, sequential_digests, verify_against_oracle, MixSpec,
};
use graphbig_engine::{check_chaos_invariants, AdmissionController, Engine, EngineConfig};
use graphbig_framework::csr::Csr;
use graphbig_telemetry::metrics::{MetricValue, Registry};

fn csr(n: usize) -> Csr {
    Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n))
}

const KEYS: [&str; 4] = ["degree", "khop", "bfs", "kcore"];

#[test]
fn correction_factor_never_leaves_the_clamp() {
    prop::check(
        "feedback_correction_clamped",
        Config::with_cases(32),
        |rng| {
            // A random observation stream: (key index, static cost, exec us).
            let len = rng.gen_range(0u64..=200) as usize;
            (0..len)
                .map(|_| {
                    (
                        rng.gen_range(0u64..=3) as usize,
                        rng.gen_range(0u64..=10_000),
                        rng.gen_range(0u64..=1_000_000),
                    )
                })
                .collect::<Vec<_>>()
        },
        |stream| {
            let t = SloTracker::new();
            for &(key, static_cost, exec_us) in stream {
                t.observe_cost(KEYS[key], static_cost, exec_us);
                for key in KEYS {
                    let c = t.correction(key);
                    assert!(
                        (CORRECTION_MIN..=CORRECTION_MAX).contains(&c),
                        "correction {c} for {key} escaped the clamp"
                    );
                    // Adaptive cost respects the clamp and floors at 1.
                    for static_cost in [0, 1, 7, 10_000] {
                        let a = t.adaptive_cost(key, static_cost);
                        assert!(a >= 1);
                        let ceiling = ((static_cost as f64 * CORRECTION_MAX).round() as u64).max(1);
                        assert!(a <= ceiling, "{a} > {ceiling} for static {static_cost}");
                    }
                }
            }
        },
    );
}

#[test]
fn adaptive_costs_never_overcommit_a_busy_controller() {
    prop::check(
        "feedback_admission_budget",
        Config::with_cases(24),
        |rng| {
            let budget = rng.gen_range(4u64..=200);
            let obs = (0..rng.gen_range(0u64..=60) as usize)
                .map(|_| {
                    (
                        rng.gen_range(0u64..=3) as usize,
                        rng.gen_range(1u64..=100),
                        rng.gen_range(0u64..=50_000),
                    )
                })
                .collect::<Vec<_>>();
            let submits = (0..rng.gen_range(1u64..=80) as usize)
                .map(|_| (rng.gen_range(0u64..=3) as usize, rng.gen_range(1u64..=60)))
                .collect::<Vec<_>>();
            (budget, obs, submits)
        },
        |(budget, obs, submits)| {
            // Warm a tracker with an arbitrary history, then charge its
            // adaptive costs against a real controller.
            let t = SloTracker::new();
            for &(key, static_cost, exec_us) in obs {
                t.observe_cost(KEYS[key], static_cost, exec_us);
            }
            let ctl = AdmissionController::new(usize::MAX >> 1, *budget);
            let mut in_flight: Vec<u64> = Vec::new();
            for (i, &(key, static_cost)) in submits.iter().enumerate() {
                let cost = t.adaptive_cost(KEYS[key], static_cost);
                let was_idle = ctl.in_flight_cost() == 0;
                if ctl.try_admit(cost).is_ok() {
                    ctl.on_start();
                    in_flight.push(cost);
                    assert!(
                        ctl.in_flight_cost() <= *budget || was_idle,
                        "busy controller exceeded budget: {} > {budget}",
                        ctl.in_flight_cost()
                    );
                }
                // Drain one in-flight query every other step so the
                // controller cycles between idle and busy.
                if i % 2 == 1 {
                    if let Some(done) = in_flight.pop() {
                        ctl.on_finish(done);
                    }
                }
            }
            for done in in_flight {
                ctl.on_finish(done);
            }
            assert_eq!(ctl.in_flight_cost(), 0, "controller drains to zero");
        },
    );
}

#[test]
fn cached_hot_mixes_stay_bit_identical_to_the_oracle() {
    prop::check(
        "feedback_cache_oracle",
        Config::with_cases(5),
        |rng| {
            (
                rng.next_u64(),          // mix seed
                rng.gen_range(1u64..=8), // hot-source pool
                rng.gen_range(2u64..=4), // clients
            )
        },
        |&(seed, hot, clients)| {
            let spec = MixSpec {
                seed,
                requests: 80,
                clients: clients as usize,
                hot_sources: Some(hot as u32),
                ..MixSpec::default()
            };
            let reg = Registry::new();
            let engine = Engine::with_registry(
                EngineConfig {
                    executors: 3,
                    pool_threads: 2,
                    ..EngineConfig::default()
                },
                csr(200),
                &reg,
            );
            let report = run_mix(&engine, &spec);
            let snapshot = engine.store().snapshot();
            let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
            let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
            let inv = check_chaos_invariants(&engine, &report, Some(&oracle), &reg);
            assert!(inv.ok(), "invariants violated:\n{}", inv.render());
            // A hot pool over 80 point-heavy requests must actually
            // exercise the cache, or this test proves nothing.
            let snap = reg.snapshot();
            assert!(
                matches!(snap["engine.cache.hit"], MetricValue::Counter(h) if h > 0),
                "hot pool of {hot} produced no cache hits"
            );
        },
    );
}

#[test]
fn publish_invalidates_the_cache_for_correctness_not_just_memory() {
    // Warm the cache on one graph, publish a different one, and demand
    // the same queries now match the *new* graph's sequential oracle —
    // a stale-cache bug would serve old-epoch answers bit-identically
    // (and pass any response-equality check), so compare against the
    // oracle, not against the previous responses.
    let reg = Registry::new();
    let engine = Engine::with_registry(
        EngineConfig {
            executors: 2,
            pool_threads: 2,
            ..EngineConfig::default()
        },
        csr(200),
        &reg,
    );
    let spec = MixSpec {
        requests: 40,
        hot_sources: Some(4),
        ..MixSpec::default()
    };
    let first = run_mix(&engine, &spec);
    assert!(!first.completed_digests.is_empty());

    engine.publish(csr(450));
    assert_eq!(engine.cache_len(), 0, "publish empties the cache");

    let second = run_mix(&engine, &spec);
    let snapshot = engine.store().snapshot();
    assert_eq!(snapshot.graph().num_vertices(), 450);
    let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
    let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
    verify_against_oracle(&second, &oracle)
        .expect("post-publish responses must match the new graph");
}

#[test]
fn cache_on_and_cache_off_answers_are_bit_identical() {
    // The acceptance bar for the cache: responses with caching enabled
    // are indistinguishable from responses without it.
    let spec = MixSpec {
        requests: 60,
        clients: 2,
        hot_sources: Some(3),
        ..MixSpec::default()
    };
    let digests = |capacity: usize| {
        let reg = Registry::new();
        let engine = Engine::with_registry(
            EngineConfig {
                executors: 2,
                pool_threads: 2,
                cache_capacity: capacity,
                ..EngineConfig::default()
            },
            csr(200),
            &reg,
        );
        let report = run_mix(&engine, &spec);
        let hits = match reg.snapshot()["engine.cache.hit"] {
            MetricValue::Counter(h) => h,
            _ => 0,
        };
        (report.completed_digests.clone(), hits)
    };
    let (on, hits_on) = digests(1024);
    let (off, hits_off) = digests(0);
    assert_eq!(on, off, "cache must be invisible in the responses");
    assert!(hits_on > 0, "enabled cache must hit on a 3-vertex hot pool");
    assert_eq!(hits_off, 0, "disabled cache must never hit");
}

#[cfg(feature = "chaos")]
mod chaos_paths {
    use super::*;
    use graphbig_chaos::{self as chaos, FaultAction, FaultPlan, FaultSpec, Trigger};
    use graphbig_engine::traffic::run_chaos_mix;
    use std::sync::{Mutex, MutexGuard, Once};

    static SERIAL: Mutex<()> = Mutex::new(());
    static QUIET: Once = Once::new();

    fn serial() -> MutexGuard<'static, ()> {
        QUIET.call_once(chaos::install_quiet_panic_hook);
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fault(site: &str, trigger: Trigger, action: FaultAction) -> FaultSpec {
        FaultSpec {
            site: site.to_string(),
            trigger,
            action,
            p: 0.0,
            n: 0,
            schedule: Vec::new(),
            delay_us: 0,
        }
    }

    fn plan(seed: u64, faults: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan {
            seed,
            max_retries: 3,
            backoff_base_us: 50,
            backoff_cap_us: 400,
            faults,
        }
    }

    #[test]
    fn poisoned_cache_inserts_are_caught_by_the_oracle() {
        let _g = serial();
        // Corrupt every cache insert: the first requester still gets the
        // right answer (the poison only lands in the *stored* copy), but
        // any later hit serves a wrong result — which the oracle must
        // flag. This is the detection path for cache-poisoning bugs.
        let mut poison = fault(
            "engine.cache.insert",
            Trigger::Always,
            FaultAction::CorruptCache,
        );
        poison.p = 1.0;
        let plan = plan(41, vec![poison]);
        let spec = MixSpec {
            requests: 60,
            clients: 2,
            hot_sources: Some(2),
            point_weight: 100,
            traversal_weight: 0,
            analytics_weight: 0,
            ..MixSpec::default()
        };
        let reg = Registry::new();
        let engine = Engine::with_registry(
            EngineConfig {
                executors: 2,
                pool_threads: 2,
                ..EngineConfig::default()
            },
            csr(200),
            &reg,
        );
        let report = run_chaos_mix(&engine, &spec, &plan);
        let snap = reg.snapshot();
        assert!(
            matches!(snap["engine.cache.hit"], MetricValue::Counter(h) if h > 0),
            "2 hot sources over 60 point queries must produce hits"
        );
        let snapshot = engine.store().snapshot();
        let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
        let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
        assert!(
            verify_against_oracle(&report, &oracle).is_err(),
            "poisoned cache hits must not pass the oracle"
        );
    }

    #[test]
    fn chaotic_cached_mix_holds_every_invariant() {
        let _g = serial();
        // The full gauntlet with the cache and adaptive costs on: reject
        // storms, mid-mix republishes (which invalidate the cache), and
        // dequeue delays — still bit-identical to the sequential oracle.
        let mut reject = fault(
            "engine.admit",
            Trigger::Probability,
            FaultAction::RejectQueueFull,
        );
        reject.p = 0.2;
        let mut bump = fault(
            "traffic.republish",
            Trigger::EveryNth,
            FaultAction::Republish,
        );
        bump.n = 9;
        let mut slow = fault("engine.dequeue", Trigger::Probability, FaultAction::Delay);
        slow.p = 0.15;
        slow.delay_us = 200;
        let plan = plan(43, vec![reject, bump, slow]);
        let spec = MixSpec {
            requests: 48,
            clients: 3,
            hot_sources: Some(5),
            ..MixSpec::default()
        };
        let reg = Registry::new();
        let engine = Engine::with_registry(
            EngineConfig {
                executors: 2,
                pool_threads: 2,
                ..EngineConfig::default()
            },
            csr(250),
            &reg,
        );
        let report = run_chaos_mix(&engine, &spec, &plan);
        let snapshot = engine.store().snapshot();
        let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
        let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
        let inv = check_chaos_invariants(&engine, &report, Some(&oracle), &reg);
        assert!(inv.ok(), "invariants violated:\n{}", inv.render());
        assert!(
            engine.store().epoch() > 1,
            "mid-mix republishes must bump the epoch"
        );
    }
}
