//! Engine end-to-end guarantees, property-tested:
//!
//! * any mix of concurrent queries over one epoch is bit-identical to the
//!   same queries run sequentially (the serving-correctness contract);
//! * admission control rejects over-budget load instead of queuing it;
//! * deadline-exceeded queries are cancelled, never completed late;
//! * epoch publication never leaks across in-flight queries.

use std::time::Duration;

use graphbig_datagen::prop::{self, Config};
use graphbig_datagen::Dataset;
use graphbig_engine::traffic::{
    generate_requests, run_mix, sequential_digests, verify_against_oracle,
};
use graphbig_engine::{Engine, EngineConfig, MixSpec, Query, QueryStatus, RejectReason, Ticket};
use graphbig_framework::csr::Csr;
use graphbig_telemetry::metrics::Registry;
use graphbig_telemetry::MetricValue;
use graphbig_workloads::Workload;

fn csr(n: usize) -> Csr {
    Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n))
}

#[test]
fn any_concurrent_mix_is_bit_identical_to_sequential() {
    prop::check(
        "engine_concurrent_equals_sequential",
        Config::with_cases(6),
        |rng| {
            (
                (
                    rng.next_u64(),            // mix seed
                    rng.gen_range(1u64..=4),   // clients
                    rng.gen_range(10u64..=40), // requests
                ),
                (
                    rng.gen_range(1u64..=10), // point weight
                    rng.gen_range(0u64..=10), // traversal weight
                    rng.gen_range(0u64..=10), // analytics weight
                ),
            )
        },
        |&((seed, clients, requests), (pw, tw, aw))| {
            let spec = MixSpec {
                seed,
                requests: requests as usize,
                clients: clients as usize,
                point_weight: pw as u32,
                traversal_weight: tw as u32,
                analytics_weight: aw as u32,
                deadline_ms: None,
                ..MixSpec::default()
            };
            let reg = Registry::new();
            let engine = Engine::with_registry(
                EngineConfig {
                    executors: 3,
                    pool_threads: 2,
                    ..EngineConfig::default()
                },
                csr(160),
                &reg,
            );
            let report = run_mix(&engine, &spec);
            // Closed loop at <= 4 clients with no deadline: nothing is
            // rejected and everything completes.
            assert_eq!(report.admitted, requests);
            let snapshot = engine.store().snapshot();
            let queries = generate_requests(&spec, snapshot.graph().num_vertices() as u32);
            let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
            let checked = verify_against_oracle(&report, &oracle)
                .expect("concurrent results must be bit-identical to sequential");
            assert_eq!(checked, requests, "every request verified");
        },
    );
}

#[test]
fn over_budget_load_is_rejected_not_queued() {
    let reg = Registry::new();
    let engine = Engine::with_registry(
        EngineConfig {
            executors: 1,
            pool_threads: 1,
            queue_capacity: 4,
            ..EngineConfig::default()
        },
        csr(20_000),
        &reg,
    );
    // Open-loop burst: a single executor grinding 20k-vertex analytics
    // cannot drain 4 queue slots before 20 instant submissions land.
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut queue_full = 0u64;
    for _ in 0..20 {
        match engine.submit(Query::Run {
            workload: Workload::CComp,
            source: 0,
        }) {
            Ok(t) => tickets.push(t),
            Err(RejectReason::QueueFull { depth, limit }) => {
                assert!(depth >= limit, "rejection must report a full queue");
                queue_full += 1;
            }
            Err(other) => panic!("unexpected rejection {other}"),
        }
    }
    assert!(queue_full > 0, "bounded queue must shed the burst");
    let admitted = tickets.len() as u64;
    for t in tickets {
        assert!(
            matches!(t.wait().status, QueryStatus::Completed(_)),
            "admitted queries still complete"
        );
    }
    let snap = reg.snapshot();
    assert_eq!(
        snap["engine.rejected.queue_full"],
        MetricValue::Counter(queue_full)
    );
    assert_eq!(snap["engine.submitted"], MetricValue::Counter(admitted));
    assert_eq!(engine.admission().queued(), 0);
    assert_eq!(engine.admission().in_flight_cost(), 0);
}

#[test]
fn cost_budget_rejects_heavy_queries_while_serving_cheap_ones() {
    let reg = Registry::new();
    let engine = Engine::with_registry(
        EngineConfig {
            pool_threads: 2,
            cost_budget: 10, // point queries fit, any kernel run does not
            ..EngineConfig::default()
        },
        csr(500),
        &reg,
    );
    // Occupy one cost unit so the engine is not idle: the oversized-query
    // escape hatch only fires when in-flight cost is zero.
    engine.admission().try_admit(1).expect("trivial admit");
    engine.admission().on_start();
    let err = engine
        .submit(Query::Run {
            workload: Workload::KCore,
            source: 0,
        })
        .unwrap_err();
    assert!(
        matches!(err, RejectReason::CostBudget { limit: 10, .. }),
        "{err}"
    );
    let t = engine.submit(Query::Degree { vertex: 3 }).unwrap();
    assert!(matches!(t.wait().status, QueryStatus::Completed(_)));
    engine.admission().on_finish(1);
    assert_eq!(
        reg.snapshot()["engine.rejected.cost_budget"],
        MetricValue::Counter(1)
    );
}

#[test]
fn deadline_exceeded_queries_are_cancelled_not_completed() {
    let reg = Registry::new();
    let engine = Engine::with_registry(
        EngineConfig {
            pool_threads: 2,
            default_deadline: Some(Duration::ZERO),
            ..EngineConfig::default()
        },
        csr(2_000),
        &reg,
    );
    let responses: Vec<_> = (0..8)
        .map(|i| {
            engine
                .submit(Query::Run {
                    workload: if i % 2 == 0 {
                        Workload::CComp
                    } else {
                        Workload::SPath
                    },
                    source: i,
                })
                .expect("admission is independent of deadlines")
        })
        .map(Ticket::wait)
        .collect();
    for r in &responses {
        assert_eq!(
            r.status,
            QueryStatus::DeadlineExceeded,
            "an already-expired deadline must never produce a completion"
        );
    }
    assert_eq!(
        reg.snapshot()["engine.deadline_missed"],
        MetricValue::Counter(8)
    );
    assert_eq!(engine.admission().in_flight_cost(), 0, "budget released");
}

#[test]
fn epoch_publication_does_not_leak_across_queries() {
    let engine = Engine::with_registry(
        EngineConfig {
            pool_threads: 2,
            ..EngineConfig::default()
        },
        csr(100),
        &Registry::new(),
    );
    let query = Query::Run {
        workload: Workload::CComp,
        source: 0,
    };
    let old_snapshot = engine.store().snapshot();
    let before = engine.submit(query).unwrap();
    let new_epoch = engine.publish(csr(220));
    assert_eq!(new_epoch, 2);
    let after = engine.submit(query).unwrap();
    let (before, after) = (before.wait(), after.wait());
    assert_eq!(before.epoch, 1);
    assert_eq!(after.epoch, 2);
    let new_snapshot = engine.store().snapshot();
    let oracle_old = sequential_digests(old_snapshot.graph(), engine.pool(), &[query]);
    let oracle_new = sequential_digests(new_snapshot.graph(), engine.pool(), &[query]);
    assert_ne!(
        oracle_old[0], oracle_new[0],
        "the two epochs must be distinguishable for this test to mean anything"
    );
    let digest_of = |status: &QueryStatus| match status {
        QueryStatus::Completed(o) => o.digest(),
        other => panic!("expected completion, got {other:?}"),
    };
    assert_eq!(Some(digest_of(&before.status)), oracle_old[0]);
    assert_eq!(Some(digest_of(&after.status)), oracle_new[0]);
}
