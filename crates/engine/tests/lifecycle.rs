//! Trace-correlation coverage for the request lifecycle.
//!
//! Every admitted request id minted at admission must appear **exactly
//! once per lifecycle stage** (admit → enqueue → dequeue → run → resolve)
//! in the always-on flight recorder — on the completed path and on every
//! failure path: rejected, deadline-exceeded, cancelled, unsupported, and
//! (with the `chaos` feature) kernel-failed. The chaos-gated tests also
//! prove the two correlation stories the recorder exists for: fault fires
//! tagged with the triggering request, and an invariant violation dumping
//! the full per-stage story of the affected request.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use graphbig_datagen::Dataset;
use graphbig_engine::{Engine, EngineConfig, Query, QueryStatus};
use graphbig_framework::csr::Csr;
use graphbig_telemetry::metrics::Registry;
use graphbig_telemetry::recorder::{self, EventKind, RecorderEvent};
use graphbig_workloads::Workload;

/// The flight recorder is process-global (and so is chaos arming in the
/// gated tests below), so every test in this file takes one gate and the
/// assertions filter snapshots by freshly-minted request ids.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn engine(n: usize, cfg: EngineConfig, reg: &Registry) -> Engine {
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n));
    Engine::with_registry(cfg, csr, reg)
}

fn quiet_cfg() -> EngineConfig {
    EngineConfig {
        pool_threads: 2,
        ..EngineConfig::default()
    }
}

fn events_for(rid: u64) -> Vec<RecorderEvent> {
    let mut evs: Vec<RecorderEvent> = recorder::snapshot()
        .events
        .into_iter()
        .filter(|e| e.id == rid)
        .collect();
    evs.sort_by_key(|e| e.ts_us);
    evs
}

fn count(evs: &[RecorderEvent], kind: EventKind) -> usize {
    evs.iter().filter(|e| e.kind == kind).count()
}

fn arg_of(evs: &[RecorderEvent], kind: EventKind) -> u64 {
    evs.iter()
        .find(|e| e.kind == kind)
        .unwrap_or_else(|| panic!("missing {} event", kind.name()))
        .arg
}

fn ts_of(evs: &[RecorderEvent], kind: EventKind) -> u64 {
    evs.iter()
        .find(|e| e.kind == kind)
        .unwrap_or_else(|| panic!("missing {} event", kind.name()))
        .ts_us
}

const STAGES: [EventKind; 5] = [
    EventKind::Admit,
    EventKind::Enqueue,
    EventKind::Dequeue,
    EventKind::Run,
    EventKind::Resolve,
];

/// Assert the five lifecycle stages each appear exactly once for `rid`,
/// in causal order, with the expected status code on run and resolve.
fn assert_full_lifecycle(rid: u64, status_code: u64) -> Vec<RecorderEvent> {
    let evs = events_for(rid);
    for kind in STAGES {
        assert_eq!(
            count(&evs, kind),
            1,
            "request {rid}: stage {} must appear exactly once in {evs:?}",
            kind.name()
        );
    }
    assert_eq!(
        count(&evs, EventKind::Reject),
        0,
        "admitted, never rejected"
    );
    assert_eq!(arg_of(&evs, EventKind::Run), status_code);
    assert_eq!(arg_of(&evs, EventKind::Resolve), status_code);
    for pair in STAGES.windows(2) {
        assert!(
            ts_of(&evs, pair[0]) <= ts_of(&evs, pair[1]),
            "request {rid}: {} must not precede {}",
            pair[1].name(),
            pair[0].name()
        );
    }
    evs
}

#[test]
fn completed_requests_log_every_stage_exactly_once() {
    let _g = gate();
    let reg = Registry::new();
    let eng = engine(300, quiet_cfg(), &reg);
    let t_point = eng.submit(Query::Degree { vertex: 0 }).unwrap();
    let t_analytics = eng
        .submit(Query::Run {
            workload: Workload::CComp,
            source: 0,
        })
        .unwrap();
    let (rid_point, rid_analytics) = (t_point.request_id(), t_analytics.request_id());
    let r1 = t_point.wait();
    let r2 = t_analytics.wait();
    assert!(matches!(r1.status, QueryStatus::Completed(_)));
    assert!(matches!(r2.status, QueryStatus::Completed(_)));
    assert_eq!(r1.request_id, rid_point, "ticket and response agree");
    assert_eq!(r2.request_id, rid_analytics);

    let point = assert_full_lifecycle(rid_point, 0);
    let analytics = assert_full_lifecycle(rid_analytics, 0);
    // Stage events carry the priority lane the request billed to.
    for e in point.iter().filter(|e| STAGES.contains(&e.kind)) {
        assert_eq!(e.lane, 0, "point queries ride lane 0");
    }
    for e in analytics.iter().filter(|e| STAGES.contains(&e.kind)) {
        assert_eq!(e.lane, 2, "analytics queries ride lane 2");
    }
    // A serviced kernel additionally marks where execution entered it.
    assert_eq!(count(&analytics, EventKind::KernelStart), 1);
}

#[test]
fn deadline_exceeded_requests_still_log_the_full_lifecycle() {
    let _g = gate();
    let reg = Registry::new();
    let eng = engine(300, quiet_cfg(), &reg);
    let t = eng
        .submit_with_deadline(
            Query::Run {
                workload: Workload::CComp,
                source: 0,
            },
            Some(Duration::ZERO),
        )
        .unwrap();
    let rid = t.request_id();
    assert_eq!(t.wait().status, QueryStatus::DeadlineExceeded);
    assert_full_lifecycle(rid, 1);
}

#[test]
fn cancelled_requests_log_the_cancel_and_the_full_lifecycle() {
    let _g = gate();
    let reg = Registry::new();
    // One executor: park it behind a heavy analytics query so the victim
    // is still queued when the cancel lands.
    let eng = engine(
        3000,
        EngineConfig {
            executors: 1,
            ..quiet_cfg()
        },
        &reg,
    );
    let blocker = eng
        .submit(Query::Run {
            workload: Workload::KCore,
            source: 0,
        })
        .unwrap();
    let victim = eng
        .submit(Query::Run {
            workload: Workload::SPath,
            source: 0,
        })
        .unwrap();
    let rid = victim.request_id();
    victim.cancel();
    let r = victim.wait();
    let _ = blocker.wait();
    // The cancel usually lands while queued; a fast blocker can let the
    // victim start (or even finish) first. Either way the lifecycle is
    // exactly-once and the cancel request itself is on record.
    let code = match r.status {
        QueryStatus::Cancelled => 2,
        QueryStatus::Completed(_) => 0,
        other => panic!("unexpected status {other:?}"),
    };
    let evs = assert_full_lifecycle(rid, code);
    assert_eq!(count(&evs, EventKind::CancelRequest), 1);
}

#[test]
fn unsupported_requests_resolve_with_the_unsupported_code() {
    let _g = gate();
    let reg = Registry::new();
    let eng = engine(50, quiet_cfg(), &reg);
    let t = eng
        .submit(Query::Run {
            workload: Workload::Gibbs,
            source: 0,
        })
        .unwrap();
    let rid = t.request_id();
    assert_eq!(t.wait().status, QueryStatus::Unsupported(Workload::Gibbs));
    assert_full_lifecycle(rid, 3);
}

#[test]
fn rejected_requests_log_admit_and_reject_and_nothing_else() {
    let _g = gate();
    let reg = Registry::new();
    let eng = engine(
        100,
        EngineConfig {
            cost_budget: 1, // only Degree-class queries fit
            ..quiet_cfg()
        },
        &reg,
    );
    let before: std::collections::HashSet<u64> =
        recorder::snapshot().events.iter().map(|e| e.id).collect();
    // Fill the budget so the oversized submit hits a *busy* engine — an
    // idle one would admit it via the empty-engine escape hatch.
    eng.admission().try_admit(1).expect("fits the budget");
    eng.admission().on_start();
    eng.submit(Query::Run {
        workload: Workload::KCore,
        source: 0,
    })
    .unwrap_err();
    eng.admission().on_finish(1);
    // The rejected submit returns no ticket, so recover its id from the
    // snapshot diff: exactly one fresh cost-budget reject must appear.
    let fresh: Vec<RecorderEvent> = recorder::snapshot()
        .events
        .into_iter()
        .filter(|e| e.kind == EventKind::Reject && e.arg == 1 && !before.contains(&e.id))
        .collect();
    assert_eq!(fresh.len(), 1, "exactly one new cost-budget rejection");
    let evs = events_for(fresh[0].id);
    assert_eq!(count(&evs, EventKind::Admit), 1);
    assert_eq!(count(&evs, EventKind::Reject), 1);
    assert_eq!(
        evs.len(),
        2,
        "a rejected request has no post-admission stages: {evs:?}"
    );
}

#[cfg(feature = "chaos")]
mod chaos_paths {
    use super::*;
    use graphbig_chaos::{self as chaos, FaultAction, FaultPlan, FaultSpec, Trigger};
    use graphbig_engine::check_chaos_invariants;
    use graphbig_engine::traffic::{run_chaos_mix, MixSpec};
    use std::sync::Once;

    static QUIET: Once = Once::new();

    fn chaos_gate() -> MutexGuard<'static, ()> {
        QUIET.call_once(chaos::install_quiet_panic_hook);
        gate()
    }

    fn scheduled(site: &str, action: FaultAction, schedule: Vec<u64>) -> FaultPlan {
        FaultPlan {
            seed: 7,
            max_retries: 0,
            backoff_base_us: 0,
            backoff_cap_us: 0,
            faults: vec![FaultSpec {
                site: site.to_string(),
                trigger: Trigger::Schedule,
                action,
                p: 0.0,
                n: 0,
                schedule,
                delay_us: 0,
            }],
        }
    }

    #[test]
    fn failed_requests_log_the_lifecycle_and_the_fault_that_killed_them() {
        let _g = chaos_gate();
        let reg = Registry::new();
        let eng = engine(300, quiet_cfg(), &reg);
        // `Trigger::Schedule` fires for the listed chaos keys, so tag the
        // request with a key the plan names.
        let tag = 0xFEEDu64;
        chaos::arm(&scheduled("engine.run.pre", FaultAction::Panic, vec![tag]));
        let t = eng
            .submit_tagged(
                Query::Run {
                    workload: Workload::CComp,
                    source: 0,
                },
                None,
                tag,
            )
            .unwrap();
        let rid = t.request_id();
        let r = t.wait();
        chaos::disarm();
        assert!(matches!(r.status, QueryStatus::Failed(_)), "{:?}", r.status);
        let evs = assert_full_lifecycle(rid, 4);
        // The admit event carries the chaos tag, tying the request id to
        // the key fault_fired events are recorded under.
        assert_eq!(arg_of(&evs, EventKind::Admit), tag);
        let fires: Vec<RecorderEvent> = recorder::snapshot()
            .events
            .into_iter()
            .filter(|e| e.kind == EventKind::FaultFired && e.id == tag)
            .collect();
        assert_eq!(fires.len(), 1, "one fault fired for this request");
        assert_eq!(
            recorder::label(fires[0].code).as_deref(),
            Some("engine.run.pre"),
            "fault event names the failpoint site"
        );
    }

    #[test]
    fn invariant_violation_dumps_the_affected_requests_full_lifecycle() {
        let _g = chaos_gate();
        let dump = std::env::temp_dir().join("graphbig_lifecycle_violation.json");
        let dump = dump.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&dump);
        recorder::set_auto_dump_path(&dump);

        let reg = Registry::new();
        let eng = engine(300, quiet_cfg(), &reg);
        let plan = scheduled("engine.resolve", FaultAction::DoubleResolve, vec![3]);
        let spec = MixSpec {
            requests: 8,
            clients: 1,
            ..MixSpec::default()
        };
        let report = run_chaos_mix(&eng, &spec, &plan);
        let inv = check_chaos_invariants(&eng, &report, None, &reg);
        assert!(!inv.ok(), "a double resolve must trip resolved_once");

        let text = std::fs::read_to_string(&dump).expect("violation must auto-dump");
        let doc = graphbig_telemetry::json::parse(&text).expect("dump is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("graphbig.flight_recorder/v1")
        );
        assert_eq!(
            doc.get("reason").and_then(|s| s.as_str()),
            Some("invariant-violation")
        );
        let events = doc
            .get("events")
            .and_then(|e| e.as_arr())
            .expect("dump carries events");
        let affected: Vec<u64> = events
            .iter()
            .filter(|e| e.get("kind").and_then(|k| k.as_str()) == Some("double_resolve"))
            .filter_map(|e| e.get("id").and_then(|i| i.as_u64()))
            .collect();
        assert!(
            !affected.is_empty(),
            "dump names the double-resolved request"
        );
        for rid in affected {
            for stage in ["admit", "enqueue", "dequeue", "run", "resolve"] {
                let hits = events
                    .iter()
                    .filter(|e| {
                        e.get("id").and_then(|i| i.as_u64()) == Some(rid)
                            && e.get("kind").and_then(|k| k.as_str()) == Some(stage)
                    })
                    .count();
                assert_eq!(hits, 1, "request {rid}: dump has one {stage} event");
            }
        }
    }
}
