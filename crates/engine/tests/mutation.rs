//! Write-path acceptance tests: a seeded 10k-op mixed stream must leave
//! the engine digest-identical to a graph rebuilt from scratch with the
//! same mutations — checked mid-overlay, post-compaction, and under the
//! background compactor — at more than one client count.

use graphbig_datagen::Dataset;
use graphbig_engine::traffic::{
    generate_ops, live_engine_digest, mutation_oracle_digest, resolve_write, run_mix, MixOp,
};
use graphbig_engine::{
    check_chaos_invariants, structural_digest, Engine, EngineConfig, MixSpec, MutationBuffer,
};
use graphbig_framework::csr::Csr;
use graphbig_telemetry::metrics::{MetricValue, Registry};

fn engine(n: usize, compact_threshold: usize, reg: &Registry) -> Engine {
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n));
    Engine::with_registry(
        EngineConfig {
            executors: 2,
            pool_threads: 2,
            compact_threshold,
            ..EngineConfig::default()
        },
        csr,
        reg,
    )
}

fn counter(reg: &Registry, name: &str) -> u64 {
    match reg.snapshot().get(name) {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    }
}

/// Wait for the background compactor to drain: overlay folded (or below
/// threshold) and every started fold completed.
fn quiesce_compactor(reg: &Registry) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let started = counter(reg, "engine.compact.started");
        let completed = counter(reg, "engine.compact.completed");
        if started == completed {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "compactor did not quiesce: {started} started vs {completed} completed"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn ten_thousand_op_stream_matches_the_rebuild_oracle_at_two_client_counts() {
    for clients in [2usize, 8] {
        let reg = Registry::new();
        // Manual compaction so the mid-overlay check really is mid-overlay.
        let eng = engine(500, 0, &reg);
        let base = eng.store().snapshot();
        let n = base.graph().num_vertices() as u32;
        let spec = MixSpec {
            seed: 77,
            requests: 10_000,
            clients,
            point_weight: 55,
            traversal_weight: 3,
            analytics_weight: 2,
            write_weight: 40,
            hot_sources: Some(64),
            ..MixSpec::default()
        };
        let ops = generate_ops(&spec, n);
        let writes = ops
            .iter()
            .filter(|op| matches!(op, MixOp::Write(_)))
            .count();
        assert!(writes > 3_000, "write band drew only {writes} of 10k ops");
        let expected = mutation_oracle_digest(base.graph(), &ops);

        let report = run_mix(&eng, &spec);
        assert_eq!(report.admitted, 10_000, "clients={clients}");

        // Mid-overlay: the buffered view already equals the oracle.
        assert!(
            !eng.overlay().is_empty(),
            "stream must leave a live overlay"
        );
        assert_eq!(live_engine_digest(&eng), expected, "clients={clients}");

        // Rebuilt from scratch: a fresh buffer fed the same writes,
        // materialized into a brand-new CSR, digests identically.
        let rebuild = MutationBuffer::new(1, n);
        for op in &ops {
            if let MixOp::Write(w) = op {
                rebuild.apply(base.graph(), &resolve_write(base.graph(), *w));
            }
        }
        let scratch = rebuild.current().materialize(base.graph(), 4);
        assert_eq!(structural_digest(&scratch), expected);

        // Post-compaction: the folded epoch serves the same graph.
        let epoch = eng.compact();
        assert!(epoch > 1, "a dirty overlay must fold into a new epoch");
        assert_eq!(
            structural_digest(eng.store().snapshot().graph()),
            expected,
            "clients={clients}"
        );

        let inv = check_chaos_invariants(&eng, &report, None, &reg);
        assert!(inv.ok(), "clients={clients}:\n{}", inv.render());
    }
}

#[test]
fn background_compactor_under_live_traffic_converges_on_the_oracle() {
    let reg = Registry::new();
    let eng = engine(400, 200, &reg);
    let base = eng.store().snapshot();
    let n = base.graph().num_vertices() as u32;
    let spec = MixSpec {
        seed: 9,
        requests: 3_000,
        clients: 4,
        point_weight: 40,
        traversal_weight: 0,
        analytics_weight: 0,
        write_weight: 60,
        ..MixSpec::default()
    };
    let ops = generate_ops(&spec, n);
    let expected = mutation_oracle_digest(base.graph(), &ops);
    let report = run_mix(&eng, &spec);
    assert_eq!(report.admitted, 3_000);

    // ~1800 overlay edges against a 200-edge threshold: the background
    // compactor must have folded at least once while traffic was live.
    quiesce_compactor(&reg);
    assert!(
        eng.store().epoch() > 1,
        "threshold 200 must wake the compactor mid-mix"
    );
    assert!(counter(&reg, "engine.compact.completed") > 0);

    // Whatever mix of folded epochs and residual overlay remains, the
    // live view equals the sequential oracle — and so does a final fold.
    assert_eq!(live_engine_digest(&eng), expected);
    eng.compact();
    quiesce_compactor(&reg);
    assert_eq!(structural_digest(eng.store().snapshot().graph()), expected);

    let inv = check_chaos_invariants(&eng, &report, None, &reg);
    assert!(inv.ok(), "{}", inv.render());
}

#[test]
fn write_mix_replay_is_bit_identical_from_one_seed() {
    let spec = MixSpec {
        seed: 1234,
        requests: 600,
        clients: 3,
        point_weight: 50,
        traversal_weight: 5,
        analytics_weight: 5,
        write_weight: 40,
        ..MixSpec::default()
    };
    let run = || {
        let reg = Registry::new();
        let eng = engine(300, 0, &reg);
        let report = run_mix(&eng, &spec);
        let outcomes: Vec<(u64, u64, u64, u64)> = report
            .classes
            .iter()
            .map(|c| (c.completed, c.deadline_missed, c.cancelled, c.failed))
            .collect();
        (
            outcomes,
            report.admitted,
            eng.delta_seq(),
            live_engine_digest(&eng),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed, same outcomes and final graph");
    assert_eq!(first.1, 600);
}
