//! Seeded chaos matrix: FaultPlans × mixes, all invariants checked.
//!
//! Only compiled with the `chaos` feature (`cargo test -p graphbig-engine
//! --features chaos`; the default workspace test sweep also enables it via
//! `graphbig-bench`). The armed fault plan is process-global, so every test
//! takes `SERIAL` — chaos runs are process-serial by design.
#![cfg(feature = "chaos")]

use std::sync::{Mutex, MutexGuard, Once};

use graphbig_chaos::{self as chaos, FaultAction, FaultPlan, FaultSpec, Trigger};
use graphbig_datagen::Dataset;
use graphbig_engine::traffic::{generate_requests, run_chaos_mix, sequential_digests, MixSpec};
use graphbig_engine::{check_chaos_invariants, Engine, EngineConfig, Query, QueryStatus};
use graphbig_framework::csr::Csr;
use graphbig_telemetry::metrics::{MetricValue, Registry};
use graphbig_workloads::Workload;

static SERIAL: Mutex<()> = Mutex::new(());
static QUIET: Once = Once::new();

fn serial() -> MutexGuard<'static, ()> {
    QUIET.call_once(chaos::install_quiet_panic_hook);
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn engine(n: usize, reg: &Registry) -> Engine {
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n));
    Engine::with_registry(
        EngineConfig {
            executors: 2,
            pool_threads: 2,
            ..EngineConfig::default()
        },
        csr,
        reg,
    )
}

fn fault(site: &str, trigger: Trigger, action: FaultAction) -> FaultSpec {
    FaultSpec {
        site: site.to_string(),
        trigger,
        action,
        p: 0.0,
        n: 0,
        schedule: Vec::new(),
        delay_us: 0,
    }
}

fn plan(seed: u64, faults: Vec<FaultSpec>) -> FaultPlan {
    FaultPlan {
        seed,
        max_retries: 3,
        backoff_base_us: 50,
        backoff_cap_us: 400,
        faults,
    }
}

/// The schedule-independent outcome of a run: per-class outcome counts,
/// the admission tally, retries, and every completed digest. Latency
/// percentiles are deliberately excluded — they are timing, not outcome.
type Tally = (
    Vec<(u64, u64, u64, u64)>,
    u64,
    u64,
    u64,
    u64,
    Vec<(usize, u64)>,
);

fn tally(report: &graphbig_engine::TrafficReport) -> Tally {
    (
        report
            .classes
            .iter()
            .map(|c| (c.completed, c.deadline_missed, c.cancelled, c.failed))
            .collect(),
        report.admitted,
        report.rejected_queue_full,
        report.rejected_cost_budget,
        report.retries,
        report.completed_digests.clone(),
    )
}

/// Run a chaotic mix, check every invariant (including the oracle), and
/// panic with the rendered report on any violation.
fn run_checked(
    engine: &Engine,
    spec: &MixSpec,
    plan: &FaultPlan,
    reg: &Registry,
) -> graphbig_engine::TrafficReport {
    let report = run_chaos_mix(engine, spec, plan);
    assert!(
        !chaos::is_armed(),
        "run_chaos_mix must disarm before returning"
    );
    let snapshot = engine.store().snapshot();
    let queries = generate_requests(spec, snapshot.graph().num_vertices() as u32);
    let oracle = sequential_digests(snapshot.graph(), engine.pool(), &queries);
    let inv = check_chaos_invariants(engine, &report, Some(&oracle), reg);
    assert!(inv.ok(), "invariants violated:\n{}", inv.render());
    report
}

#[test]
fn reject_storm_retries_and_stays_consistent() {
    let _g = serial();
    let mut storm = fault(
        "engine.admit",
        Trigger::Probability,
        FaultAction::RejectQueueFull,
    );
    storm.p = 0.4;
    let mut budget = fault(
        "engine.admit",
        Trigger::Probability,
        FaultAction::RejectCostBudget,
    );
    budget.p = 0.1;
    let plan = plan(11, vec![storm, budget]);
    let spec = MixSpec {
        requests: 60,
        clients: 3,
        ..MixSpec::default()
    };
    let reg = Registry::new();
    let eng = engine(300, &reg);
    let report = run_checked(&eng, &spec, &plan, &reg);
    assert!(
        report.retries > 0,
        "p=0.5 combined storm must force retries"
    );
    // p=0.4/0.1 with only 3 retries: some requests exhaust their budget.
    assert!(
        report.rejected_queue_full + report.rejected_cost_budget > 0,
        "some requests should exhaust retries"
    );
    assert!(
        report.admitted > 0,
        "retries must get most requests through"
    );
}

#[test]
fn deadline_storm_is_replayable_from_the_seed() {
    let _g = serial();
    let mut storm = fault(
        "engine.dequeue",
        Trigger::EveryNth,
        FaultAction::DeadlineExpire,
    );
    storm.n = 4;
    let plan = plan(5, vec![storm]);
    let spec = MixSpec {
        requests: 48,
        clients: 2,
        ..MixSpec::default()
    };
    let run = || {
        let reg = Registry::new();
        let eng = engine(300, &reg);
        tally(&run_checked(&eng, &spec, &plan, &reg))
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed, same outcome tally and digests");
    let missed: u64 = first.0.iter().map(|c| c.1).sum();
    assert_eq!(missed, 12, "every 4th of 48 requests expires at dequeue");
}

#[test]
fn kernel_panic_marks_only_that_query_failed_and_engine_keeps_serving() {
    let _g = serial();
    let mut bomb = fault("engine.run.pre", Trigger::Schedule, FaultAction::Panic);
    bomb.schedule = vec![1, 3, 7];
    let plan = plan(3, vec![bomb]);
    let spec = MixSpec {
        requests: 20,
        clients: 2,
        ..MixSpec::default()
    };
    let reg = Registry::new();
    let eng = engine(300, &reg);
    let report = run_checked(&eng, &spec, &plan, &reg);
    let failed: u64 = report.classes.iter().map(|c| c.failed).sum();
    assert_eq!(failed, 3, "exactly the scheduled requests fail");
    let completed: u64 = report.classes.iter().map(|c| c.completed).sum();
    assert_eq!(completed, 17, "every other request completes normally");
    // Regression: the engine survives kernel panics — no executor died and
    // a fresh query still completes.
    assert_eq!(eng.alive_executors(), eng.executor_count());
    let r = eng.submit(Query::Degree { vertex: 0 }).unwrap().wait();
    assert!(matches!(r.status, QueryStatus::Completed(_)));
    assert_eq!(
        reg.snapshot()["engine.failed"],
        MetricValue::Counter(3),
        "failed counter matches"
    );
}

#[test]
fn panic_inside_a_parallel_kernel_is_contained() {
    let _g = serial();
    // Cancel-check panics fire inside running kernels on the executor
    // thread; pool workers and the executor must both survive.
    let mut bomb = fault(
        "runtime.cancel.check",
        Trigger::Probability,
        FaultAction::Panic,
    );
    bomb.p = 0.3;
    let plan = plan(17, vec![bomb]);
    let spec = MixSpec {
        requests: 24,
        clients: 2,
        point_weight: 0,
        traversal_weight: 50,
        analytics_weight: 50,
        ..MixSpec::default()
    };
    let reg = Registry::new();
    let eng = engine(400, &reg);
    let report = run_checked(&eng, &spec, &plan, &reg);
    let failed: u64 = report.classes.iter().map(|c| c.failed).sum();
    assert!(
        failed > 0,
        "p=0.3 over 24 kernel queries must hit something"
    );
    assert_eq!(eng.alive_executors(), eng.executor_count());
}

#[test]
fn republish_during_mix_preserves_oracle_equality() {
    let _g = serial();
    let mut bump = fault(
        "traffic.republish",
        Trigger::EveryNth,
        FaultAction::Republish,
    );
    bump.n = 7;
    let plan = plan(23, vec![bump]);
    let spec = MixSpec {
        requests: 42,
        clients: 3,
        ..MixSpec::default()
    };
    let reg = Registry::new();
    let eng = engine(300, &reg);
    let report = run_checked(&eng, &spec, &plan, &reg);
    assert!(
        eng.store().epoch() > 1,
        "mid-mix republishes must bump the epoch"
    );
    let completed: u64 = report.classes.iter().map(|c| c.completed).sum();
    assert_eq!(completed, 42, "republish is not an error path");
}

#[test]
fn forced_cancellation_storm_is_deterministic() {
    let _g = serial();
    let mut storm = fault(
        "runtime.cancel.check",
        Trigger::Probability,
        FaultAction::Cancel,
    );
    storm.p = 0.5;
    let plan = plan(29, vec![storm]);
    let spec = MixSpec {
        requests: 24,
        clients: 2,
        point_weight: 0,
        traversal_weight: 50,
        analytics_weight: 50,
        ..MixSpec::default()
    };
    let run = || {
        let reg = Registry::new();
        let eng = engine(300, &reg);
        tally(&run_checked(&eng, &spec, &plan, &reg))
    };
    let first = run();
    assert_eq!(first, run(), "token-keyed cancel decisions are replayable");
    let cancelled: u64 = first.0.iter().map(|c| c.2).sum();
    assert!(cancelled > 0, "p=0.5 must cancel some kernels");
}

#[test]
fn seeded_matrix_of_plans_times_mixes_holds_every_invariant() {
    let _g = serial();
    let mut reject = fault(
        "engine.admit",
        Trigger::Probability,
        FaultAction::RejectQueueFull,
    );
    reject.p = 0.3;
    let mut expire = fault(
        "engine.dequeue",
        Trigger::EveryNth,
        FaultAction::DeadlineExpire,
    );
    expire.n = 5;
    let mut bombs = fault("engine.run.pre", Trigger::Probability, FaultAction::Panic);
    bombs.p = 0.08;
    let mut bump = fault(
        "traffic.republish",
        Trigger::EveryNth,
        FaultAction::Republish,
    );
    bump.n = 9;
    let mut cancel = fault(
        "runtime.cancel.check",
        Trigger::Probability,
        FaultAction::Cancel,
    );
    cancel.p = 0.15;
    let mut slow = fault("engine.dequeue", Trigger::Probability, FaultAction::Delay);
    slow.p = 0.2;
    slow.delay_us = 300;
    let plans = [
        plan(101, vec![reject.clone()]),
        plan(102, vec![expire.clone()]),
        plan(103, vec![bombs.clone()]),
        plan(104, vec![bump.clone()]),
        plan(105, vec![reject, expire, bombs, bump, cancel, slow]),
    ];
    let mixes = [
        MixSpec {
            requests: 30,
            clients: 2,
            ..MixSpec::default()
        },
        MixSpec {
            requests: 24,
            clients: 3,
            point_weight: 10,
            traversal_weight: 30,
            analytics_weight: 60,
            ..MixSpec::default()
        },
    ];
    for (pi, plan) in plans.iter().enumerate() {
        for (mi, spec) in mixes.iter().enumerate() {
            let reg = Registry::new();
            let eng = engine(250, &reg);
            let report = run_chaos_mix(&eng, spec, plan);
            let snapshot = eng.store().snapshot();
            let queries = generate_requests(spec, snapshot.graph().num_vertices() as u32);
            let oracle = sequential_digests(snapshot.graph(), eng.pool(), &queries);
            let inv = check_chaos_invariants(&eng, &report, Some(&oracle), &reg);
            assert!(
                inv.ok(),
                "plan {pi} × mix {mi} violated invariants:\n{}",
                inv.render()
            );
        }
    }
}

#[test]
fn shutdown_drain_never_double_resolves_tickets() {
    let _g = serial();
    // Slow every dequeue so queued analytics are still pending when the
    // engine drops — the shutdown shed and the drain backstop both race to
    // resolve them, and the one-shot CAS must let exactly one win.
    let mut slow = fault("engine.dequeue", Trigger::Always, FaultAction::Delay);
    slow.delay_us = 2_000;
    let plan = plan(31, vec![slow]);
    chaos::arm(&plan);
    let reg = Registry::new();
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(400));
    let eng = Engine::with_registry(
        EngineConfig {
            executors: 1,
            pool_threads: 1,
            ..EngineConfig::default()
        },
        csr,
        &reg,
    );
    let tickets: Vec<_> = (0..10)
        .filter_map(|_| {
            eng.submit(Query::Run {
                workload: Workload::KCore,
                source: 0,
            })
            .ok()
        })
        .collect();
    let submitted = tickets.len() as u64;
    drop(eng);
    chaos::disarm();
    for t in tickets {
        let r = t.wait();
        assert!(
            matches!(r.status, QueryStatus::Completed(_) | QueryStatus::Cancelled),
            "shutdown must complete or shed, got {:?}",
            r.status
        );
    }
    let snap = reg.snapshot();
    assert_eq!(snap["engine.resolved"], MetricValue::Counter(submitted));
    assert_eq!(snap["engine.double_resolve"], MetricValue::Counter(0));
}

#[test]
fn compaction_delay_mid_mix_holds_invariants_and_logs_the_lifecycle() {
    let _g = serial();
    use graphbig_engine::traffic::{generate_ops, live_engine_digest, mutation_oracle_digest};
    // Stretch every fold with a pre-materialize delay so queries and
    // mutations land inside the compaction window, then drive a
    // write-heavy mix against a low fold threshold.
    let mut slow_fold = fault("engine.compact.pre", Trigger::Always, FaultAction::Delay);
    slow_fold.delay_us = 3_000;
    let mut slow_write = fault("engine.mutate", Trigger::Probability, FaultAction::Delay);
    slow_write.p = 0.2;
    slow_write.delay_us = 200;
    let plan = plan(41, vec![slow_fold, slow_write]);
    let spec = MixSpec {
        seed: 6,
        requests: 500,
        clients: 4,
        point_weight: 45,
        traversal_weight: 5,
        analytics_weight: 0,
        write_weight: 50,
        ..MixSpec::default()
    };
    let reg = Registry::new();
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(300));
    let eng = Engine::with_registry(
        EngineConfig {
            executors: 2,
            pool_threads: 2,
            compact_threshold: 64,
            ..EngineConfig::default()
        },
        csr,
        &reg,
    );
    let base = eng.store().snapshot();
    let ops = generate_ops(&spec, base.graph().num_vertices() as u32);
    let expected = mutation_oracle_digest(base.graph(), &ops);
    let report = run_chaos_mix(&eng, &spec, &plan);
    assert!(
        report
            .fault_fired
            .iter()
            .any(|(label, n)| label.starts_with("engine.compact.pre") && *n > 0),
        "the fold delay must have fired: {:?}",
        report.fault_fired
    );
    // Let in-flight folds drain, then sweep every invariant — including
    // compaction lifecycle balance and mutation sequencing.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let snap = reg.snapshot();
        let started = match snap.get("engine.compact.started") {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        let completed = match snap.get("engine.compact.completed") {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        if started == completed && started > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "compactor never folded or never finished ({started}/{completed})"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let inv = check_chaos_invariants(&eng, &report, None, &reg);
    assert!(inv.ok(), "invariants violated:\n{}", inv.render());
    // Races notwithstanding, the final state equals the sequential oracle.
    assert_eq!(live_engine_digest(&eng), expected);
    // The flight recorder captured the compaction lifecycle.
    use graphbig_telemetry::recorder::{self, EventKind};
    let events = recorder::snapshot().events;
    let starts = events
        .iter()
        .filter(|e| e.kind == EventKind::CompactStart)
        .count();
    let ends = events
        .iter()
        .filter(|e| e.kind == EventKind::CompactEnd)
        .count();
    assert!(starts > 0, "CompactStart events recorded");
    assert!(ends > 0, "CompactEnd events recorded");
    assert!(
        events.iter().any(|e| e.kind == EventKind::Mutate),
        "Mutate events recorded"
    );
}

#[test]
fn stale_read_injection_is_caught_by_the_rebuild_oracle() {
    let _g = serial();
    use graphbig_engine::traffic::{resolve_write, WriteOp};
    use graphbig_engine::QueryOutput;
    let reg = Registry::new();
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(200));
    let eng = Engine::with_registry(
        EngineConfig {
            executors: 2,
            pool_threads: 2,
            // No cache: a stale read must not be able to hide behind (or
            // poison) a cached entry while the drill compares views.
            cache_capacity: 0,
            compact_threshold: 0,
            ..EngineConfig::default()
        },
        csr,
        &reg,
    );
    let base = eng.store().snapshot();
    let degree_of = |eng: &Engine| {
        let r = eng.submit(Query::Degree { vertex: 0 }).unwrap().wait();
        match r.status {
            QueryStatus::Completed(QueryOutput::Degree { out, .. }) => out,
            other => panic!("degree query failed: {other:?}"),
        }
    };
    let before = degree_of(&eng);
    // A guaranteed-fresh edge out of vertex 0, via the same resolution the
    // traffic driver uses.
    let batch = resolve_write(base.graph(), WriteOp::Insert { u: 0, salt: 0 });
    assert_eq!(batch.len(), 1);
    eng.mutate(&batch).unwrap();
    let overlay_view = degree_of(&eng);
    assert_eq!(overlay_view, before + 1, "overlay read sees the insert");

    // Inject StaleRead at every overlay read: the engine silently serves
    // the pinned base instead of the overlay.
    let drop_overlay = fault(
        "engine.overlay.read",
        Trigger::Always,
        FaultAction::StaleRead,
    );
    chaos::arm(&plan(51, vec![drop_overlay]));
    let stale_view = degree_of(&eng);
    let fired = chaos::fired_counts();
    chaos::disarm();
    assert!(
        fired
            .iter()
            .any(|(label, n)| label.starts_with("engine.overlay.read") && *n > 0),
        "the stale-read fault must have fired: {fired:?}"
    );
    assert_eq!(stale_view, before, "injection served the stale base");

    // The rebuild oracle catches it: a graph rebuilt from scratch with the
    // same mutation disagrees with the injected answer — exactly the
    // mismatch a digest comparison would flag.
    let rebuilt = eng.overlay().materialize(base.graph(), 4);
    let (rebuilt_out, _) = rebuilt.degree(0).unwrap();
    assert_eq!(rebuilt_out, before + 1);
    assert_ne!(
        stale_view, rebuilt_out,
        "stale read diverges from the rebuild oracle"
    );
    // With the fault disarmed the engine agrees with the oracle again.
    assert_eq!(degree_of(&eng), rebuilt_out);
}

/// A plan with `Trigger::Schedule` faults keyed to explicit chaos tags.
fn scheduled_plan(faults: Vec<(&str, FaultAction, Vec<u64>)>) -> FaultPlan {
    plan(
        11,
        faults
            .into_iter()
            .map(|(site, action, schedule)| {
                let mut f = fault(site, Trigger::Schedule, action);
                f.schedule = schedule;
                f
            })
            .collect(),
    )
}

/// Park the single executor behind a heavy analytics query so everything
/// submitted afterwards is still queued when the executor frees up — the
/// deterministic way to force a coalesced batch.
fn stall(engine: &Engine) -> graphbig_engine::Ticket {
    engine
        .submit(Query::Run {
            workload: Workload::KCore,
            source: 0,
        })
        .expect("stall query admitted")
}

#[test]
fn mid_batch_cancel_or_expiry_resolves_only_its_own_ticket() {
    let _g = serial();
    let reg = Registry::new();
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(2000));
    let eng = Engine::with_registry(
        EngineConfig {
            executors: 1,
            pool_threads: 2,
            queue_capacity: 128,
            ..EngineConfig::default()
        },
        csr,
        &reg,
    );
    // `engine.batch.form` fires at formation time for exactly two members:
    // one cancelled, one deadline-expired. Every other lane of the same
    // shared pass must complete untouched.
    chaos::arm(&scheduled_plan(vec![
        ("engine.batch.form", FaultAction::Cancel, vec![103]),
        ("engine.batch.form", FaultAction::DeadlineExpire, vec![105]),
    ]));
    let blocker = stall(&eng);
    let tickets: Vec<(u64, graphbig_engine::Ticket)> = (100u64..112)
        .map(|tag| {
            let t = eng
                .submit_tagged(
                    Query::Run {
                        workload: Workload::Bfs,
                        source: (tag as u32 - 100) * 41 % 2000,
                    },
                    None,
                    tag,
                )
                .expect("admitted");
            (tag, t)
        })
        .collect();
    let _ = blocker.wait();
    for (tag, ticket) in tickets {
        let r = ticket.wait();
        match tag {
            103 => assert_eq!(r.status, QueryStatus::Cancelled, "tag 103"),
            105 => assert_eq!(r.status, QueryStatus::DeadlineExceeded, "tag 105"),
            _ => assert!(
                matches!(r.status, QueryStatus::Completed(_)),
                "tag {tag}: a neighbour's mid-batch fault leaked: {:?}",
                r.status
            ),
        }
    }
    let fired = chaos::fired_counts();
    chaos::disarm();
    // Exactly-once held across the fan-out: no ticket was resolved twice.
    assert_eq!(
        reg.snapshot()["engine.double_resolve"],
        MetricValue::Counter(0)
    );
    for label in [
        "engine.batch.form.Cancel",
        "engine.batch.form.DeadlineExpire",
    ] {
        assert!(
            fired.iter().any(|(l, n)| l == label && *n == 1),
            "{label} must fire exactly once: {fired:?}"
        );
    }
}

#[test]
fn fanout_double_resolve_is_absorbed_by_the_one_shot_resolver() {
    let _g = serial();
    let reg = Registry::new();
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(2000));
    let eng = Engine::with_registry(
        EngineConfig {
            executors: 1,
            pool_threads: 2,
            ..EngineConfig::default()
        },
        csr,
        &reg,
    );
    chaos::arm(&scheduled_plan(vec![(
        "engine.batch.fanout",
        FaultAction::DoubleResolve,
        vec![204],
    )]));
    let blocker = stall(&eng);
    let tickets: Vec<graphbig_engine::Ticket> = (200u64..208)
        .map(|tag| {
            eng.submit_tagged(
                Query::Run {
                    workload: Workload::Bfs,
                    source: (tag as u32 - 200) * 59 % 2000,
                },
                None,
                tag,
            )
            .expect("admitted")
        })
        .collect();
    let _ = blocker.wait();
    for t in tickets {
        // Every ticket — including the double-resolved one — receives
        // exactly one response; the second delivery loses the CAS.
        assert!(matches!(t.wait().status, QueryStatus::Completed(_)));
    }
    let fired = chaos::fired_counts();
    chaos::disarm();
    assert_eq!(
        reg.snapshot()["engine.double_resolve"],
        MetricValue::Counter(1),
        "the injected fan-out double resolve is counted, not delivered"
    );
    assert!(
        fired
            .iter()
            .any(|(l, n)| l == "engine.batch.fanout.DoubleResolve" && *n == 1),
        "the fan-out fault must fire exactly once: {fired:?}"
    );
}

#[test]
fn bfs_heavy_mix_under_batch_faults_holds_every_invariant() {
    let _g = serial();
    // The batch fault plan from the issue: formation-time cancels raining
    // on a BFS-heavy mix with enough concurrent clients that coalescing is
    // constantly engaged. All nine invariants — including the sequential
    // oracle over every completed digest and resolved-exactly-once — must
    // hold.
    let mut form = fault(
        "engine.batch.form",
        Trigger::Probability,
        FaultAction::Cancel,
    );
    form.p = 0.3;
    let plan = plan(23, vec![form]);
    let spec = MixSpec {
        requests: 60,
        clients: 8,
        point_weight: 20,
        traversal_weight: 70,
        analytics_weight: 10,
        ..MixSpec::default()
    };
    let reg = Registry::new();
    let eng = engine(2000, &reg);
    let report = run_checked(&eng, &spec, &plan, &reg);
    let completed: u64 = report.classes.iter().map(|c| c.completed).sum();
    assert!(completed > 0, "the mix must still make progress");
    // Coalescing engaged under fire: batches formed and were measured.
    assert!(
        reg.histogram("engine.batch.size").snapshot().count >= 1,
        "no batch formed during a BFS-heavy 8-client mix"
    );
}
