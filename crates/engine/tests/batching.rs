//! Batch-equivalence suite: coalesced MS-BFS vs the sequential oracle.
//!
//! The batcher's whole contract is *transparency* — a request that rode a
//! shared 64-lane pass must be indistinguishable (digest-level) from the
//! same request run alone. These tests pin that contract at both layers:
//!
//! * **Kernel**: for seeded random graphs and source sets, every lane of
//!   [`msbfs`] is bit-identical to the [`parallel::bfs`] per-source
//!   oracle — including duplicate sources, out-of-range sources, and the
//!   boundary batch sizes 1, 63, 64, and 65 (the last straddling two
//!   passes).
//! * **Engine**: a queued BFS storm through the coalescing executor path
//!   fans results back to individual tickets whose digests match a
//!   sequential [`service::run_service`] replay, while the flight
//!   recorder shows the `BatchStart`/`BatchJoin` lifecycle and the
//!   `engine.batch.*` metrics land in the registry.

use graphbig_datagen::prop::{self, Config};
use graphbig_datagen::rng::Rng;
use graphbig_datagen::Dataset;
use graphbig_engine::{Engine, EngineConfig, Query, QueryOutput, QueryStatus, Ticket};
use graphbig_framework::csr::Csr;
use graphbig_runtime::{CancelToken, ThreadPool};
use graphbig_telemetry::metrics::Registry;
use graphbig_telemetry::recorder::{self, EventKind};
use graphbig_workloads::msbfs::{msbfs, MSBFS_LANES};
use graphbig_workloads::service::{self, ServiceOutput};
use graphbig_workloads::{parallel, Workload};

/// A seeded random directed graph: `n` vertices, ~`2n` distinct non-loop
/// edges (the same shape the metamorphic suite uses).
fn random_edges(rng: &mut Rng) -> (usize, Vec<(u32, u32, f32)>) {
    let n = 8 + rng.u64_below(120) as usize;
    let target = 2 * n;
    let mut seen = std::collections::BTreeSet::new();
    let mut edges = Vec::new();
    for _ in 0..4 * target {
        if edges.len() >= target {
            break;
        }
        let u = rng.u64_below(n as u64) as u32;
        let v = rng.u64_below(n as u64) as u32;
        if u == v || !seen.insert((u, v)) {
            continue;
        }
        edges.push((u, v, 1.0));
    }
    (n, edges)
}

fn digest(levels: &[i64]) -> u64 {
    ServiceOutput::Levels(levels.to_vec()).digest()
}

#[test]
fn every_lane_of_a_batched_pass_matches_the_sequential_oracle() {
    let pool = ThreadPool::new(4);
    prop::check(
        "msbfs_batch_equivalence",
        Config::with_cases(10),
        |rng: &mut Rng| rng.next_u64(),
        |&seed: &u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let (n, edges) = random_edges(&mut rng);
            let csr = Csr::from_edges(n, &edges);
            let lanes = 1 + rng.u64_below(MSBFS_LANES as u64) as usize;
            let sources: Vec<u32> = (0..lanes)
                .map(|_| {
                    // ~1 in 8 sources lands out of range; in-range draws
                    // collide into duplicates on small graphs.
                    if rng.u64_below(8) == 0 {
                        n as u32 + rng.u64_below(9) as u32
                    } else {
                        rng.u64_below(n as u64) as u32
                    }
                })
                .collect();
            let batched = msbfs(&pool, &csr, &sources);
            assert_eq!(batched.len(), sources.len());
            // The direction-optimized pass (what the engine runs) must be
            // bit-identical to the push-only pass on every lane.
            let bi = graphbig_framework::csr::BiCsr::directed(csr.clone());
            assert_eq!(
                graphbig_workloads::msbfs::msbfs_dir_opt(&pool, &bi, &sources),
                batched,
                "pull phase perturbed a lane"
            );
            for (l, &s) in sources.iter().enumerate() {
                let (solo, _) = parallel::bfs(&pool, &csr, s);
                assert_eq!(
                    digest(&batched[l]),
                    digest(&solo),
                    "lane {l}/{lanes} (source {s}) digest diverged from the oracle"
                );
                assert_eq!(batched[l], solo, "lane {l} levels diverged bitwise");
            }
        },
    );
}

#[test]
fn boundary_batch_sizes_match_the_oracle() {
    let pool = ThreadPool::new(2);
    let n = 300u32;
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n as usize));
    // 1 = degenerate batch, 63/64 = the lane-width boundary, 65 = two
    // passes. Sources spread over 0..320 so a few are out of range; an
    // explicit duplicate rides every batch big enough to hold one.
    for lanes in [1usize, 63, 64, 65] {
        let mut sources: Vec<u32> = (0..lanes).map(|i| (i as u32 * 97 + 250) % 320).collect();
        if lanes >= 4 {
            sources[3] = sources[0];
        }
        let batched = msbfs(&pool, &csr, &sources);
        for (l, &s) in sources.iter().enumerate() {
            let (solo, _) = parallel::bfs(&pool, &csr, s);
            if s >= n {
                assert!(solo.is_empty(), "oracle contract changed");
                assert!(batched[l].is_empty(), "out-of-range lane {l} not empty");
            }
            assert_eq!(
                digest(&batched[l]),
                digest(&solo),
                "batch size {lanes}, lane {l} (source {s}) diverged"
            );
        }
        if lanes >= 4 {
            assert_eq!(batched[3], batched[0], "duplicate lanes must agree");
        }
    }
}

#[test]
fn cancelling_one_lane_mid_pass_leaves_every_other_lane_exact() {
    use graphbig_workloads::msbfs::msbfs_cancellable;
    let pool = ThreadPool::new(2);
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(500));
    let sources: Vec<u32> = (0..16u32).map(|i| i * 29 % 500).collect();
    let tokens: Vec<CancelToken> = sources.iter().map(|_| CancelToken::new()).collect();
    tokens[5].cancel();
    tokens[11].cancel();
    let refs: Vec<&CancelToken> = tokens.iter().collect();
    let out = msbfs_cancellable(&pool, &csr, &sources, &refs);
    for (l, &s) in sources.iter().enumerate() {
        if l == 5 || l == 11 {
            assert!(out[l].is_err(), "fired lane {l} must retire cancelled");
        } else {
            let (solo, _) = parallel::bfs(&pool, &csr, s);
            assert_eq!(
                out[l].as_ref().expect("live lane completes"),
                &solo,
                "lane {l} perturbed by a neighbour's cancellation"
            );
        }
    }
}

/// Drive a queued BFS storm through the engine's coalescing path and
/// check every fanned-out ticket against the sequential oracle.
#[test]
fn engine_fans_batched_results_back_to_tickets_bit_identical() {
    let reg = Registry::new();
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(2000));
    let oracle_graph = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(2000));
    let engine = Engine::with_registry(
        EngineConfig {
            executors: 1,
            pool_threads: 2,
            cache_capacity: 0, // force every request through a kernel
            queue_capacity: 256,
            ..EngineConfig::default()
        },
        csr,
        &reg,
    );
    // Distinct sources plus two out-of-range ones: the whole set queues
    // behind the single executor, so coalescing must engage.
    let queries: Vec<Query> = (0..40u32)
        .map(|i| Query::Run {
            workload: Workload::Bfs,
            source: if i >= 38 { 5000 + i } else { i * 37 % 2000 },
        })
        .collect();
    let tickets: Vec<(Query, Ticket)> = queries
        .iter()
        .map(|&q| (q, engine.submit(q).expect("admitted")))
        .collect();
    let pool = engine.pool().clone();
    let service_graph = graphbig_workloads::service::ServiceGraph::build(oracle_graph);
    let mut rids = Vec::new();
    for (query, ticket) in tickets {
        rids.push(ticket.request_id());
        let response = ticket.wait();
        let QueryStatus::Completed(output) = response.status else {
            panic!("BFS request did not complete: {:?}", response.status);
        };
        let Query::Run { source, .. } = query else {
            unreachable!()
        };
        let oracle = service::run_service(
            Workload::Bfs,
            &pool,
            &service_graph,
            source,
            &CancelToken::never(),
        )
        .expect("oracle run");
        assert_eq!(
            output.digest(),
            QueryOutput::Workload(oracle).digest(),
            "batched result for source {source} diverged from sequential oracle"
        );
    }
    // The coalescing actually happened: batch metrics recorded, and the
    // flight recorder shows a leader with joiners pointing at it.
    let sizes = reg.histogram("engine.batch.size").snapshot();
    assert!(sizes.count >= 1, "no batch ever formed");
    assert!(
        sizes.quantile(1.0) >= 2,
        "formed batches must have >= 2 members"
    );
    let events = recorder::snapshot().events;
    let starts: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::BatchStart && rids.contains(&e.id))
        .map(|e| e.id)
        .collect();
    let joins: Vec<(u64, u64)> = events
        .iter()
        .filter(|e| e.kind == EventKind::BatchJoin && rids.contains(&e.id))
        .map(|e| (e.id, e.arg))
        .collect();
    assert!(!starts.is_empty(), "no BatchStart recorded");
    assert!(!joins.is_empty(), "no BatchJoin recorded");
    for (rid, leader) in &joins {
        assert!(
            starts.contains(leader),
            "request {rid} joined leader {leader} with no BatchStart"
        );
    }
    // Per-request lifecycle stays exactly-once under batching.
    for rid in rids {
        for kind in [EventKind::Dequeue, EventKind::Run, EventKind::Resolve] {
            let n = events
                .iter()
                .filter(|e| e.kind == kind && e.id == rid)
                .count();
            assert_eq!(n, 1, "request {rid}: {} seen {n} times", kind.name());
        }
    }
}

/// `batch_max: 1` disables coalescing outright — same results, no batch
/// metrics, no batch lifecycle events.
#[test]
fn batch_max_one_disables_coalescing() {
    let reg = Registry::new();
    let csr = Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(500));
    let engine = Engine::with_registry(
        EngineConfig {
            executors: 1,
            pool_threads: 2,
            cache_capacity: 0,
            batch_max: 1,
            ..EngineConfig::default()
        },
        csr,
        &reg,
    );
    let tickets: Vec<Ticket> = (0..12u32)
        .map(|i| {
            engine
                .submit(Query::Run {
                    workload: Workload::Bfs,
                    source: i * 17 % 500,
                })
                .expect("admitted")
        })
        .collect();
    for t in tickets {
        assert!(matches!(t.wait().status, QueryStatus::Completed(_)));
    }
    assert_eq!(
        reg.histogram("engine.batch.size").snapshot().count,
        0,
        "batching disabled yet a batch formed"
    );
}
