//! A small self-contained JSON value, writer, and parser.
//!
//! The workspace must emit and *round-trip* machine-readable output (run
//! manifests, Chrome traces, reports, configs) in every build environment,
//! so it carries its own JSON implementation instead of depending on
//! `serde_json`. The subset is complete for everything the suite produces:
//! objects preserve insertion order, numbers are `f64` (integers up to 2^53
//! survive exactly), and strings are escaped per RFC 8259.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The member list, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Object members as a sorted map (for order-insensitive comparison).
    pub fn obj_map(&self) -> Option<BTreeMap<&str, &Json>> {
        match self {
            Json::Obj(m) => Some(m.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the least-surprising encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        // `{:?}` prints the shortest representation that round-trips f64.
        let _ = fmt::Write::write_fmt(out, format_args!("{n:?}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        // self.pos is at the 'u'
        let hex4 = |p: &mut Self| -> Result<u32, ParseError> {
            p.pos += 1; // past 'u'
            if p.pos + 4 > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..p.pos + 4])
                .map_err(|_| p.err("bad \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("bad \\u escape"))?;
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // surrogate pair: expect \uXXXX low surrogate
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    let lo = hex4(self)?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }
}

/// Convenience: an object builder preserving insertion order.
#[derive(Debug, Default)]
pub struct ObjBuilder(Vec<(String, Json)>);

impl ObjBuilder {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a member.
    pub fn push(mut self, key: &str, value: Json) -> Self {
        self.0.push((key.to_string(), value));
        self
    }

    /// Append a member only when `value` is `Some`.
    pub fn push_opt(self, key: &str, value: Option<Json>) -> Self {
        match value {
            Some(v) => self.push(key, v),
            None => self,
        }
    }

    /// Finish into a [`Json::Obj`].
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("bfs \"dir-opt\"\n".into())),
            ("n".into(), Json::Num(65536.0)),
            ("rate".into(), Json::Num(0.125)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "levels".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Num(3.0)]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn integers_round_trip_exactly() {
        let big = 9_007_199_254_740_992u64; // 2^53
        let doc = Json::Num(big as f64);
        let text = doc.to_compact();
        assert_eq!(text, "9007199254740992");
        assert_eq!(parse(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\tbé😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\tb\u{e9}\u{1F600}");
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse(r#"{"a": {"b": [10, "x"]}}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(10));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn negative_and_exponent_numbers_parse() {
        assert_eq!(parse("-2.5e2").unwrap().as_f64(), Some(-250.0));
        assert_eq!(parse("-7").unwrap().as_f64(), Some(-7.0));
    }
}
