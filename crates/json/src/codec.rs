//! The [`ToJson`] / [`FromJson`] codec: the workspace's replacement for
//! `serde::{Serialize, Deserialize}`.
//!
//! Types opt in with the [`json_struct!`](crate::json_struct) /
//! [`json_enum!`](crate::json_enum) macros (invoked next to the type
//! definition, so private fields stay private) or with hand-written impls
//! for the few shapes that need custom encodings (payload-carrying enums,
//! defaulted fields).
//!
//! Encoding conventions match what `serde_json` produced for the same
//! derives, so previously committed artifacts keep parsing:
//!
//! * structs → objects with one member per field, in declaration order;
//! * unit enums → the variant name as a string;
//! * payload enums → externally tagged objects (`{"Int": 5}`);
//! * tuples → fixed-length arrays;
//! * `Option` → `null` or the payload;
//! * non-finite floats → `null` on write, and `null` reads back as `NaN`
//!   (the policy the telemetry manifests have always used).
//!
//! Integers are carried in `f64`, exact up to 2^53 — beyond every counter
//! the suite produces.

use crate::value::Json;
use std::fmt;

/// Serialize into a [`Json`] tree.
pub trait ToJson {
    /// The JSON encoding of `self`.
    fn to_json(&self) -> Json;
}

/// Deserialize from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Decode `v`, reporting the first mismatch as a [`DecodeError`].
    fn from_json(v: &Json) -> Result<Self, DecodeError>;
}

/// A decode mismatch: what was expected, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Dotted path from the document root to the offending node.
    pub path: String,
    /// What went wrong there.
    pub message: String,
}

impl DecodeError {
    /// A root-level error (helpers prepend path segments as it bubbles up).
    pub fn new(message: impl Into<String>) -> Self {
        DecodeError {
            path: String::from("$"),
            message: message.into(),
        }
    }

    /// Return the error with `segment` prepended to the path.
    pub fn in_field(mut self, segment: &str) -> Self {
        self.path = if self.path == "$" {
            format!("$.{segment}")
        } else {
            format!("$.{segment}{}", &self.path[1..])
        };
        self
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON decode error at {}: {}", self.path, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Decode member `key` of object `v`.
pub fn field<T: FromJson>(v: &Json, key: &str) -> Result<T, DecodeError> {
    match v.get(key) {
        Some(member) => T::from_json(member).map_err(|e| e.in_field(key)),
        None => Err(DecodeError::new(format!("missing field '{key}'"))),
    }
}

/// Decode member `key` of object `v`, falling back to `T::default()` when
/// absent (the `#[serde(default)]` replacement for schema evolution).
pub fn field_or_default<T: FromJson + Default>(v: &Json, key: &str) -> Result<T, DecodeError> {
    match v.get(key) {
        Some(member) => T::from_json(member).map_err(|e| e.in_field(key)),
        None => Ok(T::default()),
    }
}

/// Render any [`ToJson`] type as a compact JSON string.
pub fn to_compact<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact()
}

/// Render any [`ToJson`] type as pretty-printed JSON.
pub fn to_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty()
}

/// Parse a JSON string straight into any [`FromJson`] type.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, DecodeError> {
    let v = crate::value::parse(text).map_err(|e| DecodeError::new(e.to_string()))?;
    T::from_json(&v)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(DecodeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DecodeError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match v {
            Json::Num(n) => Ok(*n),
            // Non-finite floats are written as null; read them back as NaN.
            Json::Null => Ok(f64::NAN),
            other => Err(DecodeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        f64::from_json(v).map(|n| n as f32)
    }
}

macro_rules! int_codec {
    ($($t:ty),+) => {
        $(
            impl ToJson for $t {
                fn to_json(&self) -> Json {
                    Json::Num(*self as f64)
                }
            }

            impl FromJson for $t {
                fn from_json(v: &Json) -> Result<Self, DecodeError> {
                    let n = v
                        .as_f64()
                        .ok_or_else(|| DecodeError::new("expected integer"))?;
                    if n.fract() != 0.0 {
                        return Err(DecodeError::new(format!("expected integer, got {n}")));
                    }
                    if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                        return Err(DecodeError::new(format!(
                            "integer {n} out of range for {}",
                            stringify!($t)
                        )));
                    }
                    Ok(n as $t)
                }
            }
        )+
    };
}

int_codec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        let items = v
            .as_arr()
            .ok_or_else(|| DecodeError::new("expected array"))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.in_field(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T
where
    T: ?Sized,
{
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match v.as_arr() {
            Some([a, b]) => Ok((
                A::from_json(a).map_err(|e| e.in_field("[0]"))?,
                B::from_json(b).map_err(|e| e.in_field("[1]"))?,
            )),
            _ => Err(DecodeError::new("expected 2-element array")),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((
                A::from_json(a).map_err(|e| e.in_field("[0]"))?,
                B::from_json(b).map_err(|e| e.in_field("[1]"))?,
                C::from_json(c).map_err(|e| e.in_field("[2]"))?,
            )),
            _ => Err(DecodeError::new("expected 3-element array")),
        }
    }
}

/// Implement [`ToJson`] and [`FromJson`] for a struct, one object member
/// per listed field in declaration order (the `serde` derive convention).
///
/// Invoke next to the type definition so private fields resolve:
///
/// ```
/// use graphbig_json::{json_struct, FromJson, ToJson};
///
/// #[derive(Debug, PartialEq)]
/// struct Point {
///     x: f64,
///     y: f64,
/// }
/// json_struct!(Point { x, y });
///
/// let p = Point { x: 1.0, y: 2.0 };
/// let round = Point::from_json(&p.to_json()).unwrap();
/// assert_eq!(round, p);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }

        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> ::core::result::Result<Self, $crate::DecodeError> {
                Ok($name {
                    $($field: $crate::codec::field(v, stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implement only [`ToJson`] for a struct — for types whose fields cannot
/// be reconstructed from parsed text (e.g. `&'static str` metadata tables).
#[macro_export]
macro_rules! json_struct_to {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

/// Implement [`ToJson`] and [`FromJson`] for a unit-variant enum, encoded
/// as the variant name string (the `serde` derive convention).
#[macro_export]
macro_rules! json_enum {
    ($name:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $($name::$variant => $crate::Json::Str(stringify!($variant).to_string()),)+
                }
            }
        }

        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> ::core::result::Result<Self, $crate::DecodeError> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($name::$variant),)+
                    Some(other) => Err($crate::DecodeError::new(format!(
                        "unknown {} variant '{other}'",
                        stringify!($name)
                    ))),
                    None => Err($crate::DecodeError::new(format!(
                        "expected {} variant string",
                        stringify!($name)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Default)]
    struct Inner {
        label: String,
        weight: f32,
    }
    json_struct!(Inner { label, weight });

    #[derive(Debug, PartialEq)]
    struct Outer {
        id: u64,
        inner: Inner,
        tags: Vec<String>,
        maybe: Option<i64>,
        pair: (u32, f64),
    }
    json_struct!(Outer {
        id,
        inner,
        tags,
        maybe,
        pair
    });

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Kind {
        Alpha,
        Beta,
    }
    json_enum!(Kind { Alpha, Beta });

    fn outer() -> Outer {
        Outer {
            id: 42,
            inner: Inner {
                label: "a \"quoted\"\nlabel".into(),
                weight: 2.5,
            },
            tags: vec!["x".into(), "y".into()],
            maybe: None,
            pair: (7, 0.125),
        }
    }

    #[test]
    fn struct_round_trip_through_text() {
        let v = outer();
        let text = to_pretty(&v);
        let back: Outer = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn enum_round_trip_uses_variant_names() {
        assert_eq!(to_compact(&Kind::Alpha), "\"Alpha\"");
        assert_eq!(from_str::<Kind>("\"Beta\"").unwrap(), Kind::Beta);
        assert!(from_str::<Kind>("\"Gamma\"").is_err());
    }

    #[test]
    fn missing_field_reports_path() {
        let err = from_str::<Outer>("{\"id\": 1}").unwrap_err();
        assert!(err.message.contains("missing field"), "{err}");
    }

    #[test]
    fn nested_error_paths_point_at_the_node() {
        let text = r#"{"id": 1, "inner": {"label": "x", "weight": "oops"},
                       "tags": [], "maybe": null, "pair": [1, 2.0]}"#;
        let err = from_str::<Outer>(text).unwrap_err();
        assert_eq!(err.path, "$.inner.weight");
    }

    #[test]
    fn defaulted_field_tolerates_absence() {
        let v = crate::value::parse("{}").unwrap();
        let inner: Inner = field_or_default(&v, "gone").unwrap();
        assert_eq!(inner, Inner::default());
    }

    #[test]
    fn option_and_nan_policy() {
        assert_eq!(to_compact(&Option::<u64>::None), "null");
        assert_eq!(to_compact(&Some(3u64)), "3");
        // Non-finite writes null; null reads back as NaN.
        assert_eq!(to_compact(&f64::INFINITY), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn integers_reject_fractions_and_overflow() {
        assert!(from_str::<u32>("1.5").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u64>("-1").is_err());
        assert_eq!(from_str::<i64>("-9007199254740992").unwrap(), -(1 << 53));
    }
}
