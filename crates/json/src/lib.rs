//! # graphbig-json
//!
//! The workspace's shared, dependency-free serialization layer.
//!
//! Grown out of the telemetry crate's hand-rolled JSON writer (which proved
//! the pattern: machine-readable output that works in *every* build
//! environment, including fully offline ones), this crate now carries:
//!
//! * [`Json`] — the document model, writer ([`Json::to_compact`] /
//!   [`Json::to_pretty`]) and parser ([`parse`]);
//! * [`ToJson`] / [`FromJson`] — the codec traits every serializable type
//!   in the suite implements, replacing `serde::{Serialize, Deserialize}`;
//! * [`json_struct!`] / [`json_enum!`] / [`json_struct_to!`] — macros that
//!   generate the codec impls next to a type definition, mirroring what
//!   `#[derive(Serialize, Deserialize)]` produced so committed artifacts
//!   keep parsing.
//!
//! Everything is std-only by design: the tier-1 gate builds offline, and
//! `scripts/check_hermetic.sh` enforces that no external crate sneaks back
//! into the dependency graph.

#![warn(missing_docs)]

pub mod codec;
pub mod value;

pub use codec::{
    field, field_or_default, from_str, to_compact, to_pretty, DecodeError, FromJson, ToJson,
};
pub use value::{parse, Json, ObjBuilder, ParseError};
