//! Round-trip suite for the in-tree JSON layer: escape sequences, the
//! non-finite-float policy, nested struct/enum codecs — and a pin against
//! the committed `results/golden_fig05.json` manifest, so the codec that
//! replaced serde provably still reads the artifacts serde wrote.

use graphbig_json::{from_str, json_enum, json_struct, parse, to_compact, to_pretty, Json, ToJson};

fn reparse(v: &Json) -> Json {
    parse(&v.to_compact()).expect("writer output must reparse")
}

#[test]
fn escape_sequences_round_trip() {
    let cases = [
        "plain",
        "with \"quotes\" inside",
        "back\\slash",
        "line\nbreak\ttab\rreturn",
        "control \u{1} \u{1f} chars",
        "null byte \u{0} embedded",
        "unicode: \u{e9}\u{4e2d}\u{6587} \u{1f600}",
        "",
    ];
    for s in cases {
        let json = s.to_json().to_compact();
        let back = parse(&json).unwrap();
        assert_eq!(back.as_str(), Some(s), "through {json}");
    }
}

#[test]
fn parser_accepts_standard_escapes() {
    let v = parse(r#""aA\n\t\\\"\/\b\f\r""#).unwrap();
    assert_eq!(v.as_str(), Some("aA\n\t\\\"/\u{8}\u{c}\r"));
}

#[test]
fn non_finite_floats_write_null_and_read_nan() {
    // Policy (inherited from the serde_json defaults the artifacts were
    // written with): NaN and infinities serialize as null; null decodes
    // back to NaN for floats.
    assert_eq!(f64::NAN.to_json().to_compact(), "null");
    assert_eq!(f64::INFINITY.to_json().to_compact(), "null");
    assert_eq!(f64::NEG_INFINITY.to_json().to_compact(), "null");
    let back: f64 = from_str("null").unwrap();
    assert!(back.is_nan());
    let finite: f64 = from_str("-2.5e3").unwrap();
    assert_eq!(finite, -2500.0);
}

#[derive(Debug, Clone, PartialEq)]
struct Inner {
    label: String,
    weight: f64,
    tags: Vec<String>,
}

json_struct!(Inner {
    label,
    weight,
    tags
});

#[derive(Debug, Clone, PartialEq)]
enum Kind {
    Alpha,
    Beta,
}

json_enum!(Kind { Alpha, Beta });

#[derive(Debug, Clone, PartialEq)]
struct Outer {
    kind: Kind,
    items: Vec<Inner>,
    limit: Option<u64>,
    counts: Vec<usize>,
}

json_struct!(Outer {
    kind,
    items,
    limit,
    counts
});

#[test]
fn nested_structs_round_trip() {
    let value = Outer {
        kind: Kind::Beta,
        items: vec![
            Inner {
                label: "first \"quoted\"".into(),
                weight: 0.25,
                tags: vec!["a".into(), "b\nc".into()],
            },
            Inner {
                label: String::new(),
                weight: -1.5e-3,
                tags: Vec::new(),
            },
        ],
        limit: None,
        counts: vec![0, 1, usize::from(u16::MAX)],
    };
    for text in [to_compact(&value), to_pretty(&value)] {
        let back: Outer = from_str(&text).unwrap();
        assert_eq!(back, value, "through {text}");
    }
}

#[test]
fn unit_enums_encode_as_variant_strings() {
    assert_eq!(to_compact(&Kind::Alpha), "\"Alpha\"");
    let back: Kind = from_str("\"Beta\"").unwrap();
    assert_eq!(back, Kind::Beta);
    assert!(from_str::<Kind>("\"Gamma\"").is_err());
}

#[test]
fn golden_manifest_parses_and_round_trips() {
    // The golden manifest was committed before the serde -> graphbig-json
    // migration; it must keep parsing, and writing it back out must be a
    // fixed point (parse . write . parse = parse).
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/golden_fig05.json"
    );
    let text = std::fs::read_to_string(path).expect("committed golden manifest");
    let v = parse(&text).expect("golden manifest parses");
    assert_eq!(
        v.get("schema").and_then(Json::as_str),
        Some("graphbig.run_manifest/v1")
    );
    for key in ["bin", "features", "params", "metrics", "tables", "notes"] {
        assert!(v.get(key).is_some(), "golden manifest key {key}");
    }
    assert_eq!(reparse(&v), v);
    // pretty printing is also a fixed point
    assert_eq!(parse(&v.to_pretty()).unwrap(), v);
}
