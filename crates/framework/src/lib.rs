//! # graphbig-framework
//!
//! The graph substrate of GraphBIG-RS: an abstraction of the IBM System G
//! industrial framework as described in *GraphBIG: Understanding Graph
//! Computing in the Context of Industrial Solutions* (SC '15).
//!
//! The central type is [`PropertyGraph`], a **dynamic, vertex-centric**
//! property graph: each vertex is an individually heap-allocated structure
//! that holds its properties *and* its outgoing edge list, and all vertices
//! are reachable through a hash index ([`index::VertexIndex`]). This is the
//! data representation of Figure 2(c) in the paper, and the scattered heap
//! layout it produces is exactly what the paper's CPU characterization
//! studies.
//!
//! Static, compact representations — [`csr::Csr`] and [`coo::Coo`], Figure
//! 2(b) — are produced from a `PropertyGraph` by the "graph populating" step
//! ([`csr::Csr::from_graph`]), mirroring how the paper transfers dynamic
//! CPU-side graphs to the GPU.
//!
//! Every framework primitive (find/add/delete vertex/edge, neighbor
//! traversal, property update) is *instrumented*: it reports loads, stores,
//! branches, ALU work and code-region switches to a generic [`trace::Tracer`].
//! [`trace::NullTracer`] is a zero-sized no-op so uninstrumented runs compile
//! to plain code; the `graphbig-machine` and `graphbig-simt` crates provide
//! tracers that model CPU and GPU hardware.
//!
//! ```
//! use graphbig_framework::prelude::*;
//!
//! let mut g = PropertyGraph::new();
//! let a = g.add_vertex();
//! let b = g.add_vertex();
//! g.add_edge(a, b, 1.0).unwrap();
//! assert_eq!(g.out_degree(a), Some(1));
//! ```

#![warn(missing_docs)]

pub mod bitmap;
pub mod coo;
pub mod csr;
pub mod error;
pub mod graph;
pub mod index;
pub mod property;
pub mod snapshot;
pub mod stats;
pub mod trace;
pub mod types;
pub mod vertex;

pub use error::GraphError;
pub use graph::PropertyGraph;
pub use types::{ComputationType, DataSource, VertexId};

/// Convenient glob import for downstream users.
pub mod prelude {
    pub use crate::bitmap::AtomicBitmap;
    pub use crate::coo::Coo;
    pub use crate::csr::{BiCsr, Csr};
    pub use crate::error::GraphError;
    pub use crate::graph::PropertyGraph;
    pub use crate::property::{Property, PropertyKey, PropertyMap};
    pub use crate::stats::GraphStats;
    pub use crate::trace::{CountingTracer, NullTracer, Region, Tracer};
    pub use crate::types::{ComputationType, DataSource, VertexId};
    pub use crate::vertex::{Edge, Vertex};
}
