//! Core identifier types and the paper's two taxonomies (Tables 1 and 2).

use graphbig_json::json_enum;

/// Identifier of a vertex in a [`crate::PropertyGraph`].
///
/// Vertex ids are stable across structural updates: deleting a vertex never
/// renumbers the others, which is what lets workloads on *dynamic* graphs
/// (the paper's CompDyn category) hold ids across mutations.
pub type VertexId = u64;

/// Graph computation types, Table 1 of the paper.
///
/// Every workload in `graphbig-workloads` is tagged with one of these; the
/// Figure 5–8 harnesses group results by this tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComputationType {
    /// Computation on the graph structure: irregular access pattern, heavy
    /// read accesses (e.g. BFS traversal).
    CompStruct,
    /// Computation on graphs with rich properties: heavy numeric operations
    /// on properties (e.g. belief propagation, Gibbs inference).
    CompProp,
    /// Computation on dynamic graphs: structural updates, dynamic memory
    /// footprint (e.g. streaming graph construction).
    CompDyn,
}

impl ComputationType {
    /// Short name used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            ComputationType::CompStruct => "CompStruct",
            ComputationType::CompProp => "CompProp",
            ComputationType::CompDyn => "CompDyn",
        }
    }

    /// All three types in presentation order.
    pub const ALL: [ComputationType; 3] = [
        ComputationType::CompStruct,
        ComputationType::CompProp,
        ComputationType::CompDyn,
    ];
}

json_enum!(ComputationType {
    CompStruct,
    CompProp,
    CompDyn,
});

impl std::fmt::Display for ComputationType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Graph data sources, Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataSource {
    /// Type 1: social/economic/political network — large connected
    /// components, small shortest-path lengths (e.g. the Twitter graph).
    Social,
    /// Type 2: information/knowledge network — large vertex degrees, large
    /// small-hop neighbourhoods (e.g. a knowledge graph).
    Information,
    /// Type 3: nature/bio/cognitive network — complex properties, structured
    /// topology (e.g. a gene network).
    Nature,
    /// Type 4: man-made technology network — regular topology, small vertex
    /// degrees (e.g. a road network).
    ManMade,
    /// Synthetic data with tunable size (e.g. the LDBC generator output).
    Synthetic,
}

impl DataSource {
    /// The paper's "Type N" label (synthetic graphs have no number).
    pub fn type_label(self) -> &'static str {
        match self {
            DataSource::Social => "Type 1",
            DataSource::Information => "Type 2",
            DataSource::Nature => "Type 3",
            DataSource::ManMade => "Type 4",
            DataSource::Synthetic => "Synthetic",
        }
    }

    /// Human-readable source-family name.
    pub fn family(self) -> &'static str {
        match self {
            DataSource::Social => "Social(/economic/political) network",
            DataSource::Information => "Information(/knowledge) network",
            DataSource::Nature => "Nature(/bio/cognitive) network",
            DataSource::ManMade => "Man-made technology network",
            DataSource::Synthetic => "Synthetic data",
        }
    }

    /// The key topological/property feature the paper attributes to this
    /// source family (Table 2, "Feature" column).
    pub fn feature(self) -> &'static str {
        match self {
            DataSource::Social => "Large connected components, small shortest path lengths",
            DataSource::Information => "Large vertex degrees, large small-hop neighbourhoods",
            DataSource::Nature => "Complex properties, structured topology",
            DataSource::ManMade => "Regular topology, small vertex degrees",
            DataSource::Synthetic => "Arbitrary size, social-network-like features",
        }
    }

    /// All five sources in Table 2 order (synthetic last).
    pub const ALL: [DataSource; 5] = [
        DataSource::Social,
        DataSource::Information,
        DataSource::Nature,
        DataSource::ManMade,
        DataSource::Synthetic,
    ];
}

json_enum!(DataSource {
    Social,
    Information,
    Nature,
    ManMade,
    Synthetic,
});

impl std::fmt::Display for DataSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.type_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computation_types_are_distinct() {
        let all = ComputationType::ALL;
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn data_source_labels_match_paper_numbering() {
        assert_eq!(DataSource::Social.type_label(), "Type 1");
        assert_eq!(DataSource::Information.type_label(), "Type 2");
        assert_eq!(DataSource::Nature.type_label(), "Type 3");
        assert_eq!(DataSource::ManMade.type_label(), "Type 4");
    }

    #[test]
    fn display_uses_short_names() {
        assert_eq!(ComputationType::CompStruct.to_string(), "CompStruct");
        assert_eq!(DataSource::Synthetic.to_string(), "Synthetic");
    }
}
