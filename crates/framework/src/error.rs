//! Error type shared by all framework operations.

use crate::types::VertexId;

/// Errors produced by framework primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The referenced vertex does not exist (anymore).
    VertexNotFound(VertexId),
    /// The referenced edge does not exist.
    EdgeNotFound {
        /// Source vertex of the missing edge.
        from: VertexId,
        /// Target vertex of the missing edge.
        to: VertexId,
    },
    /// Attempted to insert a vertex id that already exists.
    DuplicateVertex(VertexId),
    /// Attempted to insert a parallel edge where the graph forbids it.
    DuplicateEdge {
        /// Source vertex of the duplicate edge.
        from: VertexId,
        /// Target vertex of the duplicate edge.
        to: VertexId,
    },
    /// A property with the requested key is not present on the element.
    PropertyNotFound(u32),
    /// A property exists but has a different type than requested.
    PropertyTypeMismatch(u32),
    /// Input data was malformed (loader errors).
    MalformedInput(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexNotFound(v) => write!(f, "vertex {v} not found"),
            GraphError::EdgeNotFound { from, to } => write!(f, "edge {from}->{to} not found"),
            GraphError::DuplicateVertex(v) => write!(f, "vertex {v} already exists"),
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "edge {from}->{to} already exists")
            }
            GraphError::PropertyNotFound(k) => write!(f, "property key {k} not found"),
            GraphError::PropertyTypeMismatch(k) => {
                write!(f, "property key {k} has a different type")
            }
            GraphError::MalformedInput(msg) => write!(f, "malformed input: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Framework-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            GraphError::VertexNotFound(7).to_string(),
            "vertex 7 not found"
        );
        assert_eq!(
            GraphError::EdgeNotFound { from: 1, to: 2 }.to_string(),
            "edge 1->2 not found"
        );
        assert!(GraphError::MalformedInput("bad line".into())
            .to_string()
            .contains("bad line"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GraphError::DuplicateVertex(1));
    }
}
