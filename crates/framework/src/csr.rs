//! Compressed Sparse Row representation (Figure 2(b)).
//!
//! CSR packs the graph into three flat arrays — row offsets, column indices
//! and weights — giving the compact, cache-friendly but *static* layout the
//! paper contrasts with the vertex-centric structure. In GraphBIG the GPU
//! side always computes on CSR: the "graph populating" step converts the
//! dynamic CPU-side graph ([`Csr::from_graph`]) exactly as the paper
//! describes transferring data to GPU memory.
//!
//! Vertices are renumbered into a dense `0..n` space; `ids` maps dense
//! indices back to external [`VertexId`]s and [`Csr::dense_of`] goes the
//! other way.

use graphbig_json::codec::{field, field_or_default, DecodeError, FromJson, ToJson};
use graphbig_json::{json_struct, Json, ObjBuilder};

use crate::error::{GraphError, Result};
use crate::graph::PropertyGraph;
use crate::trace::{addr_of, NullTracer, Region, Tracer};
use crate::types::VertexId;

/// Reverse id→dense lookup used during the populating step.
///
/// When external ids are reasonably dense (`max_id` within a small constant
/// factor of `n`) a direct-indexed table makes each edge translation O(1),
/// turning [`Csr::from_graph`] into an O(n + m) pass. Sparse id spaces fall
/// back to binary search over the sorted map (O(m log n), the old behavior).
enum DenseLookup<'a> {
    Table(Vec<u32>),
    Sorted(&'a [(VertexId, u32)]),
}

/// Sentinel for "id not present" in the table variant.
const ABSENT: u32 = u32::MAX;

impl<'a> DenseLookup<'a> {
    fn build(ids: &[VertexId], id_map: &'a [(VertexId, u32)]) -> Self {
        let n = ids.len();
        let max_id = ids.iter().copied().max().unwrap_or(0);
        // Direct table only when the id space is bounded: 8x the vertex count
        // plus slack keeps worst-case memory at ~32 bytes/vertex.
        if (max_id as usize) < 8 * n + 1024 {
            let mut table = vec![ABSENT; max_id as usize + 1];
            for (dense, &id) in ids.iter().enumerate() {
                table[id as usize] = dense as u32;
            }
            DenseLookup::Table(table)
        } else {
            DenseLookup::Sorted(id_map)
        }
    }

    #[inline]
    fn get(&self, id: VertexId) -> Option<u32> {
        match self {
            DenseLookup::Table(t) => match t.get(id as usize) {
                Some(&d) if d != ABSENT => Some(d),
                _ => None,
            },
            DenseLookup::Sorted(m) => m
                .binary_search_by_key(&id, |&(k, _)| k)
                .ok()
                .map(|p| m[p].1),
        }
    }
}

/// A static CSR view of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// `row_offsets[u]..row_offsets[u+1]` indexes `col`/`weights` for dense
    /// vertex `u`; length `n + 1`.
    row_offsets: Vec<u64>,
    /// Dense target index per edge.
    col: Vec<u32>,
    /// Weight per edge (parallel to `col`).
    weights: Vec<f32>,
    /// Dense index -> external vertex id.
    ids: Vec<VertexId>,
    /// Sorted `(external id, dense index)` pairs for reverse lookup.
    id_map: Vec<(VertexId, u32)>,
    /// Edges whose target was not a live vertex, dropped during a lenient
    /// populating pass. Absent in snapshots written before this field existed.
    dangling_skipped: u64,
}

impl ToJson for Csr {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .push("row_offsets", self.row_offsets.to_json())
            .push("col", self.col.to_json())
            .push("weights", self.weights.to_json())
            .push("ids", self.ids.to_json())
            .push("id_map", self.id_map.to_json())
            .push("dangling_skipped", self.dangling_skipped.to_json())
            .build()
    }
}

impl FromJson for Csr {
    fn from_json(v: &Json) -> std::result::Result<Self, DecodeError> {
        Ok(Csr {
            row_offsets: field(v, "row_offsets")?,
            col: field(v, "col")?,
            weights: field(v, "weights")?,
            ids: field(v, "ids")?,
            id_map: field(v, "id_map")?,
            // `field_or_default` keeps the old `#[serde(default)]` tolerance
            // for snapshots written before this field existed.
            dangling_skipped: field_or_default(v, "dangling_skipped")?,
        })
    }
}

impl Csr {
    /// Build a CSR snapshot of a dynamic graph (the populating step). Dense
    /// indices follow the graph's deterministic vertex order.
    ///
    /// Edges whose target is not a live vertex (possible only when edge
    /// lists are mutated outside the [`PropertyGraph`] API) are skipped and
    /// counted in [`Csr::dangling_skipped`]; use [`Csr::try_from_graph`] to
    /// treat them as errors instead.
    pub fn from_graph(g: &PropertyGraph) -> Self {
        Self::from_graph_t(g, &mut NullTracer)
    }

    /// Traced variant of [`Csr::from_graph`].
    pub fn from_graph_t<T: Tracer>(g: &PropertyGraph, t: &mut T) -> Self {
        Self::build_from_graph(g, t, false).expect("lenient build is infallible")
    }

    /// Like [`Csr::from_graph`] but returns [`GraphError::VertexNotFound`]
    /// for the first edge whose target is not a live vertex.
    pub fn try_from_graph(g: &PropertyGraph) -> Result<Self> {
        Self::try_from_graph_t(g, &mut NullTracer)
    }

    /// Traced variant of [`Csr::try_from_graph`].
    pub fn try_from_graph_t<T: Tracer>(g: &PropertyGraph, t: &mut T) -> Result<Self> {
        Self::build_from_graph(g, t, true)
    }

    /// Shared populating pass. One O(n) table build plus one O(1) lookup per
    /// edge when the id space is dense (see [`DenseLookup`]), so the whole
    /// conversion is O(n + m) instead of the previous O(m log n).
    fn build_from_graph<T: Tracer>(g: &PropertyGraph, t: &mut T, strict: bool) -> Result<Self> {
        t.enter_framework();
        t.region(Region::CsrScan);
        let n = g.num_vertices();
        let ids: Vec<VertexId> = g.vertex_ids().to_vec();
        let mut id_map: Vec<(VertexId, u32)> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        id_map.sort_unstable();
        let lookup = DenseLookup::build(&ids, &id_map);

        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        let mut weights = Vec::new();
        let mut dangling_skipped = 0u64;
        row_offsets.push(0u64);
        for &id in &ids {
            let v = g.find_vertex(id).expect("id from order vector is live");
            t.load(addr_of(v), 32);
            for e in &v.out {
                t.load(addr_of(e), 16);
                match lookup.get(e.target) {
                    Some(dense) => {
                        col.push(dense);
                        weights.push(e.weight);
                        t.store(addr_of(col.last().unwrap()), 8);
                        t.alu(1); // table lookup
                    }
                    None if strict => {
                        t.exit_framework();
                        return Err(GraphError::VertexNotFound(e.target));
                    }
                    None => dangling_skipped += 1,
                }
            }
            row_offsets.push(col.len() as u64);
        }
        t.exit_framework();
        Ok(Csr {
            row_offsets,
            col,
            weights,
            ids,
            id_map,
            dangling_skipped,
        })
    }

    /// Edges dropped by the lenient populating pass because their target was
    /// not a live vertex. Zero for graphs mutated only through the API.
    #[inline]
    pub fn dangling_skipped(&self) -> u64 {
        self.dangling_skipped
    }

    /// Build directly from dense edges `(u, v, w)` over `n` vertices with
    /// identity id mapping. Edges need not be sorted.
    pub fn from_edges(n: usize, edges: &[(u32, u32, f32)]) -> Self {
        let mut degree = vec![0u64; n];
        for &(u, _, _) in edges {
            degree[u as usize] += 1;
        }
        let mut row_offsets = vec![0u64; n + 1];
        for u in 0..n {
            row_offsets[u + 1] = row_offsets[u] + degree[u];
        }
        let m = edges.len();
        let mut col = vec![0u32; m];
        let mut weights = vec![0f32; m];
        let mut cursor = row_offsets.clone();
        for &(u, v, w) in edges {
            let p = cursor[u as usize] as usize;
            col[p] = v;
            weights[p] = w;
            cursor[u as usize] += 1;
        }
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        let id_map: Vec<(VertexId, u32)> = (0..n).map(|i| (i as VertexId, i as u32)).collect();
        Csr {
            row_offsets,
            col,
            weights,
            ids,
            id_map,
            dangling_skipped: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.ids.len()
    }

    /// Number of stored arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col.len()
    }

    /// Out-degree of dense vertex `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> u32 {
        (self.row_offsets[u as usize + 1] - self.row_offsets[u as usize]) as u32
    }

    /// Neighbor slice of dense vertex `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let lo = self.row_offsets[u as usize] as usize;
        let hi = self.row_offsets[u as usize + 1] as usize;
        &self.col[lo..hi]
    }

    /// Weight slice parallel to [`Csr::neighbors`].
    #[inline]
    pub fn edge_weights(&self, u: u32) -> &[f32] {
        let lo = self.row_offsets[u as usize] as usize;
        let hi = self.row_offsets[u as usize + 1] as usize;
        &self.weights[lo..hi]
    }

    /// Raw row-offset array (for kernels that index edges globally).
    #[inline]
    pub fn row_offsets(&self) -> &[u64] {
        &self.row_offsets
    }

    /// Raw column array.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col
    }

    /// Raw weight array.
    #[inline]
    pub fn weight_values(&self) -> &[f32] {
        &self.weights
    }

    /// External id of dense vertex `u`.
    #[inline]
    pub fn id_of(&self, u: u32) -> VertexId {
        self.ids[u as usize]
    }

    /// Dense index of external id, if present.
    pub fn dense_of(&self, id: VertexId) -> Option<u32> {
        self.id_map
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|p| self.id_map[p].1)
    }

    /// Reverse every edge (used to get in-edges on static graphs).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut edges = Vec::with_capacity(self.num_edges());
        for u in 0..n as u32 {
            for (i, &v) in self.neighbors(u).iter().enumerate() {
                edges.push((v, u, self.edge_weights(u)[i]));
            }
        }
        let mut t = Csr::from_edges(n, &edges);
        t.ids = self.ids.clone();
        t.id_map = self.id_map.clone();
        t
    }

    /// Symmetrize: ensure `v in N(u)  =>  u in N(v)`, deduplicating edges.
    /// Self-loops are dropped. Used by undirected GPU kernels (kCore, TC).
    pub fn symmetrize(&self) -> Csr {
        let n = self.num_vertices();
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(self.num_edges() * 2);
        for u in 0..n as u32 {
            for &v in self.neighbors(u) {
                if u != v {
                    pairs.push((u, v));
                    pairs.push((v, u));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let edges: Vec<(u32, u32, f32)> = pairs.into_iter().map(|(u, v)| (u, v, 1.0)).collect();
        let mut s = Csr::from_edges(n, &edges);
        s.ids = self.ids.clone();
        s.id_map = self.id_map.clone();
        s
    }

    /// Sort each adjacency list ascending (required by intersection-based
    /// kernels like Schank's triangle counting).
    pub fn sort_adjacency(&mut self) {
        for u in 0..self.num_vertices() {
            let lo = self.row_offsets[u] as usize;
            let hi = self.row_offsets[u + 1] as usize;
            // sort col and weights together
            let mut pair: Vec<(u32, f32)> = self.col[lo..hi]
                .iter()
                .copied()
                .zip(self.weights[lo..hi].iter().copied())
                .collect();
            pair.sort_unstable_by_key(|&(c, _)| c);
            for (k, (c, w)) in pair.into_iter().enumerate() {
                self.col[lo + k] = c;
                self.weights[lo + k] = w;
            }
        }
    }

    /// Traced sequential scan over a row (CPU-side CSR baseline accesses).
    pub fn visit_neighbors_t<T: Tracer>(
        &self,
        u: u32,
        t: &mut T,
        mut f: impl FnMut(u32, f32, &mut T),
    ) {
        t.enter_framework();
        t.region(Region::CsrScan);
        t.load(addr_of(&self.row_offsets[u as usize]), 16);
        let lo = self.row_offsets[u as usize] as usize;
        let hi = self.row_offsets[u as usize + 1] as usize;
        for i in lo..hi {
            t.load(addr_of(&self.col[i]), 4);
            t.branch(line!() as usize, true);
            f(self.col[i], self.weights[i], t);
        }
        t.branch(line!() as usize, false);
        t.exit_framework();
    }

    /// Approximate device-resident size in bytes (row offsets + columns +
    /// weights), the quantity that must fit in GPU memory.
    pub fn byte_size(&self) -> usize {
        self.row_offsets.len() * 8 + self.col.len() * 4 + self.weights.len() * 4
    }
}

/// A CSR paired with its in-edge (transposed) view.
///
/// Direction-optimizing traversals need both directions: top-down steps
/// expand out-edges of the frontier while bottom-up steps scan the
/// *in*-edges of unvisited vertices looking for a visited parent. For
/// symmetric graphs the two views coincide, so [`BiCsr::symmetric`] stores
/// the adjacency once and serves it for both directions.
#[derive(Debug, Clone, PartialEq)]
pub struct BiCsr {
    out: Csr,
    /// `None` means the graph is symmetric and `out` doubles as the in-view.
    inc: Option<Csr>,
}

json_struct!(BiCsr { out, inc });

impl BiCsr {
    /// Pair a directed CSR with its transpose (built here, O(n + m)).
    pub fn directed(out: Csr) -> Self {
        let inc = out.transpose();
        BiCsr {
            out,
            inc: Some(inc),
        }
    }

    /// Wrap an already-symmetric CSR; no transpose is materialized.
    pub fn symmetric(csr: Csr) -> Self {
        BiCsr {
            out: csr,
            inc: None,
        }
    }

    /// Out-edge view.
    #[inline]
    pub fn out(&self) -> &Csr {
        &self.out
    }

    /// In-edge view (the out view itself for symmetric graphs).
    #[inline]
    pub fn inc(&self) -> &Csr {
        self.inc.as_ref().unwrap_or(&self.out)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of stored arcs in the out view.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let vs: Vec<_> = (0..4).map(|_| g.add_vertex()).collect();
        g.add_edge(vs[0], vs[1], 1.0).unwrap();
        g.add_edge(vs[0], vs[2], 2.0).unwrap();
        g.add_edge(vs[1], vs[3], 3.0).unwrap();
        g.add_edge(vs[2], vs[3], 4.0).unwrap();
        g
    }

    #[test]
    fn from_graph_matches_topology() {
        let g = diamond_graph();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(3), 0);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.edge_weights(1), &[3.0]);
    }

    #[test]
    fn id_mapping_round_trips() {
        let mut g = PropertyGraph::new();
        g.add_vertex_with_id(100).unwrap();
        g.add_vertex_with_id(7).unwrap();
        g.add_vertex_with_id(55).unwrap();
        g.add_edge(100, 7, 1.0).unwrap();
        let csr = Csr::from_graph(&g);
        for u in 0..3u32 {
            assert_eq!(csr.dense_of(csr.id_of(u)), Some(u));
        }
        assert_eq!(csr.dense_of(9999), None);
        // edge 100 -> 7 survives renumbering
        let u = csr.dense_of(100).unwrap();
        let v = csr.dense_of(7).unwrap();
        assert_eq!(csr.neighbors(u), &[v]);
    }

    #[test]
    fn from_edges_handles_unsorted_input() {
        let edges = [(2u32, 0u32, 1.0f32), (0, 1, 2.0), (2, 1, 3.0), (0, 2, 4.0)];
        let csr = Csr::from_edges(3, &edges);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 0);
        assert_eq!(csr.degree(2), 2);
        let mut n0 = csr.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond_graph();
        let csr = Csr::from_graph(&g);
        let t = csr.transpose();
        assert_eq!(t.num_edges(), csr.num_edges());
        assert_eq!(t.degree(0), 0);
        assert_eq!(t.degree(3), 2);
        let mut p3 = t.neighbors(3).to_vec();
        p3.sort_unstable();
        assert_eq!(p3, vec![1, 2]);
    }

    #[test]
    fn symmetrize_makes_edges_bidirectional_and_deduped() {
        let edges = [(0u32, 1u32, 1.0f32), (1, 0, 1.0), (1, 2, 1.0), (2, 2, 1.0)];
        let s = Csr::from_edges(3, &edges).symmetrize();
        // 0-1 deduped to one pair each way, 1-2 symmetrized, self-loop dropped
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.neighbors(1), &[0, 2]);
        assert_eq!(s.neighbors(2), &[1]);
    }

    #[test]
    fn sort_adjacency_orders_columns_and_keeps_weights() {
        let edges = [(0u32, 3u32, 3.0f32), (0, 1, 1.0), (0, 2, 2.0)];
        let mut csr = Csr::from_edges(4, &edges);
        csr.sort_adjacency();
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
        assert_eq!(csr.edge_weights(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_graph_produces_empty_csr() {
        let g = PropertyGraph::new();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.row_offsets(), &[0]);
    }

    #[test]
    fn traced_scan_reports_row_reads() {
        use crate::trace::CountingTracer;
        let g = diamond_graph();
        let csr = Csr::from_graph(&g);
        let mut t = CountingTracer::new();
        let mut cnt = 0;
        csr.visit_neighbors_t(0, &mut t, |_, _, _| cnt += 1);
        assert_eq!(cnt, 2);
        assert!(t.loads >= 3); // row offsets + 2 columns
    }

    #[test]
    fn byte_size_accounts_for_all_arrays() {
        let csr = Csr::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(csr.byte_size(), 4 * 8 + 2 * 4 + 2 * 4);
    }

    /// Build a graph that contains a dangling edge: `delete_vertex` cleans up
    /// both directions, so the stale edge is injected through the public
    /// `Vertex::out` field afterwards — the only way to produce one.
    fn graph_with_dangling_edge() -> (PropertyGraph, VertexId) {
        use crate::vertex::Edge;
        let mut g = PropertyGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        let dead = g.add_vertex();
        g.add_edge(a, b, 1.0).unwrap();
        g.delete_vertex(dead).unwrap();
        g.find_vertex_mut(a).unwrap().out.push(Edge::new(dead));
        (g, dead)
    }

    #[test]
    fn dangling_edge_is_skipped_and_counted() {
        // Regression: this used to panic ("edge target must be a live vertex").
        let (g, _) = graph_with_dangling_edge();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.num_vertices(), 2);
        assert_eq!(csr.num_edges(), 1, "only the live edge survives");
        assert_eq!(csr.dangling_skipped(), 1);
        // The surviving topology is exactly a -> b.
        let a = csr.dense_of(csr.id_of(0)).unwrap();
        assert_eq!(csr.degree(a), 1);
    }

    #[test]
    fn try_from_graph_reports_dangling_edge() {
        let (g, dead) = graph_with_dangling_edge();
        match Csr::try_from_graph(&g) {
            Err(GraphError::VertexNotFound(id)) => assert_eq!(id, dead),
            other => panic!("expected VertexNotFound, got {other:?}"),
        }
    }

    #[test]
    fn try_from_graph_succeeds_on_clean_graph() {
        let g = diamond_graph();
        let csr = Csr::try_from_graph(&g).unwrap();
        assert_eq!(csr, Csr::from_graph(&g));
        assert_eq!(csr.dangling_skipped(), 0);
    }

    #[test]
    fn sparse_id_space_uses_fallback_lookup() {
        // Ids far beyond 8n force the binary-search path; topology must match
        // what the dense-table path produces for equivalent structure.
        let mut g = PropertyGraph::new();
        g.add_vertex_with_id(1_000_000).unwrap();
        g.add_vertex_with_id(2_000_000).unwrap();
        g.add_vertex_with_id(5).unwrap();
        g.add_edge(1_000_000, 2_000_000, 1.0).unwrap();
        g.add_edge(2_000_000, 5, 2.0).unwrap();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.num_edges(), 2);
        let u = csr.dense_of(1_000_000).unwrap();
        let v = csr.dense_of(2_000_000).unwrap();
        assert_eq!(csr.neighbors(u), &[v]);
    }

    #[test]
    fn bicsr_directed_pairs_out_with_transpose() {
        let g = diamond_graph();
        let bi = BiCsr::directed(Csr::from_graph(&g));
        assert_eq!(bi.num_vertices(), 4);
        assert_eq!(bi.num_edges(), 4);
        assert_eq!(bi.out().degree(0), 2);
        assert_eq!(bi.inc().degree(0), 0);
        let mut parents = bi.inc().neighbors(3).to_vec();
        parents.sort_unstable();
        assert_eq!(parents, vec![1, 2]);
    }

    #[test]
    fn bicsr_symmetric_shares_one_view() {
        let s = Csr::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).symmetrize();
        let bi = BiCsr::symmetric(s.clone());
        assert_eq!(bi.out(), &s);
        assert_eq!(bi.inc(), &s);
    }

    #[test]
    fn csr_reflects_graph_after_mutation() {
        // CSR is a snapshot: rebuilding after a deletion reflects the change.
        let mut g = diamond_graph();
        let before = Csr::from_graph(&g);
        assert_eq!(before.num_edges(), 4);
        let ids = g.vertex_ids().to_vec();
        g.delete_vertex(ids[1]).unwrap();
        let after = Csr::from_graph(&g);
        assert_eq!(after.num_vertices(), 3);
        assert_eq!(after.num_edges(), 2);
    }
}
