//! Instrumentation layer: the [`Tracer`] trait and its basic implementations.
//!
//! The paper characterizes graph computing by attaching hardware performance
//! counters to workloads running *inside* a framework. We reproduce that by
//! making every framework primitive (and every workload) report its dynamic
//! behavior — loads, stores, ALU work, conditional branches, code-region
//! switches, and framework entry/exit — to a [`Tracer`].
//!
//! Three kinds of tracers exist:
//!
//! * [`NullTracer`] — a zero-sized type whose callbacks are empty `#[inline]`
//!   functions. Workloads are generic over `T: Tracer`, so runs with
//!   `NullTracer` monomorphize to uninstrumented code. Criterion benches use
//!   this.
//! * [`CountingTracer`] — counts events and framework/user time split; this
//!   is what regenerates Figure 1 (in-framework execution time).
//! * The CPU and GPU hardware models in `graphbig-machine` and
//!   `graphbig-simt` implement `Tracer` to simulate caches, TLBs, branch
//!   predictors and warp divergence from the same event stream.
//!
//! Addresses passed to tracers are **real addresses** of the underlying Rust
//! objects (vertex structures, edge vectors, property slots, CSR arrays,
//! workload-local queues). The memory-locality structure the paper measures
//! is therefore genuine; only the hardware reacting to it is modeled.

/// Code regions used for ICache modeling and Figure 1 attribution.
///
/// Each region stands for a compiled code area (a framework primitive or a
/// workload's own kernel). The paper's observation that GraphBIG has a low
/// ICache miss rate stems from its *flat* code hierarchy — few regions, small
/// footprints — which this enum makes explicit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Region {
    /// Workload-private code (queues, numeric kernels, ...). The default
    /// region: execution starts in user code.
    #[default]
    UserCode = 9,
    /// Vertex lookup in the hash index (`find_vertex`).
    FindVertex = 0,
    /// Vertex insertion (`add_vertex`).
    AddVertex = 1,
    /// Vertex removal including incident edges (`delete_vertex`).
    DeleteVertex = 2,
    /// Edge insertion (`add_edge`).
    AddEdge = 3,
    /// Edge removal (`delete_edge`).
    DeleteEdge = 4,
    /// Out-neighbor iteration.
    TraverseNeighbors = 5,
    /// In-neighbor (parent) iteration.
    TraverseParents = 6,
    /// Property read/update on vertices or edges.
    PropertyAccess = 7,
    /// CSR/COO construction and array scans.
    CsrScan = 8,
    /// Memory allocation paths inside the framework.
    Alloc = 10,
}

impl Region {
    /// Number of distinct regions (for table sizing).
    pub const COUNT: usize = 11;

    /// Stable index of this region.
    #[inline]
    pub fn index(self) -> usize {
        self as u16 as usize
    }

    /// Static footprint of the region in "instructions" — used by the ICache
    /// model to synthesize fetch addresses. The flat framework keeps these
    /// small, which is why the paper observes ICache MPKI below 0.7.
    pub fn code_footprint(self) -> u32 {
        match self {
            Region::FindVertex => 48,
            Region::AddVertex => 96,
            Region::DeleteVertex => 160,
            Region::AddEdge => 80,
            Region::DeleteEdge => 96,
            Region::TraverseNeighbors => 40,
            Region::TraverseParents => 40,
            Region::PropertyAccess => 56,
            Region::CsrScan => 64,
            Region::UserCode => 320,
            Region::Alloc => 128,
        }
    }

    /// Whether the region counts as framework code for Figure 1 attribution.
    pub fn is_framework(self) -> bool {
        !matches!(self, Region::UserCode)
    }

    /// All regions, in `index()` order.
    pub const ALL: [Region; Region::COUNT] = [
        Region::FindVertex,
        Region::AddVertex,
        Region::DeleteVertex,
        Region::AddEdge,
        Region::DeleteEdge,
        Region::TraverseNeighbors,
        Region::TraverseParents,
        Region::PropertyAccess,
        Region::CsrScan,
        Region::UserCode,
        Region::Alloc,
    ];
}

/// Receiver of dynamic-execution events.
///
/// All methods have empty default bodies so tracers only override what they
/// model. Implementations must be cheap: these callbacks sit on the hottest
/// paths of every workload.
pub trait Tracer {
    /// A load of `bytes` bytes at `addr`.
    #[inline]
    fn load(&mut self, addr: usize, bytes: u32) {
        let _ = (addr, bytes);
    }

    /// A store of `bytes` bytes at `addr`.
    #[inline]
    fn store(&mut self, addr: usize, bytes: u32) {
        let _ = (addr, bytes);
    }

    /// An atomic read-modify-write at `addr` (GPU kernels, parallel CPU code).
    #[inline]
    fn atomic(&mut self, addr: usize, bytes: u32) {
        let _ = (addr, bytes);
    }

    /// `n` non-memory, non-branch instructions (address arithmetic, compares,
    /// numeric property work, ...).
    #[inline]
    fn alu(&mut self, n: u32) {
        let _ = n;
    }

    /// A conditional branch. `site` identifies the static branch (for the
    /// predictor's history tables); `taken` is its dynamic outcome.
    #[inline]
    fn branch(&mut self, site: usize, taken: bool) {
        let _ = (site, taken);
    }

    /// Execution moved to code region `region`.
    #[inline]
    fn region(&mut self, region: Region) {
        let _ = region;
    }

    /// Entered a framework primitive (paired with [`Tracer::exit_framework`]).
    #[inline]
    fn enter_framework(&mut self) {}

    /// Left a framework primitive.
    #[inline]
    fn exit_framework(&mut self) {}
}

/// The do-nothing tracer; zero-sized, all callbacks empty.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {}

/// Address of a referenced object, for feeding to tracers.
#[inline]
pub fn addr_of<T: ?Sized>(x: &T) -> usize {
    x as *const T as *const u8 as usize
}

/// RAII guard that brackets a framework primitive with
/// `enter_framework`/`exit_framework` events.
///
/// Nested primitives are handled by the tracer (e.g. [`CountingTracer`]
/// keeps a depth counter so only the outermost pair toggles attribution).
pub struct FrameworkScope<'a, T: Tracer> {
    tracer: &'a mut T,
}

impl<'a, T: Tracer> FrameworkScope<'a, T> {
    /// Enter a framework primitive in region `region`.
    #[inline]
    pub fn new(tracer: &'a mut T, region: Region) -> Self {
        tracer.enter_framework();
        tracer.region(region);
        FrameworkScope { tracer }
    }

    /// Access the wrapped tracer for events inside the primitive.
    #[inline]
    pub fn t(&mut self) -> &mut T {
        self.tracer
    }
}

impl<T: Tracer> Drop for FrameworkScope<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.tracer.exit_framework();
    }
}

/// Event-counting tracer: total instruction mix plus the framework/user
/// split that regenerates Figure 1.
///
/// "Instructions" here follow the event model: each load/store/atomic/branch
/// is one instruction and `alu(n)` contributes `n`.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CountingTracer {
    /// Number of load events.
    pub loads: u64,
    /// Number of store events.
    pub stores: u64,
    /// Number of atomic events.
    pub atomics: u64,
    /// Number of ALU instructions.
    pub alu_ops: u64,
    /// Number of conditional branches.
    pub branches: u64,
    /// Taken branches among `branches`.
    pub taken_branches: u64,
    /// Instructions attributed to framework code.
    pub framework_instructions: u64,
    /// Instructions attributed to user (workload) code.
    pub user_instructions: u64,
    /// Per-region instruction counts, indexed by [`Region::index`].
    pub region_instructions: [u64; Region::COUNT],
    /// Nesting depth of framework primitives (>0 means "inside framework").
    depth: u32,
    current_region: Region,
}

impl CountingTracer {
    /// Fresh tracer with all counters at zero.
    pub fn new() -> Self {
        CountingTracer {
            current_region: Region::UserCode,
            ..Default::default()
        }
    }

    /// Total dynamic instructions observed.
    pub fn instructions(&self) -> u64 {
        self.loads + self.stores + self.atomics + self.alu_ops + self.branches
    }

    /// Fraction of instructions spent inside framework primitives (the
    /// quantity plotted in Figure 1).
    pub fn framework_fraction(&self) -> f64 {
        let total = self.framework_instructions + self.user_instructions;
        if total == 0 {
            0.0
        } else {
            self.framework_instructions as f64 / total as f64
        }
    }

    /// Memory instructions (loads + stores + atomics).
    pub fn memory_instructions(&self) -> u64 {
        self.loads + self.stores + self.atomics
    }

    #[inline]
    fn account(&mut self, n: u64) {
        if self.depth > 0 {
            self.framework_instructions += n;
        } else {
            self.user_instructions += n;
        }
        self.region_instructions[self.current_region.index()] += n;
    }
}

impl Tracer for CountingTracer {
    #[inline]
    fn load(&mut self, _addr: usize, _bytes: u32) {
        self.loads += 1;
        self.account(1);
    }

    #[inline]
    fn store(&mut self, _addr: usize, _bytes: u32) {
        self.stores += 1;
        self.account(1);
    }

    #[inline]
    fn atomic(&mut self, _addr: usize, _bytes: u32) {
        self.atomics += 1;
        self.account(1);
    }

    #[inline]
    fn alu(&mut self, n: u32) {
        self.alu_ops += n as u64;
        self.account(n as u64);
    }

    #[inline]
    fn branch(&mut self, _site: usize, taken: bool) {
        self.branches += 1;
        self.taken_branches += taken as u64;
        self.account(1);
    }

    #[inline]
    fn region(&mut self, region: Region) {
        self.current_region = region;
    }

    #[inline]
    fn enter_framework(&mut self) {
        self.depth += 1;
    }

    #[inline]
    fn exit_framework(&mut self) {
        debug_assert!(self.depth > 0, "unbalanced exit_framework");
        self.depth = self.depth.saturating_sub(1);
        if self.depth == 0 {
            self.current_region = Region::UserCode;
        }
    }
}

/// One recorded event (see [`RecordingTracer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A load.
    Load {
        /// Byte address.
        addr: usize,
        /// Width in bytes.
        bytes: u32,
    },
    /// A store.
    Store {
        /// Byte address.
        addr: usize,
        /// Width in bytes.
        bytes: u32,
    },
    /// An atomic RMW.
    Atomic {
        /// Byte address.
        addr: usize,
        /// Width in bytes.
        bytes: u32,
    },
    /// `n` ALU instructions.
    Alu(u32),
    /// A conditional branch.
    Branch {
        /// Static branch site.
        site: usize,
        /// Dynamic outcome.
        taken: bool,
    },
    /// A code-region switch.
    Region(Region),
    /// Framework entry.
    Enter,
    /// Framework exit.
    Exit,
}

/// A tracer that records the full event stream for later replay.
///
/// Record once, replay many times: this is how the cache-geometry ablation
/// sweeps L3 sizes without re-executing the workload — classic trace-driven
/// simulation. Traces are large (one enum per dynamic instruction); record
/// at reduced scale.
#[derive(Debug, Default)]
pub struct RecordingTracer {
    /// The recorded stream, in execution order.
    pub events: Vec<TraceEvent>,
}

impl RecordingTracer {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replay the recorded stream into another tracer.
    pub fn replay<T: Tracer>(&self, t: &mut T) {
        for &ev in &self.events {
            match ev {
                TraceEvent::Load { addr, bytes } => t.load(addr, bytes),
                TraceEvent::Store { addr, bytes } => t.store(addr, bytes),
                TraceEvent::Atomic { addr, bytes } => t.atomic(addr, bytes),
                TraceEvent::Alu(n) => t.alu(n),
                TraceEvent::Branch { site, taken } => t.branch(site, taken),
                TraceEvent::Region(r) => t.region(r),
                TraceEvent::Enter => t.enter_framework(),
                TraceEvent::Exit => t.exit_framework(),
            }
        }
    }
}

impl Tracer for RecordingTracer {
    #[inline]
    fn load(&mut self, addr: usize, bytes: u32) {
        self.events.push(TraceEvent::Load { addr, bytes });
    }
    #[inline]
    fn store(&mut self, addr: usize, bytes: u32) {
        self.events.push(TraceEvent::Store { addr, bytes });
    }
    #[inline]
    fn atomic(&mut self, addr: usize, bytes: u32) {
        self.events.push(TraceEvent::Atomic { addr, bytes });
    }
    #[inline]
    fn alu(&mut self, n: u32) {
        self.events.push(TraceEvent::Alu(n));
    }
    #[inline]
    fn branch(&mut self, site: usize, taken: bool) {
        self.events.push(TraceEvent::Branch { site, taken });
    }
    #[inline]
    fn region(&mut self, region: Region) {
        self.events.push(TraceEvent::Region(region));
    }
    #[inline]
    fn enter_framework(&mut self) {
        self.events.push(TraceEvent::Enter);
    }
    #[inline]
    fn exit_framework(&mut self) {
        self.events.push(TraceEvent::Exit);
    }
}

/// A tracer that forwards every event to two tracers.
///
/// Lets the harness combine, e.g., a `CountingTracer` (Figure 1) with the
/// CPU machine model (Figures 5–9) in a single run.
#[derive(Debug, Default)]
pub struct TeeTracer<A, B> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A: Tracer, B: Tracer> TeeTracer<A, B> {
    /// Combine two tracers.
    pub fn new(a: A, b: B) -> Self {
        TeeTracer { a, b }
    }
}

impl<A: Tracer, B: Tracer> Tracer for TeeTracer<A, B> {
    #[inline]
    fn load(&mut self, addr: usize, bytes: u32) {
        self.a.load(addr, bytes);
        self.b.load(addr, bytes);
    }
    #[inline]
    fn store(&mut self, addr: usize, bytes: u32) {
        self.a.store(addr, bytes);
        self.b.store(addr, bytes);
    }
    #[inline]
    fn atomic(&mut self, addr: usize, bytes: u32) {
        self.a.atomic(addr, bytes);
        self.b.atomic(addr, bytes);
    }
    #[inline]
    fn alu(&mut self, n: u32) {
        self.a.alu(n);
        self.b.alu(n);
    }
    #[inline]
    fn branch(&mut self, site: usize, taken: bool) {
        self.a.branch(site, taken);
        self.b.branch(site, taken);
    }
    #[inline]
    fn region(&mut self, region: Region) {
        self.a.region(region);
        self.b.region(region);
    }
    #[inline]
    fn enter_framework(&mut self) {
        self.a.enter_framework();
        self.b.enter_framework();
    }
    #[inline]
    fn exit_framework(&mut self) {
        self.a.exit_framework();
        self.b.exit_framework();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NullTracer>(), 0);
    }

    #[test]
    fn counting_tracer_counts_instruction_mix() {
        let mut t = CountingTracer::new();
        t.load(0x1000, 8);
        t.store(0x2000, 8);
        t.alu(5);
        t.branch(1, true);
        t.branch(2, false);
        assert_eq!(t.loads, 1);
        assert_eq!(t.stores, 1);
        assert_eq!(t.alu_ops, 5);
        assert_eq!(t.branches, 2);
        assert_eq!(t.taken_branches, 1);
        assert_eq!(t.instructions(), 9);
        assert_eq!(t.memory_instructions(), 2);
    }

    #[test]
    fn framework_attribution_splits_user_and_framework() {
        let mut t = CountingTracer::new();
        t.alu(10); // user code
        {
            let mut scope = FrameworkScope::new(&mut t, Region::FindVertex);
            scope.t().load(0x1000, 8);
            scope.t().alu(2);
        }
        t.alu(10); // user code again
        assert_eq!(t.user_instructions, 20);
        assert_eq!(t.framework_instructions, 3);
        let frac = t.framework_fraction();
        assert!((frac - 3.0 / 23.0).abs() < 1e-12);
    }

    #[test]
    fn nested_framework_scopes_attribute_to_framework_once() {
        let mut t = CountingTracer::new();
        t.enter_framework();
        t.enter_framework();
        t.alu(4);
        t.exit_framework();
        t.alu(4); // still depth 1 -> framework
        t.exit_framework();
        t.alu(4); // depth 0 -> user
        assert_eq!(t.framework_instructions, 8);
        assert_eq!(t.user_instructions, 4);
    }

    #[test]
    fn region_instruction_attribution() {
        let mut t = CountingTracer::new();
        {
            let mut s = FrameworkScope::new(&mut t, Region::AddEdge);
            s.t().alu(7);
        }
        assert_eq!(t.region_instructions[Region::AddEdge.index()], 7);
        // after scope exit, region resets to user code
        t.alu(1);
        assert_eq!(t.region_instructions[Region::UserCode.index()], 1);
    }

    #[test]
    fn framework_fraction_of_empty_trace_is_zero() {
        assert_eq!(CountingTracer::new().framework_fraction(), 0.0);
    }

    #[test]
    fn recording_tracer_replays_identically() {
        let mut rec = RecordingTracer::new();
        rec.enter_framework();
        rec.region(Region::FindVertex);
        rec.load(0x1000, 8);
        rec.alu(3);
        rec.branch(7, true);
        rec.store(0x2000, 4);
        rec.exit_framework();
        assert_eq!(rec.events.len(), 7);

        let mut direct = CountingTracer::new();
        direct.enter_framework();
        direct.region(Region::FindVertex);
        direct.load(0x1000, 8);
        direct.alu(3);
        direct.branch(7, true);
        direct.store(0x2000, 4);
        direct.exit_framework();

        let mut replayed = CountingTracer::new();
        rec.replay(&mut replayed);
        assert_eq!(replayed, direct);
    }

    #[test]
    fn recording_tracer_replays_twice_without_consuming() {
        let mut rec = RecordingTracer::new();
        rec.load(0x10, 8);
        let mut a = CountingTracer::new();
        let mut b = CountingTracer::new();
        rec.replay(&mut a);
        rec.replay(&mut b);
        assert_eq!(a.loads, 1);
        assert_eq!(b.loads, 1);
    }

    #[test]
    fn tee_tracer_forwards_to_both() {
        let mut t = TeeTracer::new(CountingTracer::new(), CountingTracer::new());
        t.load(0x10, 8);
        t.branch(0, true);
        assert_eq!(t.a.loads, 1);
        assert_eq!(t.b.loads, 1);
        assert_eq!(t.a.branches, 1);
        assert_eq!(t.b.branches, 1);
    }

    #[test]
    fn region_footprints_are_flat() {
        // The paper attributes GraphBIG's low ICache MPKI to its flat code
        // hierarchy; keep the total footprint under a typical 32KB ICache
        // (instructions modeled at 4 bytes each).
        let total: u32 = Region::ALL.iter().map(|r| r.code_footprint()).sum();
        assert!(total * 4 < 32 * 1024);
    }

    #[test]
    fn addr_of_matches_reference_identity() {
        let x = 42u64;
        let a1 = addr_of(&x);
        let a2 = &x as *const u64 as usize;
        assert_eq!(a1, a2);
    }
}
