//! The vertex hash index: an open-addressing table mapping [`VertexId`] to
//! individually boxed [`Vertex`] structures.
//!
//! This is the "adjacency list with indices" of the vertex-centric
//! representation (Figure 2(c)). It is written from scratch rather than on
//! `std::collections::HashMap` for two reasons:
//!
//! 1. **Deterministic behavior** — the probe sequence uses a fixed SplitMix64
//!    hash, so runs are reproducible across processes (no `RandomState`).
//! 2. **Honest instrumentation** — `find_vertex` is one of the hottest
//!    framework primitives, and the paper's cache/TLB observations depend on
//!    how the index probes memory. With our own table, traced loads hit the
//!    *actual* slot array and the *actual* boxed vertices.
//!
//! Deletions use tombstones; the table rehashes when occupancy (live +
//! tombstones) crosses 70% of capacity.

use crate::trace::{addr_of, Tracer};
use crate::types::VertexId;
use crate::vertex::Vertex;

/// SplitMix64 finalizer: a strong, cheap, deterministic id hash.
#[inline]
pub fn hash_id(id: VertexId) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

enum Slot {
    Empty,
    Tombstone,
    Occupied(Box<Vertex>),
}

/// Open-addressing hash index owning all vertex structures of a graph.
pub struct VertexIndex {
    slots: Vec<Slot>,
    mask: usize,
    live: usize,
    tombstones: usize,
}

const MIN_CAPACITY: usize = 16;
const MAX_LOAD_PERCENT: usize = 70;

impl VertexIndex {
    /// Empty index with the minimum capacity.
    pub fn new() -> Self {
        Self::with_capacity(MIN_CAPACITY)
    }

    /// Empty index pre-sized for about `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n.max(MIN_CAPACITY) * 100 / MAX_LOAD_PERCENT + 1)
            .next_power_of_two()
            .max(MIN_CAPACITY);
        VertexIndex {
            slots: (0..cap).map(|_| Slot::Empty).collect(),
            mask: cap - 1,
            live: 0,
            tombstones: 0,
        }
    }

    /// Number of live vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the index holds no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current slot-array capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Insert a vertex. Returns `false` (and drops nothing, the box is given
    /// back via `Err`) if the id already exists.
    pub fn insert(&mut self, v: Box<Vertex>) -> Result<(), Box<Vertex>> {
        self.insert_t(v, &mut crate::trace::NullTracer)
    }

    /// Traced variant of [`VertexIndex::insert`].
    pub fn insert_t<T: Tracer>(&mut self, v: Box<Vertex>, t: &mut T) -> Result<(), Box<Vertex>> {
        if (self.live + self.tombstones + 1) * 100 >= self.slots.len() * MAX_LOAD_PERCENT {
            self.grow(t);
        }
        let id = v.id;
        let mut i = hash_id(id) as usize & self.mask;
        let mut first_tombstone: Option<usize> = None;
        loop {
            t.alu(3);
            t.load(addr_of(&self.slots[i]), 16);
            match &self.slots[i] {
                Slot::Empty => {
                    let dest = first_tombstone.unwrap_or(i);
                    if first_tombstone.is_some() {
                        self.tombstones -= 1;
                    }
                    self.slots[dest] = Slot::Occupied(v);
                    t.store(addr_of(&self.slots[dest]), 16);
                    self.live += 1;
                    return Ok(());
                }
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(i);
                    }
                }
                Slot::Occupied(existing) => {
                    t.alu(2);
                    if existing.id == id {
                        t.branch(line!() as usize, true);
                        return Err(v);
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Find a vertex by id.
    #[inline]
    pub fn get(&self, id: VertexId) -> Option<&Vertex> {
        self.get_t(id, &mut crate::trace::NullTracer)
    }

    /// Traced variant of [`VertexIndex::get`]: each probe reads the slot, a
    /// hit additionally reads the vertex header through the pointer — the
    /// pointer-chase that defines the vertex-centric layout.
    pub fn get_t<T: Tracer>(&self, id: VertexId, t: &mut T) -> Option<&Vertex> {
        let mut i = hash_id(id) as usize & self.mask;
        let mut probes = 0u32;
        t.alu(4); // hash finalization + slot address computation
        loop {
            probes += 1;
            t.load(addr_of(&self.slots[i]), 16);
            t.alu(2); // tag compare is branch-free (group-probe style)
            match &self.slots[i] {
                Slot::Empty => {
                    // one well-biased branch per lookup: "resolved within
                    // the first probe group(s)", as in SIMD group-probe tables
                    t.branch(line!() as usize, probes <= 8);
                    return None;
                }
                Slot::Tombstone => {}
                Slot::Occupied(v) => {
                    if v.id == id {
                        t.branch(line!() as usize, probes <= 8);
                        t.load(addr_of(v.as_ref()), 32);
                        return Some(v);
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: VertexId) -> Option<&mut Vertex> {
        self.get_mut_t(id, &mut crate::trace::NullTracer)
    }

    /// Traced mutable lookup.
    pub fn get_mut_t<T: Tracer>(&mut self, id: VertexId, t: &mut T) -> Option<&mut Vertex> {
        let mut i = hash_id(id) as usize & self.mask;
        let mut probes = 0u32;
        t.alu(4);
        loop {
            probes += 1;
            t.load(addr_of(&self.slots[i]), 16);
            t.alu(2);
            match &self.slots[i] {
                Slot::Empty => {
                    t.branch(line!() as usize, probes <= 8);
                    return None;
                }
                Slot::Tombstone => {}
                Slot::Occupied(v) => {
                    if v.id == id {
                        t.branch(line!() as usize, probes <= 8);
                        break;
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
        match &mut self.slots[i] {
            Slot::Occupied(v) => {
                t.load(addr_of(v.as_ref()), 32);
                Some(v.as_mut())
            }
            _ => unreachable!("probe loop exits only on occupied match"),
        }
    }

    /// Remove a vertex, returning its box.
    pub fn remove(&mut self, id: VertexId) -> Option<Box<Vertex>> {
        self.remove_t(id, &mut crate::trace::NullTracer)
    }

    /// Traced removal; leaves a tombstone.
    pub fn remove_t<T: Tracer>(&mut self, id: VertexId, t: &mut T) -> Option<Box<Vertex>> {
        let mut i = hash_id(id) as usize & self.mask;
        let mut probes = 0u32;
        t.alu(4);
        loop {
            probes += 1;
            t.load(addr_of(&self.slots[i]), 16);
            t.alu(2);
            match &self.slots[i] {
                Slot::Empty => {
                    t.branch(line!() as usize, probes <= 8);
                    return None;
                }
                Slot::Tombstone => {}
                Slot::Occupied(v) => {
                    if v.id == id {
                        t.branch(line!() as usize, probes <= 8);
                        let taken = std::mem::replace(&mut self.slots[i], Slot::Tombstone);
                        t.store(addr_of(&self.slots[i]), 16);
                        self.live -= 1;
                        self.tombstones += 1;
                        match taken {
                            Slot::Occupied(b) => return Some(b),
                            _ => unreachable!(),
                        }
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Iterate over live vertices in slot order (deterministic for a given
    /// operation history, but *not* insertion order — use the graph's order
    /// vector for user-facing iteration).
    pub fn iter(&self) -> impl Iterator<Item = &Vertex> {
        self.slots.iter().filter_map(|s| match s {
            Slot::Occupied(v) => Some(v.as_ref()),
            _ => None,
        })
    }

    fn grow<T: Tracer>(&mut self, t: &mut T) {
        let new_cap = (self.slots.len() * 2).max(MIN_CAPACITY);
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| Slot::Empty).collect());
        self.mask = new_cap - 1;
        self.tombstones = 0;
        for slot in old {
            if let Slot::Occupied(v) = slot {
                // Re-insert without load-factor checks: capacity is sufficient.
                let mut i = hash_id(v.id) as usize & self.mask;
                while slot_occupied(&self.slots[i]) {
                    i = (i + 1) & self.mask;
                }
                t.store(addr_of(&self.slots[i]), 16);
                self.slots[i] = Slot::Occupied(v);
            }
        }
    }
}

#[inline]
fn slot_occupied(s: &Slot) -> bool {
    matches!(s, Slot::Occupied(_))
}

impl Default for VertexIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for VertexIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VertexIndex")
            .field("live", &self.live)
            .field("tombstones", &self.tombstones)
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(id: VertexId) -> Box<Vertex> {
        Box::new(Vertex::new(id))
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut idx = VertexIndex::new();
        for id in 0..100 {
            idx.insert(boxed(id)).unwrap();
        }
        assert_eq!(idx.len(), 100);
        for id in 0..100 {
            assert_eq!(idx.get(id).unwrap().id, id);
        }
        assert!(idx.get(1000).is_none());
        for id in (0..100).step_by(2) {
            assert_eq!(idx.remove(id).unwrap().id, id);
        }
        assert_eq!(idx.len(), 50);
        for id in 0..100 {
            assert_eq!(idx.get(id).is_some(), id % 2 == 1);
        }
    }

    #[test]
    fn duplicate_insert_returns_box() {
        let mut idx = VertexIndex::new();
        idx.insert(boxed(5)).unwrap();
        let err = idx.insert(boxed(5)).unwrap_err();
        assert_eq!(err.id, 5);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut idx = VertexIndex::with_capacity(16);
        let initial_cap = idx.capacity();
        for id in 0..10_000 {
            idx.insert(boxed(id)).unwrap();
        }
        assert!(idx.capacity() > initial_cap);
        assert_eq!(idx.len(), 10_000);
        for id in 0..10_000 {
            assert!(idx.get(id).is_some());
        }
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        let mut idx = VertexIndex::with_capacity(16);
        // Insert enough ids to force collisions, delete some in the middle of
        // chains, then verify lookups behind tombstones still succeed.
        for id in 0..40 {
            idx.insert(boxed(id)).unwrap();
        }
        for id in 10..20 {
            idx.remove(id).unwrap();
        }
        for id in 20..40 {
            assert!(idx.get(id).is_some(), "id {id} lost behind tombstone");
        }
        // Re-insert into tombstoned region.
        for id in 10..20 {
            idx.insert(boxed(id)).unwrap();
        }
        assert_eq!(idx.len(), 40);
    }

    #[test]
    fn get_mut_allows_mutation() {
        let mut idx = VertexIndex::new();
        idx.insert(boxed(1)).unwrap();
        idx.get_mut(1)
            .unwrap()
            .out
            .push(crate::vertex::Edge::new(2));
        assert_eq!(idx.get(1).unwrap().out_degree(), 1);
    }

    #[test]
    fn iter_yields_all_live_vertices() {
        let mut idx = VertexIndex::new();
        for id in 0..50 {
            idx.insert(boxed(id)).unwrap();
        }
        for id in 0..25 {
            idx.remove(id);
        }
        let mut ids: Vec<_> = idx.iter().map(|v| v.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (25..50).collect::<Vec<_>>());
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_id(12345), hash_id(12345));
        assert_ne!(hash_id(1), hash_id(2));
    }

    #[test]
    fn traced_get_emits_probe_loads() {
        use crate::trace::CountingTracer;
        let mut idx = VertexIndex::new();
        idx.insert(boxed(3)).unwrap();
        let mut t = CountingTracer::new();
        idx.get_t(3, &mut t).unwrap();
        assert!(t.loads >= 2); // at least slot probe + vertex header
    }

    #[test]
    fn heavy_churn_preserves_consistency() {
        let mut idx = VertexIndex::new();
        for round in 0u64..20 {
            for id in 0..500 {
                idx.insert(boxed(round * 1000 + id)).unwrap();
            }
            for id in 0..500 {
                if id % 3 != 0 {
                    idx.remove(round * 1000 + id).unwrap();
                }
            }
        }
        let expected = 20 * 500usize.div_ceil(3);
        assert_eq!(idx.len(), expected);
    }
}
