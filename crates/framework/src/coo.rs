//! Coordinate-list (COO) representation.
//!
//! COO "replaces the vertex array in CSR with an array of source vertices of
//! each edge" (Section 2). Edge-centric GPU kernels — TC and CComp in the
//! paper, which partition work *by edge* to balance warps — iterate COO.

use graphbig_json::json_struct;

use crate::csr::Csr;

/// Edge-array representation: parallel `src`/`dst`/`weight` vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    src: Vec<u32>,
    dst: Vec<u32>,
    weights: Vec<f32>,
    num_vertices: usize,
}

json_struct!(Coo {
    src,
    dst,
    weights,
    num_vertices
});

impl Coo {
    /// Expand a CSR into its COO form (same dense vertex space, same edge
    /// order).
    pub fn from_csr(csr: &Csr) -> Self {
        let n = csr.num_vertices();
        let m = csr.num_edges();
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        for u in 0..n as u32 {
            let ws = csr.edge_weights(u);
            for (i, &v) in csr.neighbors(u).iter().enumerate() {
                src.push(u);
                dst.push(v);
                weights.push(ws[i]);
            }
        }
        Coo {
            src,
            dst,
            weights,
            num_vertices: n,
        }
    }

    /// Build from raw parallel arrays.
    pub fn from_arrays(
        num_vertices: usize,
        src: Vec<u32>,
        dst: Vec<u32>,
        weights: Vec<f32>,
    ) -> Self {
        assert_eq!(src.len(), dst.len());
        assert_eq!(src.len(), weights.len());
        Coo {
            src,
            dst,
            weights,
            num_vertices,
        }
    }

    /// Number of vertices in the dense space.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Edge `i` as `(src, dst, weight)`.
    #[inline]
    pub fn edge(&self, i: usize) -> (u32, u32, f32) {
        (self.src[i], self.dst[i], self.weights[i])
    }

    /// Source array.
    #[inline]
    pub fn src(&self) -> &[u32] {
        &self.src
    }

    /// Destination array.
    #[inline]
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Weight array.
    #[inline]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Approximate device-resident size in bytes.
    pub fn byte_size(&self) -> usize {
        self.src.len() * 4 + self.dst.len() * 4 + self.weights.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_csr_preserves_edges() {
        let csr = Csr::from_edges(3, &[(0, 1, 1.5), (0, 2, 2.5), (2, 1, 3.5)]);
        let coo = Coo::from_csr(&csr);
        assert_eq!(coo.num_vertices(), 3);
        assert_eq!(coo.num_edges(), 3);
        let mut edges: Vec<_> = (0..3).map(|i| coo.edge(i)).collect();
        edges.sort_by_key(|e| (e.0, e.1));
        assert_eq!(edges, vec![(0, 1, 1.5), (0, 2, 2.5), (2, 1, 3.5)]);
    }

    #[test]
    fn from_arrays_validates_lengths() {
        let coo = Coo::from_arrays(2, vec![0], vec![1], vec![1.0]);
        assert_eq!(coo.edge(0), (0, 1, 1.0));
    }

    #[test]
    #[should_panic]
    fn mismatched_arrays_panic() {
        let _ = Coo::from_arrays(2, vec![0, 1], vec![1], vec![1.0]);
    }

    #[test]
    fn byte_size_is_12_per_edge() {
        let coo = Coo::from_arrays(4, vec![0, 1], vec![1, 2], vec![1.0, 1.0]);
        assert_eq!(coo.byte_size(), 24);
    }

    #[test]
    fn empty_coo() {
        let coo = Coo::from_csr(&Csr::from_edges(0, &[]));
        assert_eq!(coo.num_edges(), 0);
        assert_eq!(coo.num_vertices(), 0);
    }
}
