//! Rich properties on vertices and edges.
//!
//! In industrial graph systems the data attached to vertices and edges is as
//! important as the topology: the paper lists meta-data (user profiles),
//! program states (BFS status, colors) and complex probability tables
//! (Bayesian inference) as typical property payloads. [`Property`] covers
//! those shapes and [`PropertyMap`] stores them inline in the owning vertex
//! structure — the defining trait of the vertex-centric representation.

use graphbig_json::codec::{DecodeError, FromJson, ToJson};
use graphbig_json::{json_struct, Json};

use crate::error::{GraphError, Result};
use crate::trace::{addr_of, Tracer};

/// Property keys are small integers. Workloads and applications agree on key
/// constants; a handful of well-known ones are predefined.
pub type PropertyKey = u32;

/// Well-known property keys used across the suite.
pub mod keys {
    use super::PropertyKey;

    /// Traversal/algorithm status word (BFS level, visited flag, ...).
    pub const STATUS: PropertyKey = 0;
    /// Distance value (SPath).
    pub const DISTANCE: PropertyKey = 1;
    /// Color (GColor).
    pub const COLOR: PropertyKey = 2;
    /// Core number (kCore).
    pub const CORE: PropertyKey = 3;
    /// Component label (CComp).
    pub const COMPONENT: PropertyKey = 4;
    /// Centrality score (DCentr / BCentr).
    pub const CENTRALITY: PropertyKey = 5;
    /// Triangle count (TC).
    pub const TRIANGLES: PropertyKey = 6;
    /// Conditional probability table (Gibbs).
    pub const CPT: PropertyKey = 7;
    /// Sampled state (Gibbs).
    pub const SAMPLE: PropertyKey = 8;
    /// Free-form label / meta-data.
    pub const LABEL: PropertyKey = 9;
    /// Application payload (rich-property workloads).
    pub const PAYLOAD: PropertyKey = 10;
    /// First key guaranteed free for applications.
    pub const USER_BASE: PropertyKey = 64;
}

/// A single property value.
#[derive(Debug, Clone, PartialEq)]
pub enum Property {
    /// Signed integer payload (status words, counters, labels).
    Int(i64),
    /// Floating-point payload (distances, centrality scores).
    Float(f64),
    /// Textual meta-data (user profiles, names).
    Text(String),
    /// Numeric table (probability tables, feature vectors).
    Vector(Vec<f64>),
}

impl Property {
    /// Approximate in-memory footprint in bytes, used by tracers when a
    /// property is read or written wholesale.
    pub fn byte_size(&self) -> u32 {
        match self {
            Property::Int(_) => 8,
            Property::Float(_) => 8,
            Property::Text(s) => s.len().min(u32::MAX as usize) as u32 + 16,
            Property::Vector(v) => (v.len() * 8).min(u32::MAX as usize) as u32 + 16,
        }
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Property::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Property::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Text payload, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Property::Text(v) => Some(v),
            _ => None,
        }
    }

    /// Vector payload, if this is a `Vector`.
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            Property::Vector(v) => Some(v),
            _ => None,
        }
    }
}

// Externally tagged encoding (`{"Int": 5}`), matching the layout the old
// derive produced so snapshots and manifests keep their shape.
impl ToJson for Property {
    fn to_json(&self) -> Json {
        let (tag, payload) = match self {
            Property::Int(v) => ("Int", v.to_json()),
            Property::Float(v) => ("Float", v.to_json()),
            Property::Text(v) => ("Text", v.to_json()),
            Property::Vector(v) => ("Vector", v.to_json()),
        };
        Json::Obj(vec![(tag.to_string(), payload)])
    }
}

impl FromJson for Property {
    fn from_json(v: &Json) -> std::result::Result<Self, DecodeError> {
        let obj = v
            .as_obj()
            .ok_or_else(|| DecodeError::new("expected single-key Property object"))?;
        match obj {
            [(tag, payload)] => match tag.as_str() {
                "Int" => Ok(Property::Int(
                    FromJson::from_json(payload).map_err(|e| e.in_field("Int"))?,
                )),
                "Float" => Ok(Property::Float(
                    FromJson::from_json(payload).map_err(|e| e.in_field("Float"))?,
                )),
                "Text" => Ok(Property::Text(
                    FromJson::from_json(payload).map_err(|e| e.in_field("Text"))?,
                )),
                "Vector" => Ok(Property::Vector(
                    FromJson::from_json(payload).map_err(|e| e.in_field("Vector"))?,
                )),
                other => Err(DecodeError::new(format!(
                    "unknown Property variant '{other}'"
                ))),
            },
            _ => Err(DecodeError::new("expected single-key Property object")),
        }
    }
}

/// An inline key→value map, stored as a compact vector.
///
/// Real property sets on graph elements are small (a few entries), so linear
/// probing over a dense vector beats a hash map both in speed and in the
/// memory behavior we want to expose to tracers: reading a property touches
/// the vertex's own heap block, giving the in-vertex locality the paper
/// credits for CompProp's regular access pattern.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PropertyMap {
    entries: Vec<(PropertyKey, Property)>,
}

json_struct!(PropertyMap { entries });

impl PropertyMap {
    /// Empty map (no allocation until first insert).
    pub fn new() -> Self {
        PropertyMap {
            entries: Vec::new(),
        }
    }

    /// Number of properties stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace; returns the previous value if any.
    pub fn set(&mut self, key: PropertyKey, value: Property) -> Option<Property> {
        self.set_t(key, value, &mut crate::trace::NullTracer)
    }

    /// Traced variant of [`PropertyMap::set`].
    pub fn set_t<T: Tracer>(
        &mut self,
        key: PropertyKey,
        value: Property,
        t: &mut T,
    ) -> Option<Property> {
        let bytes = value.byte_size();
        for entry in self.entries.iter_mut() {
            t.load(addr_of(entry), 8);
            t.branch(line!() as usize ^ ((key as usize) << 8), entry.0 == key);
            if entry.0 == key {
                t.store(addr_of(entry), bytes);
                return Some(std::mem::replace(&mut entry.1, value));
            }
        }
        self.entries.push((key, value));
        t.store(addr_of(self.entries.last().unwrap()), bytes + 8);
        None
    }

    /// Look up a property.
    pub fn get(&self, key: PropertyKey) -> Option<&Property> {
        self.get_t(key, &mut crate::trace::NullTracer)
    }

    /// Traced variant of [`PropertyMap::get`].
    pub fn get_t<T: Tracer>(&self, key: PropertyKey, t: &mut T) -> Option<&Property> {
        for entry in self.entries.iter() {
            t.load(addr_of(entry), 8);
            t.branch(line!() as usize ^ ((key as usize) << 8), entry.0 == key);
            if entry.0 == key {
                // Trace the value header (and small payloads); consumers of
                // large vector payloads trace their own element reads.
                t.load(addr_of(&entry.1), entry.1.byte_size().min(64));
                return Some(&entry.1);
            }
        }
        None
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: PropertyKey) -> Option<&mut Property> {
        self.entries
            .iter_mut()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Remove a property, returning it.
    pub fn remove(&mut self, key: PropertyKey) -> Option<Property> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        Some(self.entries.swap_remove(pos).1)
    }

    /// Typed integer read.
    pub fn get_int(&self, key: PropertyKey) -> Result<i64> {
        match self.get(key) {
            None => Err(GraphError::PropertyNotFound(key)),
            Some(Property::Int(v)) => Ok(*v),
            Some(_) => Err(GraphError::PropertyTypeMismatch(key)),
        }
    }

    /// Typed float read.
    pub fn get_float(&self, key: PropertyKey) -> Result<f64> {
        match self.get(key) {
            None => Err(GraphError::PropertyNotFound(key)),
            Some(Property::Float(v)) => Ok(*v),
            Some(_) => Err(GraphError::PropertyTypeMismatch(key)),
        }
    }

    /// Iterate over `(key, value)` pairs in insertion order (modulo removals).
    pub fn iter(&self) -> impl Iterator<Item = (PropertyKey, &Property)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Total approximate byte footprint of all stored properties.
    pub fn byte_size(&self) -> u32 {
        self.entries.iter().map(|(_, v)| v.byte_size() + 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_get_round_trips() {
        let mut m = PropertyMap::new();
        assert!(m.is_empty());
        m.set(keys::STATUS, Property::Int(3));
        m.set(keys::DISTANCE, Property::Float(1.5));
        m.set(keys::LABEL, Property::Text("hub".into()));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get_int(keys::STATUS).unwrap(), 3);
        assert_eq!(m.get_float(keys::DISTANCE).unwrap(), 1.5);
        assert_eq!(m.get(keys::LABEL).unwrap().as_text(), Some("hub"));
    }

    #[test]
    fn set_replaces_and_returns_previous() {
        let mut m = PropertyMap::new();
        assert_eq!(m.set(keys::STATUS, Property::Int(1)), None);
        let prev = m.set(keys::STATUS, Property::Int(2));
        assert_eq!(prev, Some(Property::Int(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get_int(keys::STATUS).unwrap(), 2);
    }

    #[test]
    fn typed_reads_report_missing_and_mismatched() {
        let mut m = PropertyMap::new();
        m.set(keys::STATUS, Property::Int(1));
        assert_eq!(
            m.get_float(keys::STATUS),
            Err(GraphError::PropertyTypeMismatch(keys::STATUS))
        );
        assert_eq!(
            m.get_int(keys::COLOR),
            Err(GraphError::PropertyNotFound(keys::COLOR))
        );
    }

    #[test]
    fn remove_deletes_entry() {
        let mut m = PropertyMap::new();
        m.set(1, Property::Int(10));
        m.set(2, Property::Int(20));
        assert_eq!(m.remove(1), Some(Property::Int(10)));
        assert_eq!(m.get(1), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(1), None);
    }

    #[test]
    fn byte_sizes_reflect_payload() {
        assert_eq!(Property::Int(0).byte_size(), 8);
        assert_eq!(Property::Float(0.0).byte_size(), 8);
        assert_eq!(Property::Text("abcd".into()).byte_size(), 20);
        assert_eq!(Property::Vector(vec![0.0; 4]).byte_size(), 48);
    }

    #[test]
    fn traced_get_emits_loads() {
        use crate::trace::CountingTracer;
        let mut m = PropertyMap::new();
        m.set(5, Property::Int(7));
        m.set(9, Property::Int(8));
        let mut t = CountingTracer::new();
        let v = m.get_t(9, &mut t).unwrap().as_int();
        assert_eq!(v, Some(8));
        // scans two entries (one key miss, one hit) + payload load
        assert_eq!(t.loads, 3);
        assert_eq!(t.branches, 2);
    }

    #[test]
    fn vector_property_accessor() {
        let p = Property::Vector(vec![0.25, 0.75]);
        assert_eq!(p.as_vector(), Some(&[0.25, 0.75][..]));
        assert_eq!(p.as_int(), None);
    }

    #[test]
    fn map_byte_size_sums_entries() {
        let mut m = PropertyMap::new();
        m.set(1, Property::Int(0)); // 8 + 8 overhead
        m.set(2, Property::Vector(vec![0.0; 2])); // 32 + 8
        assert_eq!(m.byte_size(), 16 + 40);
    }
}
