//! [`PropertyGraph`]: the dynamic, vertex-centric property graph at the heart
//! of the framework.
//!
//! All structural primitives — find/add/delete vertex/edge, neighbor and
//! parent traversal, property update — are offered in two forms: a plain
//! method (`add_edge`) and a traced method (`add_edge_t`) that reports every
//! memory access, branch and code-region switch to a [`Tracer`]. The plain
//! form simply calls the traced form with [`NullTracer`], so there is exactly
//! one implementation of each primitive.

use crate::error::{GraphError, Result};
use crate::index::VertexIndex;
use crate::property::{Property, PropertyKey};
use crate::trace::{addr_of, NullTracer, Region, Tracer};
use crate::types::VertexId;
use crate::vertex::{Edge, Vertex};

/// A dynamic directed property graph with vertex-centric storage.
///
/// Undirected graphs are represented by storing each edge in both
/// directions ([`PropertyGraph::add_edge_undirected`]); [`PropertyGraph::num_arcs`]
/// counts stored directed arcs.
pub struct PropertyGraph {
    index: VertexIndex,
    /// Deterministic user-facing iteration order (insertion order with
    /// swap-remove on deletion).
    order: Vec<VertexId>,
    num_arcs: usize,
    next_id: VertexId,
}

impl PropertyGraph {
    /// Empty graph.
    pub fn new() -> Self {
        PropertyGraph {
            index: VertexIndex::new(),
            order: Vec::new(),
            num_arcs: 0,
            next_id: 0,
        }
    }

    /// Empty graph pre-sized for about `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        PropertyGraph {
            index: VertexIndex::with_capacity(n),
            order: Vec::with_capacity(n),
            num_arcs: 0,
            next_id: 0,
        }
    }

    // ------------------------------------------------------------------
    // size queries
    // ------------------------------------------------------------------

    /// Number of live vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.index.len()
    }

    /// Number of stored directed arcs (an undirected edge counts twice).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Whether the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    // ------------------------------------------------------------------
    // vertex primitives
    // ------------------------------------------------------------------

    /// Add a vertex with an automatically assigned id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.add_vertex_t(&mut NullTracer)
    }

    /// Traced variant of [`PropertyGraph::add_vertex`].
    pub fn add_vertex_t<T: Tracer>(&mut self, t: &mut T) -> VertexId {
        loop {
            let id = self.next_id;
            self.next_id += 1;
            if self.add_vertex_with_id_t(id, t).is_ok() {
                return id;
            }
        }
    }

    /// Add a vertex with a caller-chosen id.
    pub fn add_vertex_with_id(&mut self, id: VertexId) -> Result<()> {
        self.add_vertex_with_id_t(id, &mut NullTracer)
    }

    /// Traced variant of [`PropertyGraph::add_vertex_with_id`].
    pub fn add_vertex_with_id_t<T: Tracer>(&mut self, id: VertexId, t: &mut T) -> Result<()> {
        t.enter_framework();
        t.region(Region::AddVertex);
        t.alu(4); // id bookkeeping + box setup
        let mut v = Box::new(Vertex::new(id));
        v.order_idx = self.order.len() as u32;
        let r = match self.index.insert_t(v, t) {
            Ok(()) => {
                self.order.push(id);
                t.store(addr_of(self.order.last().unwrap()), 8);
                if id >= self.next_id {
                    self.next_id = id + 1;
                }
                Ok(())
            }
            Err(_) => Err(GraphError::DuplicateVertex(id)),
        };
        t.exit_framework();
        r
    }

    /// Find a vertex by id.
    #[inline]
    pub fn find_vertex(&self, id: VertexId) -> Option<&Vertex> {
        self.index.get(id)
    }

    /// Traced vertex lookup (the `find_vertex` primitive of Figure 1).
    pub fn find_vertex_t<T: Tracer>(&self, id: VertexId, t: &mut T) -> Option<&Vertex> {
        t.enter_framework();
        t.region(Region::FindVertex);
        t.alu(2); // hash computation
        let r = self.index.get_t(id, t);
        t.exit_framework();
        r
    }

    /// Mutable vertex lookup.
    #[inline]
    pub fn find_vertex_mut(&mut self, id: VertexId) -> Option<&mut Vertex> {
        self.index.get_mut(id)
    }

    /// Traced mutable vertex lookup.
    pub fn find_vertex_mut_t<T: Tracer>(&mut self, id: VertexId, t: &mut T) -> Option<&mut Vertex> {
        t.enter_framework();
        t.region(Region::FindVertex);
        t.alu(2);
        let r = self.index.get_mut_t(id, t);
        t.exit_framework();
        r
    }

    /// Delete a vertex and all incident edges (in both directions).
    pub fn delete_vertex(&mut self, id: VertexId) -> Result<()> {
        self.delete_vertex_t(id, &mut NullTracer)
    }

    /// Traced variant of [`PropertyGraph::delete_vertex`].
    pub fn delete_vertex_t<T: Tracer>(&mut self, id: VertexId, t: &mut T) -> Result<()> {
        t.enter_framework();
        t.region(Region::DeleteVertex);
        let Some(v) = self.index.remove_t(id, t) else {
            t.exit_framework();
            return Err(GraphError::VertexNotFound(id));
        };

        // Detach outgoing edges: remove `id` from each target's parent list.
        for e in v.out.iter() {
            t.load(addr_of(e), 16);
            if e.target == id {
                continue; // self-loop; vertex is already gone
            }
            if let Some(tv) = self.index.get_mut_t(e.target, t) {
                if let Some(pos) = traced_position(&tv.parents, id, t) {
                    tv.parents.swap_remove(pos);
                    t.store(addr_of(&tv.parents), 8);
                }
            }
        }
        self.num_arcs -= v.out.len();

        // Detach incoming edges: remove arcs parent->id from each parent.
        for &p in v.parents.iter() {
            t.load(addr_of(&p), 8);
            if p == id {
                continue;
            }
            if let Some(pv) = self.index.get_mut_t(p, t) {
                let before = pv.out.len();
                for e in pv.out.iter() {
                    t.load(addr_of(e), 16);
                    t.branch(line!() as usize, e.target == id);
                }
                pv.out.retain(|e| e.target != id);
                let removed = before - pv.out.len();
                t.store(addr_of(&pv.out), 8);
                self.num_arcs -= removed;
            }
        }

        // Maintain deterministic order with a swap-remove.
        let idx = v.order_idx as usize;
        debug_assert_eq!(self.order[idx], id);
        self.order.swap_remove(idx);
        t.store(addr_of(&self.order), 8);
        if idx < self.order.len() {
            let moved = self.order[idx];
            if let Some(mv) = self.index.get_mut_t(moved, t) {
                mv.order_idx = idx as u32;
            }
        }
        t.exit_framework();
        Ok(())
    }

    // ------------------------------------------------------------------
    // edge primitives
    // ------------------------------------------------------------------

    /// Add a directed edge `from -> to`. Parallel edges are allowed.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, weight: f32) -> Result<()> {
        self.add_edge_t(from, to, weight, &mut NullTracer)
    }

    /// Traced variant of [`PropertyGraph::add_edge`].
    pub fn add_edge_t<T: Tracer>(
        &mut self,
        from: VertexId,
        to: VertexId,
        weight: f32,
        t: &mut T,
    ) -> Result<()> {
        t.enter_framework();
        t.region(Region::AddEdge);
        if self.index.get_t(to, t).is_none() {
            t.exit_framework();
            return Err(GraphError::VertexNotFound(to));
        }
        {
            let Some(src) = self.index.get_mut_t(from, t) else {
                t.exit_framework();
                return Err(GraphError::VertexNotFound(from));
            };
            src.out.push(Edge::weighted(to, weight));
            t.store(addr_of(src.out.last().unwrap()), 16);
        }
        let dst = self
            .index
            .get_mut_t(to, t)
            .expect("target vertex verified above");
        dst.parents.push(from);
        t.store(addr_of(dst.parents.last().unwrap()), 8);
        self.num_arcs += 1;
        t.exit_framework();
        Ok(())
    }

    /// Add a directed edge only if no `from -> to` edge exists yet.
    pub fn add_edge_unique(&mut self, from: VertexId, to: VertexId, weight: f32) -> Result<()> {
        self.add_edge_unique_t(from, to, weight, &mut NullTracer)
    }

    /// Traced variant of [`PropertyGraph::add_edge_unique`].
    pub fn add_edge_unique_t<T: Tracer>(
        &mut self,
        from: VertexId,
        to: VertexId,
        weight: f32,
        t: &mut T,
    ) -> Result<()> {
        {
            t.enter_framework();
            t.region(Region::AddEdge);
            let exists = match self.index.get_t(from, t) {
                Some(v) => v.find_edge_t(to, t).is_some(),
                None => {
                    t.exit_framework();
                    return Err(GraphError::VertexNotFound(from));
                }
            };
            t.exit_framework();
            if exists {
                return Err(GraphError::DuplicateEdge { from, to });
            }
        }
        self.add_edge_t(from, to, weight, t)
    }

    /// Add an undirected edge (stored as two arcs).
    pub fn add_edge_undirected(&mut self, a: VertexId, b: VertexId, weight: f32) -> Result<()> {
        self.add_edge_undirected_t(a, b, weight, &mut NullTracer)
    }

    /// Traced variant of [`PropertyGraph::add_edge_undirected`].
    pub fn add_edge_undirected_t<T: Tracer>(
        &mut self,
        a: VertexId,
        b: VertexId,
        weight: f32,
        t: &mut T,
    ) -> Result<()> {
        self.add_edge_t(a, b, weight, t)?;
        if a != b {
            self.add_edge_t(b, a, weight, t)?;
        }
        Ok(())
    }

    /// Delete one `from -> to` arc.
    pub fn delete_edge(&mut self, from: VertexId, to: VertexId) -> Result<()> {
        self.delete_edge_t(from, to, &mut NullTracer)
    }

    /// Traced variant of [`PropertyGraph::delete_edge`].
    pub fn delete_edge_t<T: Tracer>(
        &mut self,
        from: VertexId,
        to: VertexId,
        t: &mut T,
    ) -> Result<()> {
        t.enter_framework();
        t.region(Region::DeleteEdge);
        {
            let Some(src) = self.index.get_mut_t(from, t) else {
                t.exit_framework();
                return Err(GraphError::VertexNotFound(from));
            };
            let Some(pos) = traced_edge_position(&src.out, to, t) else {
                t.exit_framework();
                return Err(GraphError::EdgeNotFound { from, to });
            };
            src.out.swap_remove(pos);
            t.store(addr_of(&src.out), 16);
        }
        if let Some(dst) = self.index.get_mut_t(to, t) {
            if let Some(pos) = traced_position(&dst.parents, from, t) {
                dst.parents.swap_remove(pos);
                t.store(addr_of(&dst.parents), 8);
            }
        }
        self.num_arcs -= 1;
        t.exit_framework();
        Ok(())
    }

    /// Whether a `from -> to` arc exists.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.find_vertex(from)
            .map(|v| v.find_edge(to).is_some())
            .unwrap_or(false)
    }

    /// Out-degree of `id`, if the vertex exists.
    pub fn out_degree(&self, id: VertexId) -> Option<usize> {
        self.find_vertex(id).map(|v| v.out_degree())
    }

    // ------------------------------------------------------------------
    // traversal primitives
    // ------------------------------------------------------------------

    /// Visit each outgoing edge of `id`, tracing the neighbor-list walk.
    ///
    /// Returns `false` if the vertex does not exist.
    pub fn visit_neighbors_t<T: Tracer>(
        &self,
        id: VertexId,
        t: &mut T,
        mut f: impl FnMut(&Edge, &mut T),
    ) -> bool {
        t.enter_framework();
        t.region(Region::TraverseNeighbors);
        let Some(v) = self.index.get_t(id, t) else {
            t.exit_framework();
            return false;
        };
        t.load(addr_of(&v.out), 24); // Vec header
        for e in v.out.iter() {
            t.load(addr_of(e), 16);
            t.branch(line!() as usize, true); // loop back-edge, taken per element
            f(e, t);
        }
        t.branch(line!() as usize, false); // loop exit
        t.exit_framework();
        true
    }

    /// Visit each parent (in-neighbor) id of `id`, traced.
    pub fn visit_parents_t<T: Tracer>(
        &self,
        id: VertexId,
        t: &mut T,
        mut f: impl FnMut(VertexId, &mut T),
    ) -> bool {
        t.enter_framework();
        t.region(Region::TraverseParents);
        let Some(v) = self.index.get_t(id, t) else {
            t.exit_framework();
            return false;
        };
        t.load(addr_of(&v.parents), 24);
        for &p in v.parents.iter() {
            t.load(addr_of(&p), 8);
            t.branch(line!() as usize, true);
            f(p, t);
        }
        t.branch(line!() as usize, false);
        t.exit_framework();
        true
    }

    /// Untraced neighbor iterator.
    pub fn neighbors(&self, id: VertexId) -> impl Iterator<Item = &Edge> + '_ {
        self.find_vertex(id)
            .map(|v| v.out.iter())
            .unwrap_or_else(|| [].iter())
    }

    /// Untraced parent-id iterator.
    pub fn parents(&self, id: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.find_vertex(id)
            .map(|v| v.parents.iter().copied())
            .unwrap_or_else(|| [].iter().copied())
    }

    // ------------------------------------------------------------------
    // property primitives
    // ------------------------------------------------------------------

    /// Set a property on a vertex through the framework.
    pub fn set_vertex_prop(
        &mut self,
        id: VertexId,
        key: PropertyKey,
        value: Property,
    ) -> Result<()> {
        self.set_vertex_prop_t(id, key, value, &mut NullTracer)
    }

    /// Traced property update (the `update properties` primitive).
    pub fn set_vertex_prop_t<T: Tracer>(
        &mut self,
        id: VertexId,
        key: PropertyKey,
        value: Property,
        t: &mut T,
    ) -> Result<()> {
        t.enter_framework();
        t.region(Region::PropertyAccess);
        let r = match self.index.get_mut_t(id, t) {
            Some(v) => {
                v.props.set_t(key, value, t);
                Ok(())
            }
            None => Err(GraphError::VertexNotFound(id)),
        };
        t.exit_framework();
        r
    }

    /// Read a property from a vertex through the framework.
    pub fn get_vertex_prop(&self, id: VertexId, key: PropertyKey) -> Option<&Property> {
        self.find_vertex(id).and_then(|v| v.props.get(key))
    }

    /// Traced property read.
    pub fn get_vertex_prop_t<T: Tracer>(
        &self,
        id: VertexId,
        key: PropertyKey,
        t: &mut T,
    ) -> Option<&Property> {
        t.enter_framework();
        t.region(Region::PropertyAccess);
        let r = self.index.get_t(id, t).and_then(|v| v.props.get_t(key, t));
        t.exit_framework();
        r
    }

    /// Set a property on the first `from -> to` edge through the framework.
    pub fn set_edge_prop(
        &mut self,
        from: VertexId,
        to: VertexId,
        key: PropertyKey,
        value: Property,
    ) -> Result<()> {
        self.set_edge_prop_t(from, to, key, value, &mut NullTracer)
    }

    /// Traced edge-property update.
    pub fn set_edge_prop_t<T: Tracer>(
        &mut self,
        from: VertexId,
        to: VertexId,
        key: PropertyKey,
        value: Property,
        t: &mut T,
    ) -> Result<()> {
        t.enter_framework();
        t.region(Region::PropertyAccess);
        let r = (|| {
            let Some(src) = self.index.get_mut_t(from, t) else {
                return Err(GraphError::VertexNotFound(from));
            };
            let Some(pos) = traced_edge_position(&src.out, to, t) else {
                return Err(GraphError::EdgeNotFound { from, to });
            };
            src.out[pos].props.set_t(key, value, t);
            Ok(())
        })();
        t.exit_framework();
        r
    }

    /// Read a property from the first `from -> to` edge.
    pub fn get_edge_prop(
        &self,
        from: VertexId,
        to: VertexId,
        key: PropertyKey,
    ) -> Option<&Property> {
        self.find_vertex(from)
            .and_then(|v| v.find_edge(to))
            .and_then(|e| e.props.get(key))
    }

    /// Traced edge-property read.
    pub fn get_edge_prop_t<T: Tracer>(
        &self,
        from: VertexId,
        to: VertexId,
        key: PropertyKey,
        t: &mut T,
    ) -> Option<&Property> {
        t.enter_framework();
        t.region(Region::PropertyAccess);
        let r = self
            .index
            .get_t(from, t)
            .and_then(|v| v.find_edge_t(to, t))
            .and_then(|e| e.props.get_t(key, t));
        t.exit_framework();
        r
    }

    /// Remove property `key` from every vertex (workload state reset).
    pub fn clear_prop(&mut self, key: PropertyKey) {
        let ids: Vec<VertexId> = self.order.clone();
        for id in ids {
            if let Some(v) = self.index.get_mut(id) {
                v.props.remove(key);
            }
        }
    }

    // ------------------------------------------------------------------
    // iteration
    // ------------------------------------------------------------------

    /// Vertex ids in deterministic order (insertion order, perturbed only by
    /// swap-removes on deletion).
    #[inline]
    pub fn vertex_ids(&self) -> &[VertexId] {
        &self.order
    }

    /// Iterate over vertices in deterministic order.
    pub fn vertices(&self) -> impl Iterator<Item = &Vertex> + '_ {
        self.order.iter().filter_map(move |&id| self.index.get(id))
    }

    /// Iterate `(source, edge)` over all arcs in deterministic order.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, &Edge)> + '_ {
        self.vertices()
            .flat_map(|v| v.out.iter().map(move |e| (v.id, e)))
    }

    /// The id that [`PropertyGraph::add_vertex`] would assign next.
    #[inline]
    pub fn peek_next_id(&self) -> VertexId {
        self.next_id
    }
}

impl Default for PropertyGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PropertyGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PropertyGraph")
            .field("vertices", &self.num_vertices())
            .field("arcs", &self.num_arcs)
            .finish()
    }
}

/// Traced scan for a vertex id inside a parent list.
fn traced_position<T: Tracer>(list: &[VertexId], needle: VertexId, t: &mut T) -> Option<usize> {
    for (i, &x) in list.iter().enumerate() {
        t.load(addr_of(&x), 8);
        t.branch(line!() as usize, x == needle);
        if x == needle {
            return Some(i);
        }
    }
    None
}

/// Traced scan for an edge with a given target.
fn traced_edge_position<T: Tracer>(list: &[Edge], target: VertexId, t: &mut T) -> Option<usize> {
    for (i, e) in list.iter().enumerate() {
        t.load(addr_of(e), 16);
        t.branch(line!() as usize, e.target == target);
        if e.target == target {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::keys;
    use crate::trace::CountingTracer;

    fn diamond() -> (PropertyGraph, [VertexId; 4]) {
        // a -> b, a -> c, b -> d, c -> d
        let mut g = PropertyGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        let c = g.add_vertex();
        let d = g.add_vertex();
        g.add_edge(a, b, 1.0).unwrap();
        g.add_edge(a, c, 1.0).unwrap();
        g.add_edge(b, d, 1.0).unwrap();
        g.add_edge(c, d, 1.0).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn build_diamond() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.out_degree(a), Some(2));
        assert_eq!(g.out_degree(d), Some(0));
        assert!(g.has_edge(b, d));
        assert!(!g.has_edge(d, b));
        let parents: Vec<_> = g.parents(d).collect();
        assert_eq!(parents.len(), 2);
        assert!(parents.contains(&b) && parents.contains(&c));
    }

    #[test]
    fn add_edge_to_missing_vertex_fails() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex();
        assert_eq!(g.add_edge(a, 99, 1.0), Err(GraphError::VertexNotFound(99)));
        assert_eq!(g.add_edge(99, a, 1.0), Err(GraphError::VertexNotFound(99)));
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn delete_vertex_removes_incident_arcs() {
        let (mut g, [a, b, c, d]) = diamond();
        g.delete_vertex(b).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 2); // a->c, c->d remain
        assert_eq!(g.out_degree(a), Some(1));
        let parents: Vec<_> = g.parents(d).collect();
        assert_eq!(parents, vec![c]);
        assert!(g.find_vertex(b).is_none());
        assert_eq!(g.delete_vertex(b), Err(GraphError::VertexNotFound(b)));
    }

    #[test]
    fn delete_edge_updates_both_sides() {
        let (mut g, [a, b, _c, d]) = diamond();
        g.delete_edge(a, b).unwrap();
        assert!(!g.has_edge(a, b));
        assert_eq!(g.num_arcs(), 3);
        assert!(g.parents(b).next().is_none());
        assert_eq!(
            g.delete_edge(a, b),
            Err(GraphError::EdgeNotFound { from: a, to: b })
        );
        // unrelated edges untouched
        assert!(g.has_edge(b, d));
    }

    #[test]
    fn self_loop_add_and_delete_vertex() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex();
        g.add_edge(a, a, 1.0).unwrap();
        assert_eq!(g.num_arcs(), 1);
        assert_eq!(g.out_degree(a), Some(1));
        g.delete_vertex(a).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn undirected_edge_stores_two_arcs() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge_undirected(a, b, 2.0).unwrap();
        assert_eq!(g.num_arcs(), 2);
        assert!(g.has_edge(a, b) && g.has_edge(b, a));
        // self-loop stored once
        g.add_edge_undirected(a, a, 1.0).unwrap();
        assert_eq!(g.num_arcs(), 3);
    }

    #[test]
    fn unique_edge_rejects_duplicates() {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge_unique(a, b, 1.0).unwrap();
        assert_eq!(
            g.add_edge_unique(a, b, 1.0),
            Err(GraphError::DuplicateEdge { from: a, to: b })
        );
        // plain add_edge allows the parallel edge
        g.add_edge(a, b, 1.0).unwrap();
        assert_eq!(g.out_degree(a), Some(2));
    }

    #[test]
    fn explicit_ids_coexist_with_auto_ids() {
        let mut g = PropertyGraph::new();
        g.add_vertex_with_id(100).unwrap();
        let auto = g.add_vertex();
        assert_eq!(auto, 101, "auto ids continue past explicit ids");
        assert_eq!(
            g.add_vertex_with_id(100),
            Err(GraphError::DuplicateVertex(100))
        );
    }

    #[test]
    fn vertex_ids_order_is_insertion_order() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.vertex_ids(), &[a, b, c, d]);
    }

    #[test]
    fn order_stays_consistent_after_deletions() {
        let (mut g, [a, b, c, d]) = diamond();
        g.delete_vertex(a).unwrap();
        // swap-remove moved d into slot 0
        assert_eq!(g.vertex_ids(), &[d, b, c]);
        // every id in order must resolve, and order_idx must round-trip
        for (i, &id) in g.vertex_ids().iter().enumerate() {
            assert_eq!(g.find_vertex(id).unwrap().order_idx as usize, i);
        }
        g.delete_vertex(c).unwrap();
        assert_eq!(g.vertex_ids(), &[d, b]);
    }

    #[test]
    fn properties_through_framework() {
        let (mut g, [a, ..]) = diamond();
        g.set_vertex_prop(a, keys::STATUS, Property::Int(7))
            .unwrap();
        assert_eq!(
            g.get_vertex_prop(a, keys::STATUS).unwrap().as_int(),
            Some(7)
        );
        g.clear_prop(keys::STATUS);
        assert!(g.get_vertex_prop(a, keys::STATUS).is_none());
        assert_eq!(
            g.set_vertex_prop(999, keys::STATUS, Property::Int(0)),
            Err(GraphError::VertexNotFound(999))
        );
    }

    #[test]
    fn edge_properties_through_framework() {
        let (mut g, [a, b, ..]) = diamond();
        g.set_edge_prop(a, b, keys::LABEL, Property::Text("follows".into()))
            .unwrap();
        assert_eq!(
            g.get_edge_prop(a, b, keys::LABEL).unwrap().as_text(),
            Some("follows")
        );
        assert!(
            g.get_edge_prop(b, a, keys::LABEL).is_none(),
            "no reverse edge"
        );
        assert_eq!(
            g.set_edge_prop(a, 999, keys::LABEL, Property::Int(0)),
            Err(GraphError::EdgeNotFound { from: a, to: 999 })
        );
        assert_eq!(
            g.set_edge_prop(999, a, keys::LABEL, Property::Int(0)),
            Err(GraphError::VertexNotFound(999))
        );
        assert_eq!(
            g.set_edge_prop(b, a, keys::LABEL, Property::Int(0)),
            Err(GraphError::EdgeNotFound { from: b, to: a })
        );
        // traced read reports framework work
        let mut t = CountingTracer::new();
        assert!(g.get_edge_prop_t(a, b, keys::LABEL, &mut t).is_some());
        assert!(t.framework_instructions > 0);
    }

    #[test]
    fn visit_neighbors_traced_covers_all_edges() {
        let (g, [a, ..]) = diamond();
        let mut t = CountingTracer::new();
        let mut seen = Vec::new();
        assert!(g.visit_neighbors_t(a, &mut t, |e, _| seen.push(e.target)));
        assert_eq!(seen.len(), 2);
        assert!(t.framework_instructions > 0);
        assert!(!g.visit_neighbors_t(1234, &mut t, |_, _| {}));
    }

    #[test]
    fn visit_parents_traced() {
        let (g, [_, b, c, d]) = diamond();
        let mut t = CountingTracer::new();
        let mut seen = Vec::new();
        assert!(g.visit_parents_t(d, &mut t, |p, _| seen.push(p)));
        seen.sort_unstable();
        let mut expect = vec![b, c];
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn arcs_iterator_enumerates_all() {
        let (g, _) = diamond();
        assert_eq!(g.arcs().count(), 4);
    }

    #[test]
    fn framework_fraction_dominates_for_primitive_heavy_code() {
        // A traversal-style loop spends almost all instructions inside
        // framework primitives — the Figure 1 effect.
        let (g, [a, ..]) = diamond();
        let mut t = CountingTracer::new();
        for _ in 0..100 {
            g.find_vertex_t(a, &mut t);
            g.visit_neighbors_t(a, &mut t, |_, _| {});
            t.alu(2); // tiny amount of user work
        }
        assert!(
            t.framework_fraction() > 0.6,
            "got {}",
            t.framework_fraction()
        );
    }

    #[test]
    fn larger_random_graph_maintains_arc_count() {
        let mut g = PropertyGraph::new();
        let n = 500u64;
        for _ in 0..n {
            g.add_vertex();
        }
        let mut arcs = 0usize;
        for i in 0..n {
            for j in 1..=3 {
                let to = (i * 7 + j * 13) % n;
                g.add_edge(i, to, 1.0).unwrap();
                arcs += 1;
            }
        }
        assert_eq!(g.num_arcs(), arcs);
        // delete a third of the vertices
        for i in (0..n).step_by(3) {
            g.delete_vertex(i).unwrap();
        }
        // recount arcs by iteration; counter must agree
        let recount = g.arcs().count();
        assert_eq!(g.num_arcs(), recount);
        // all remaining arcs reference live vertices
        for (src, e) in g.arcs() {
            assert!(g.find_vertex(src).is_some());
            assert!(g.find_vertex(e.target).is_some());
        }
    }
}
