//! Compact binary graph snapshots.
//!
//! Industrial graph stores persist and ship graphs; this module gives the
//! framework a versioned binary format for [`PropertyGraph`] — topology,
//! edge weights, and vertex/edge properties — with no buffer crate behind
//! it: writing appends little-endian words to a `Vec<u8>`, reading walks a
//! bounds-checked cursor. The format is deliberately simple
//! (length-prefixed sections, little-endian) rather than schema-evolving;
//! it round-trips everything the suite produces.
//!
//! ```
//! use graphbig_framework::prelude::*;
//! use graphbig_framework::snapshot;
//!
//! let mut g = PropertyGraph::new();
//! let a = g.add_vertex();
//! let b = g.add_vertex();
//! g.add_edge(a, b, 2.5).unwrap();
//! let bytes = snapshot::save(&g);
//! let g2 = snapshot::load(&bytes).unwrap();
//! assert!(g2.has_edge(a, b));
//! ```

use crate::error::{GraphError, Result};
use crate::graph::PropertyGraph;
use crate::property::{Property, PropertyMap};
use crate::types::VertexId;

const MAGIC: u32 = 0x4742_4947; // "GBIG"
const VERSION: u16 = 1;

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_TEXT: u8 = 2;
const TAG_VECTOR: u8 = 3;

/// Append-only little-endian writer over a plain `Vec<u8>`.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked little-endian cursor over a snapshot byte slice. Tracks
/// the consumed offset so every truncation error can say exactly where the
/// input ran out, not just that it did.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Fail with offset/length context unless `n` more bytes are available.
    fn need(&self, n: usize, what: &str) -> Result<()> {
        if self.buf.len() < n {
            return Err(malformed(&format!(
                "truncated {what}: need {n} bytes at offset {}, {} remaining",
                self.pos,
                self.buf.len()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        self.need(n, "input")?;
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        self.pos += n;
        Ok(head)
    }

    fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn get_u16_le(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn get_u32_le(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_u64_le(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_i64_le(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_f32_le(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_f64_le(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Serialize a graph to its binary snapshot.
pub fn save(g: &PropertyGraph) -> Vec<u8> {
    let mut buf = Writer::with_capacity(64 + g.num_vertices() * 24 + g.num_arcs() * 16);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_arcs() as u64);
    // vertices in deterministic order, each with its property map
    for &id in g.vertex_ids() {
        let v = g.find_vertex(id).expect("order ids are live");
        buf.put_u64_le(id);
        put_props(&mut buf, &v.props);
    }
    // arcs with weight + properties
    for (u, e) in g.arcs() {
        buf.put_u64_le(u);
        buf.put_u64_le(e.target);
        buf.put_f32_le(e.weight);
        put_props(&mut buf, &e.props);
    }
    buf.buf
}

/// Deserialize a binary snapshot.
pub fn load(bytes: &[u8]) -> Result<PropertyGraph> {
    let mut buf = Reader::new(bytes);
    buf.need(22, "header")?;
    if buf.get_u32_le()? != MAGIC {
        return Err(malformed("bad magic"));
    }
    let version = buf.get_u16_le()?;
    if version != VERSION {
        return Err(malformed(&format!("unsupported version {version}")));
    }
    let n = buf.get_u64_le()? as usize;
    let m = buf.get_u64_le()? as usize;

    let mut g = PropertyGraph::with_capacity(n);
    for i in 0..n {
        buf.need(8, &format!("vertex section (vertex {i} of {n})"))?;
        let id = buf.get_u64_le()?;
        g.add_vertex_with_id(id)
            .map_err(|_| malformed(&format!("duplicate vertex {id}")))?;
        let props = get_props(&mut buf)?;
        for (k, v) in props.iter() {
            g.set_vertex_prop(id, k, v.clone()).expect("vertex exists");
        }
    }
    for i in 0..m {
        buf.need(20, &format!("arc section (arc {i} of {m})"))?;
        let u = buf.get_u64_le()?;
        let v: VertexId = buf.get_u64_le()?;
        let w = buf.get_f32_le()?;
        g.add_edge(u, v, w)?;
        let props = get_props(&mut buf)?;
        for (k, val) in props.iter() {
            g.set_edge_prop(u, v, k, val.clone()).expect("edge exists");
        }
    }
    Ok(g)
}

fn put_props(buf: &mut Writer, props: &PropertyMap) {
    buf.put_u32_le(props.len() as u32);
    for (k, v) in props.iter() {
        buf.put_u32_le(k);
        match v {
            Property::Int(x) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*x);
            }
            Property::Float(x) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64_le(*x);
            }
            Property::Text(s) => {
                buf.put_u8(TAG_TEXT);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Property::Vector(xs) => {
                buf.put_u8(TAG_VECTOR);
                buf.put_u32_le(xs.len() as u32);
                for &x in xs {
                    buf.put_f64_le(x);
                }
            }
        }
    }
}

fn get_props(buf: &mut Reader<'_>) -> Result<PropertyMap> {
    buf.need(4, "property count")?;
    let count = buf.get_u32_le()?;
    let mut props = PropertyMap::new();
    for _ in 0..count {
        buf.need(5, "property header")?;
        let key = buf.get_u32_le()?;
        let tag = buf.get_u8()?;
        let value = match tag {
            TAG_INT => Property::Int(buf.get_i64_le()?),
            TAG_FLOAT => Property::Float(buf.get_f64_le()?),
            TAG_TEXT => {
                let len = buf.get_u32_le()? as usize;
                let s = std::str::from_utf8(buf.take(len)?)
                    .map_err(|_| malformed("invalid utf-8 in text property"))?
                    .to_string();
                Property::Text(s)
            }
            TAG_VECTOR => {
                let len = buf.get_u32_le()? as usize;
                buf.need(len.saturating_mul(8), "property payload")?;
                let mut xs = Vec::with_capacity(len);
                for _ in 0..len {
                    xs.push(buf.get_f64_le()?);
                }
                Property::Vector(xs)
            }
            other => return Err(malformed(&format!("unknown property tag {other}"))),
        };
        props.set(key, value);
    }
    Ok(props)
}

fn malformed(msg: &str) -> GraphError {
    GraphError::MalformedInput(format!("snapshot: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::keys;

    fn rich_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        let c = g.add_vertex();
        g.add_edge(a, b, 2.5).unwrap();
        g.add_edge(b, c, 1.0).unwrap();
        g.add_edge(c, a, 0.5).unwrap();
        g.set_vertex_prop(a, keys::LABEL, Property::Text("alice".into()))
            .unwrap();
        g.set_vertex_prop(b, keys::STATUS, Property::Int(-7))
            .unwrap();
        g.set_vertex_prop(c, keys::PAYLOAD, Property::Vector(vec![0.25, 0.75]))
            .unwrap();
        g.set_vertex_prop(c, keys::DISTANCE, Property::Float(3.25))
            .unwrap();
        g.set_edge_prop(a, b, keys::LABEL, Property::Text("follows".into()))
            .unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = rich_graph();
        let bytes = save(&g);
        let g2 = load(&bytes).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_arcs(), g.num_arcs());
        assert_eq!(g2.vertex_ids(), g.vertex_ids());
        for (u, e) in g.arcs() {
            let e2 = g2.find_vertex(u).unwrap().find_edge(e.target).unwrap();
            assert_eq!(e2.weight, e.weight);
        }
        assert_eq!(
            g2.get_vertex_prop(0, keys::LABEL).unwrap().as_text(),
            Some("alice")
        );
        assert_eq!(
            g2.get_vertex_prop(1, keys::STATUS).unwrap().as_int(),
            Some(-7)
        );
        assert_eq!(
            g2.get_vertex_prop(2, keys::PAYLOAD).unwrap().as_vector(),
            Some(&[0.25, 0.75][..])
        );
        assert_eq!(
            g2.get_edge_prop(0, 1, keys::LABEL).unwrap().as_text(),
            Some("follows")
        );
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(load(b"nonsense").is_err());
        assert!(load(&[]).is_err());
        let g = rich_graph();
        let bytes = save(&g);
        for cut in [6usize, 23, bytes.len() / 2, bytes.len() - 1] {
            assert!(load(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn truncation_errors_carry_offset_and_length_context() {
        let g = rich_graph();
        let bytes = save(&g);
        for cut in [6usize, 23, bytes.len() / 2, bytes.len() - 1] {
            let msg = load(&bytes[..cut]).unwrap_err().to_string();
            assert!(msg.contains("truncated"), "cut {cut}: {msg}");
            assert!(
                msg.contains("at offset") && msg.contains("remaining"),
                "cut {cut} must name where the input ran out: {msg}"
            );
        }
        // A cut mid-vertex-section names the vertex it died on.
        let msg = load(&bytes[..23]).unwrap_err().to_string();
        assert!(msg.contains("vertex"), "{msg}");
    }

    #[test]
    fn rejects_wrong_version() {
        let g = rich_graph();
        let mut bytes = save(&g);
        bytes[4] = 99; // version field
        assert!(load(&bytes).is_err());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = PropertyGraph::new();
        let g2 = load(&save(&g)).unwrap();
        assert!(g2.is_empty());
    }

    #[test]
    fn generated_dataset_round_trips() {
        // end-to-end with non-contiguous ids and duplicate-heavy topology
        let mut g = PropertyGraph::new();
        g.add_vertex_with_id(100).unwrap();
        g.add_vertex_with_id(7).unwrap();
        g.add_edge(100, 7, 1.5).unwrap();
        g.add_edge(100, 7, 2.5).unwrap(); // parallel edge
        let g2 = load(&save(&g)).unwrap();
        assert_eq!(g2.num_arcs(), 2);
        assert_eq!(g2.out_degree(100), Some(2));
    }
}
