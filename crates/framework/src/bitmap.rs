//! Lock-free atomic bitmap — the dense frontier representation used by the
//! direction-optimizing parallel kernels.
//!
//! The GAP Benchmark Suite's direction-optimizing BFS keeps the frontier as
//! a shared bitmap during bottom-up steps so that membership tests are one
//! load and insertions are one `fetch_or`. The bitmap here is word-addressed
//! (64 bits per word) and exposes cache-line geometry ([`AtomicBitmap::CACHE_LINE_BITS`])
//! so parallel loops can align their chunk boundaries to whole cache lines
//! and avoid false sharing between workers scanning adjacent regions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// A fixed-size bitmap with atomic set/test, sized at construction.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    bits: usize,
}

impl AtomicBitmap {
    /// Bits covered by one 64-byte cache line of bitmap words.
    pub const CACHE_LINE_BITS: usize = 512;

    /// An all-zero bitmap covering `bits` positions.
    pub fn new(bits: usize) -> Self {
        let nwords = bits.div_ceil(WORD_BITS);
        AtomicBitmap {
            words: (0..nwords).map(|_| AtomicU64::new(0)).collect(),
            bits,
        }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits
    }

    /// True when the bitmap covers zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Atomically set bit `i`; returns `true` if this call flipped it
    /// (i.e. the bit was previously clear). The `fetch_or` makes concurrent
    /// duplicate insertions resolve to exactly one winner.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        let mask = 1u64 << (i % WORD_BITS);
        let prev = self.words[i / WORD_BITS].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Read bit `i` (relaxed; callers synchronize via their parallel region).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        let mask = 1u64 << (i % WORD_BITS);
        self.words[i / WORD_BITS].load(Ordering::Relaxed) & mask != 0
    }

    /// Clear every bit. Cheap enough to call once per BFS level; for very
    /// large bitmaps prefer [`AtomicBitmap::clear_range`] under a parallel loop.
    pub fn clear(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Clear every bit through exclusive access — plain stores instead of
    /// atomic ones, so the optimizer can vectorize the sweep. This is the
    /// between-queries reuse path: a kernel that keeps its bitmap across
    /// runs calls `reset` instead of allocating a fresh [`AtomicBitmap`].
    pub fn reset(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Clear the words fully covering the bit range `lo..hi` (both rounded
    /// out to word boundaries). Intended for parallel clears where each
    /// worker owns a cache-line-aligned slice.
    pub fn clear_range(&self, lo: usize, hi: usize) {
        let lo_w = lo / WORD_BITS;
        let hi_w = hi.div_ceil(WORD_BITS).min(self.words.len());
        for w in &self.words[lo_w..hi_w] {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Population count over the whole bitmap.
    pub fn count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Population count over words covering `lo..hi` (word-rounded, so the
    /// caller must pass word-aligned boundaries for exact partial counts).
    pub fn count_range(&self, lo: usize, hi: usize) -> usize {
        let lo_w = lo / WORD_BITS;
        let hi_w = hi.div_ceil(WORD_BITS).min(self.words.len());
        self.words[lo_w..hi_w]
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Visit every set bit in ascending order (word-at-a-time popcount walk).
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, w) in self.words.iter().enumerate() {
            let mut bits = w.load(Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                f(wi * WORD_BITS + b);
                bits &= bits - 1;
            }
        }
    }

    /// Visit set bits within the word-aligned range `lo..hi`, ascending.
    pub fn for_each_set_in(&self, lo: usize, hi: usize, mut f: impl FnMut(usize)) {
        debug_assert!(lo.is_multiple_of(WORD_BITS), "range must be word-aligned");
        let lo_w = lo / WORD_BITS;
        let hi_w = hi.div_ceil(WORD_BITS).min(self.words.len());
        for wi in lo_w..hi_w {
            let mut bits = self.words[wi].load(Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let i = wi * WORD_BITS + b;
                if i >= hi {
                    break;
                }
                f(i);
                bits &= bits - 1;
            }
        }
    }

    /// Collect all set bits ascending into a vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count());
        self.for_each_set(|i| out.push(i as u32));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_reports_first_insertion_only() {
        let b = AtomicBitmap::new(130);
        assert!(b.set(0));
        assert!(!b.set(0));
        assert!(b.set(64));
        assert!(b.set(129));
        assert!(!b.set(129));
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn get_tracks_set() {
        let b = AtomicBitmap::new(100);
        assert!(!b.get(77));
        b.set(77);
        assert!(b.get(77));
        assert!(!b.get(78));
    }

    #[test]
    fn clear_resets_everything() {
        let b = AtomicBitmap::new(200);
        for i in (0..200).step_by(3) {
            b.set(i);
        }
        b.clear();
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn for_each_set_ascending() {
        let b = AtomicBitmap::new(300);
        let want = [1usize, 63, 64, 65, 128, 255, 299];
        for &i in &want {
            b.set(i);
        }
        let mut got = Vec::new();
        b.for_each_set(|i| got.push(i));
        assert_eq!(got, want);
        assert_eq!(
            b.to_vec(),
            want.iter().map(|&i| i as u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranged_ops_cover_word_slices() {
        let b = AtomicBitmap::new(512);
        b.set(10);
        b.set(100);
        b.set(300);
        assert_eq!(b.count_range(64, 256), 1);
        let mut got = Vec::new();
        b.for_each_set_in(64, 512, |i| got.push(i));
        assert_eq!(got, vec![100, 300]);
        b.clear_range(64, 320);
        assert_eq!(b.to_vec(), vec![10]);
    }

    #[test]
    fn reset_clears_in_place_without_reallocating() {
        let mut b = AtomicBitmap::new(1024);
        for i in (0..1024).step_by(7) {
            b.set(i);
        }
        let words_ptr = b.words.as_ptr();
        b.reset();
        assert_eq!(b.count(), 0);
        assert_eq!(b.len(), 1024);
        assert_eq!(
            b.words.as_ptr(),
            words_ptr,
            "reset must reuse the existing word storage"
        );
        // Still fully usable after reset.
        assert!(b.set(512));
        assert_eq!(b.to_vec(), vec![512]);
    }

    #[test]
    fn empty_bitmap_is_fine() {
        let b = AtomicBitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        b.clear();
    }

    #[test]
    fn concurrent_set_dedups() {
        use std::sync::Arc;
        let b = Arc::new(AtomicBitmap::new(10_000));
        let wins: Vec<std::thread::JoinHandle<usize>> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || (0..10_000).filter(|&i| b.set(i)).count())
            })
            .collect();
        let total: usize = wins.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10_000, "each bit must have exactly one winner");
        assert_eq!(b.count(), 10_000);
    }
}
