//! Topology statistics used to check that generated datasets exhibit the
//! Table 2 features of their data-source family.

use graphbig_json::json_struct;

use crate::graph::PropertyGraph;

/// Degree/topology summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub num_vertices: usize,
    /// Stored arc count.
    pub num_arcs: usize,
    /// Minimum out-degree.
    pub min_degree: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Population variance of out-degree — social networks have high degree
    /// variance, road networks very low (Table 2).
    pub degree_variance: f64,
    /// Histogram over log2 degree buckets: `bucket[i]` counts vertices with
    /// out-degree in `[2^i, 2^(i+1))`; bucket 0 additionally holds degree 0.
    pub degree_histogram: Vec<usize>,
}

json_struct!(GraphStats {
    num_vertices,
    num_arcs,
    min_degree,
    max_degree,
    avg_degree,
    degree_variance,
    degree_histogram
});

impl GraphStats {
    /// Compute stats over a dynamic graph.
    pub fn compute(g: &PropertyGraph) -> Self {
        let degrees: Vec<usize> = g.vertices().map(|v| v.out_degree()).collect();
        Self::from_degrees(&degrees, g.num_arcs())
    }

    /// Compute stats from a degree vector (also used for CSR graphs).
    pub fn from_degrees(degrees: &[usize], num_arcs: usize) -> Self {
        let n = degrees.len();
        if n == 0 {
            return GraphStats {
                num_vertices: 0,
                num_arcs: 0,
                min_degree: 0,
                max_degree: 0,
                avg_degree: 0.0,
                degree_variance: 0.0,
                degree_histogram: Vec::new(),
            };
        }
        let min = degrees.iter().copied().min().unwrap();
        let max = degrees.iter().copied().max().unwrap();
        let sum: usize = degrees.iter().sum();
        let avg = sum as f64 / n as f64;
        let var = degrees
            .iter()
            .map(|&d| {
                let diff = d as f64 - avg;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        let buckets = if max == 0 {
            1
        } else {
            (usize::BITS - max.leading_zeros()) as usize
        };
        let mut hist = vec![0usize; buckets];
        for &d in degrees {
            let b = if d == 0 {
                0
            } else {
                (usize::BITS - d.leading_zeros()) as usize - 1
            };
            hist[b] += 1;
        }
        GraphStats {
            num_vertices: n,
            num_arcs,
            min_degree: min,
            max_degree: max,
            avg_degree: avg,
            degree_variance: var,
            degree_histogram: hist,
        }
    }

    /// Coefficient of variation of degree (stddev / mean); a scale-free
    /// social graph scores far above a road network.
    pub fn degree_cv(&self) -> f64 {
        if self.avg_degree == 0.0 {
            0.0
        } else {
            self.degree_variance.sqrt() / self.avg_degree
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} arcs={} degree min/avg/max = {}/{:.2}/{} (cv {:.2})",
            self.num_vertices,
            self.num_arcs,
            self.min_degree,
            self.avg_degree,
            self.max_degree,
            self.degree_cv()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_star_graph() {
        let mut g = PropertyGraph::new();
        let hub = g.add_vertex();
        for _ in 0..9 {
            let leaf = g.add_vertex();
            g.add_edge(hub, leaf, 1.0).unwrap();
        }
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_arcs, 9);
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.min_degree, 0);
        assert!((s.avg_degree - 0.9).abs() < 1e-9);
        assert!(s.degree_cv() > 2.0, "star graph is extremely skewed");
    }

    #[test]
    fn stats_of_cycle_are_uniform() {
        let mut g = PropertyGraph::new();
        let ids: Vec<_> = (0..8).map(|_| g.add_vertex()).collect();
        for i in 0..8 {
            g.add_edge(ids[i], ids[(i + 1) % 8], 1.0).unwrap();
        }
        let s = GraphStats::compute(&g);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 1);
        assert_eq!(s.degree_variance, 0.0);
        assert_eq!(s.degree_cv(), 0.0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        // degrees: 0, 1, 2, 3, 4 -> buckets 0:{0,1}=2, 1:{2,3}=2, 2:{4}=1
        let s = GraphStats::from_degrees(&[0, 1, 2, 3, 4], 10);
        assert_eq!(s.degree_histogram, vec![2, 2, 1]);
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::compute(&PropertyGraph::new());
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert!(s.degree_histogram.is_empty());
    }

    #[test]
    fn display_mentions_counts() {
        let s = GraphStats::from_degrees(&[1, 1], 2);
        let text = s.to_string();
        assert!(text.contains("|V|=2"));
        assert!(text.contains("arcs=2"));
    }
}
