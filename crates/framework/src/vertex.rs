//! The vertex-centric storage unit: [`Vertex`] and its inline [`Edge`] list.
//!
//! In the representation of Figure 2(c), "the vertex property and the
//! outgoing edges stay within the same vertex structure". A [`Vertex`] here
//! is exactly that structure: its property map and its out-edge vector live
//! in the same heap block (the vector's buffer is a satellite allocation,
//! as in System G). Each vertex is boxed individually by the
//! [`crate::index::VertexIndex`], so distinct vertices land on scattered
//! heap addresses — the locality profile the paper measures.

use graphbig_json::json_struct;

use crate::property::{Property, PropertyKey, PropertyMap};
use crate::trace::{addr_of, Tracer};
use crate::types::VertexId;

/// An outgoing edge stored inside its source vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Target vertex id.
    pub target: VertexId,
    /// Edge weight; 1.0 for unweighted graphs. Kept inline because nearly
    /// every analytics workload reads it.
    pub weight: f32,
    /// Further edge properties (labels, timestamps, ...).
    pub props: PropertyMap,
}

impl Edge {
    /// Unit-weight edge with no extra properties.
    pub fn new(target: VertexId) -> Self {
        Edge {
            target,
            weight: 1.0,
            props: PropertyMap::new(),
        }
    }

    /// Weighted edge with no extra properties.
    pub fn weighted(target: VertexId, weight: f32) -> Self {
        Edge {
            target,
            weight,
            props: PropertyMap::new(),
        }
    }
}

json_struct!(Edge {
    target,
    weight,
    props
});

/// A vertex structure: id, properties, out-edge adjacency list, and the
/// in-neighbor (parent) list needed for deletions and moralization.
#[derive(Debug, Clone, PartialEq)]
pub struct Vertex {
    /// Stable external id.
    pub id: VertexId,
    /// Rich properties attached to this vertex.
    pub props: PropertyMap,
    /// Outgoing edges (the inner adjacency list of Figure 2(c)).
    pub out: Vec<Edge>,
    /// Ids of vertices with an edge *into* this vertex. Maintained by the
    /// graph so vertex deletion and parent traversal (TMorph moralization)
    /// do not require a full scan.
    pub parents: Vec<VertexId>,
    /// Position of this vertex in the graph's deterministic iteration order;
    /// maintained by [`crate::graph::PropertyGraph`].
    pub(crate) order_idx: u32,
}

json_struct!(Vertex {
    id,
    props,
    out,
    parents,
    order_idx
});

impl Vertex {
    /// Fresh vertex with no edges or properties.
    pub fn new(id: VertexId) -> Self {
        Vertex {
            id,
            props: PropertyMap::new(),
            out: Vec::new(),
            parents: Vec::new(),
            order_idx: u32::MAX,
        }
    }

    /// Out-degree of the vertex.
    #[inline]
    pub fn out_degree(&self) -> usize {
        self.out.len()
    }

    /// In-degree of the vertex.
    #[inline]
    pub fn in_degree(&self) -> usize {
        self.parents.len()
    }

    /// Find the outgoing edge to `target`, tracing the scan.
    pub fn find_edge_t<T: Tracer>(&self, target: VertexId, t: &mut T) -> Option<&Edge> {
        for e in self.out.iter() {
            t.load(addr_of(e), 16);
            t.branch(line!() as usize, e.target == target);
            if e.target == target {
                return Some(e);
            }
        }
        None
    }

    /// Untraced edge lookup.
    pub fn find_edge(&self, target: VertexId) -> Option<&Edge> {
        self.out.iter().find(|e| e.target == target)
    }

    /// Set a vertex property, tracing the access.
    pub fn set_prop_t<T: Tracer>(&mut self, key: PropertyKey, value: Property, t: &mut T) {
        t.load(addr_of(self), 16);
        self.props.set_t(key, value, t);
    }

    /// Read a vertex property, tracing the access.
    pub fn get_prop_t<'s, T: Tracer>(
        &'s self,
        key: PropertyKey,
        t: &mut T,
    ) -> Option<&'s Property> {
        t.load(addr_of(self), 16);
        self.props.get_t(key, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::keys;
    use crate::trace::CountingTracer;

    #[test]
    fn new_vertex_is_isolated() {
        let v = Vertex::new(42);
        assert_eq!(v.id, 42);
        assert_eq!(v.out_degree(), 0);
        assert_eq!(v.in_degree(), 0);
        assert!(v.props.is_empty());
    }

    #[test]
    fn find_edge_scans_out_list() {
        let mut v = Vertex::new(0);
        v.out.push(Edge::new(1));
        v.out.push(Edge::weighted(2, 3.5));
        assert_eq!(v.find_edge(2).unwrap().weight, 3.5);
        assert!(v.find_edge(9).is_none());
    }

    #[test]
    fn traced_find_edge_reports_scan_length() {
        let mut v = Vertex::new(0);
        for i in 1..=5 {
            v.out.push(Edge::new(i));
        }
        let mut t = CountingTracer::new();
        assert!(v.find_edge_t(5, &mut t).is_some());
        assert_eq!(t.loads, 5); // scanned all five entries
        let mut t2 = CountingTracer::new();
        assert!(v.find_edge_t(77, &mut t2).is_none());
        assert_eq!(t2.loads, 5);
    }

    #[test]
    fn vertex_properties_round_trip() {
        let mut v = Vertex::new(3);
        let mut t = CountingTracer::new();
        v.set_prop_t(keys::COLOR, Property::Int(2), &mut t);
        assert_eq!(v.get_prop_t(keys::COLOR, &mut t).unwrap().as_int(), Some(2));
        assert!(t.stores >= 1);
    }

    #[test]
    fn default_edge_weight_is_one() {
        assert_eq!(Edge::new(7).weight, 1.0);
    }
}
