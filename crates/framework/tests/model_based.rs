//! Model-based property tests: the from-scratch substrates (vertex index,
//! dynamic graph, snapshot format) checked against `std` reference models
//! under arbitrary operation sequences — on the in-tree harness
//! (`graphbig_datagen::prop`), preserving the old proptest invariants and
//! case budgets (128 for the index, 96 for the graph model).

use std::collections::{HashMap, HashSet};

use graphbig_datagen::prop::{check, lowercase_string, Config, Shrink};
use graphbig_datagen::rng::Rng;
use graphbig_framework::index::VertexIndex;
use graphbig_framework::prelude::*;
use graphbig_framework::snapshot;
use graphbig_framework::vertex::Vertex;

/// Operations on the vertex index.
#[derive(Debug, Clone)]
enum IndexOp {
    Insert(u64),
    Remove(u64),
    Lookup(u64),
}

impl Shrink for IndexOp {}

fn index_ops(rng: &mut Rng) -> Vec<IndexOp> {
    let n = rng.gen_range(0usize..400);
    (0..n)
        .map(|_| {
            let id = rng.gen_range(0u64..200);
            match rng.gen_range(0u32..3) {
                0 => IndexOp::Insert(id),
                1 => IndexOp::Remove(id),
                _ => IndexOp::Lookup(id),
            }
        })
        .collect()
}

#[test]
fn vertex_index_behaves_like_a_hash_map() {
    check(
        "vertex_index_behaves_like_a_hash_map",
        Config::with_cases(128),
        index_ops,
        |ops| {
            let mut idx = VertexIndex::new();
            let mut model: HashSet<u64> = HashSet::new();
            for op in ops {
                match *op {
                    IndexOp::Insert(id) => {
                        let ours = idx.insert(Box::new(Vertex::new(id))).is_ok();
                        let model_ok = model.insert(id);
                        assert_eq!(ours, model_ok, "insert {id}");
                    }
                    IndexOp::Remove(id) => {
                        let ours = idx.remove(id).is_some();
                        let model_ok = model.remove(&id);
                        assert_eq!(ours, model_ok, "remove {id}");
                    }
                    IndexOp::Lookup(id) => {
                        assert_eq!(idx.get(id).is_some(), model.contains(&id), "lookup {id}");
                    }
                }
                assert_eq!(idx.len(), model.len());
            }
            // final sweep: every model element is found, iteration matches
            for &id in &model {
                assert!(idx.get(id).is_some());
            }
            let mut seen: Vec<u64> = idx.iter().map(|v| v.id).collect();
            seen.sort_unstable();
            let mut want: Vec<u64> = model.into_iter().collect();
            want.sort_unstable();
            assert_eq!(seen, want);
        },
    );
}

/// Operations on the dynamic graph.
#[derive(Debug, Clone)]
enum GraphOp {
    AddVertex(u64),
    DeleteVertex(u64),
    AddEdge(u64, u64),
    DeleteEdge(u64, u64),
}

impl Shrink for GraphOp {}

fn graph_ops(rng: &mut Rng) -> Vec<GraphOp> {
    let n = rng.gen_range(0usize..300);
    (0..n)
        .map(|_| match rng.gen_range(0u32..4) {
            0 => GraphOp::AddVertex(rng.gen_range(0u64..60)),
            1 => GraphOp::DeleteVertex(rng.gen_range(0u64..60)),
            2 => GraphOp::AddEdge(rng.gen_range(0u64..60), rng.gen_range(0u64..60)),
            _ => GraphOp::DeleteEdge(rng.gen_range(0u64..60), rng.gen_range(0u64..60)),
        })
        .collect()
}

/// Reference model: adjacency as multiset of arcs.
#[derive(Default)]
struct ModelGraph {
    vertices: HashSet<u64>,
    arcs: Vec<(u64, u64)>,
}

#[test]
fn property_graph_matches_reference_model() {
    check(
        "property_graph_matches_reference_model",
        Config::with_cases(96),
        graph_ops,
        |ops| {
            let mut g = PropertyGraph::new();
            let mut m = ModelGraph::default();
            for op in ops {
                match *op {
                    GraphOp::AddVertex(id) => {
                        let ours = g.add_vertex_with_id(id).is_ok();
                        let model_ok = m.vertices.insert(id);
                        assert_eq!(ours, model_ok);
                    }
                    GraphOp::DeleteVertex(id) => {
                        let ours = g.delete_vertex(id).is_ok();
                        let model_ok = m.vertices.remove(&id);
                        assert_eq!(ours, model_ok);
                        if model_ok {
                            m.arcs.retain(|&(a, b)| a != id && b != id);
                        }
                    }
                    GraphOp::AddEdge(a, b) => {
                        let ours = g.add_edge(a, b, 1.0).is_ok();
                        let model_ok = m.vertices.contains(&a) && m.vertices.contains(&b);
                        assert_eq!(ours, model_ok);
                        if model_ok {
                            m.arcs.push((a, b));
                        }
                    }
                    GraphOp::DeleteEdge(a, b) => {
                        let ours = g.delete_edge(a, b).is_ok();
                        let pos = m.arcs.iter().position(|&(x, y)| x == a && y == b);
                        assert_eq!(ours, pos.is_some());
                        if let Some(p) = pos {
                            m.arcs.swap_remove(p);
                        }
                    }
                }
                assert_eq!(g.num_vertices(), m.vertices.len());
                assert_eq!(g.num_arcs(), m.arcs.len());
            }
            // arc multiset equality
            let mut ours: Vec<(u64, u64)> = g.arcs().map(|(u, e)| (u, e.target)).collect();
            let mut want = m.arcs.clone();
            ours.sort_unstable();
            want.sort_unstable();
            assert_eq!(ours, want);
            // parent lists mirror arcs exactly
            let mut parent_pairs: Vec<(u64, u64)> = Vec::new();
            for &id in g.vertex_ids() {
                for p in g.parents(id) {
                    parent_pairs.push((p, id));
                }
            }
            parent_pairs.sort_unstable();
            let mut want2 = m.arcs.clone();
            want2.sort_unstable();
            assert_eq!(parent_pairs, want2);
        },
    );
}

#[test]
fn snapshot_round_trips_arbitrary_graphs() {
    check(
        "snapshot_round_trips_arbitrary_graphs",
        Config::with_cases(96),
        |rng| {
            let ops = graph_ops(rng);
            let n_labels = rng.gen_range(0usize..10);
            let labels: Vec<String> = (0..n_labels)
                .map(|_| lowercase_string(rng, 0..=8))
                .collect();
            (ops, labels)
        },
        |(ops, labels)| {
            let mut g = PropertyGraph::new();
            for op in ops {
                match *op {
                    GraphOp::AddVertex(id) => {
                        let _ = g.add_vertex_with_id(id);
                    }
                    GraphOp::DeleteVertex(id) => {
                        let _ = g.delete_vertex(id);
                    }
                    GraphOp::AddEdge(a, b) => {
                        let _ = g.add_edge(a, b, 1.5);
                    }
                    GraphOp::DeleteEdge(a, b) => {
                        let _ = g.delete_edge(a, b);
                    }
                }
            }
            for (i, label) in labels.iter().enumerate() {
                let ids: Vec<u64> = g.vertex_ids().to_vec();
                if let Some(&id) = ids.get(i) {
                    g.set_vertex_prop(id, 9, Property::Text(label.clone()))
                        .unwrap();
                    g.set_vertex_prop(id, 10, Property::Vector(vec![i as f64; 3]))
                        .unwrap();
                }
            }
            let bytes = snapshot::save(&g);
            let g2 = snapshot::load(&bytes).unwrap();
            assert_eq!(g2.num_vertices(), g.num_vertices());
            assert_eq!(g2.num_arcs(), g.num_arcs());
            let props = |gr: &PropertyGraph| -> HashMap<u64, Option<String>> {
                gr.vertex_ids()
                    .iter()
                    .map(|&id| {
                        (
                            id,
                            gr.get_vertex_prop(id, 9)
                                .and_then(|p| p.as_text())
                                .map(str::to_string),
                        )
                    })
                    .collect()
            };
            assert_eq!(props(&g2), props(&g));
        },
    );
}
