//! Model-based property tests: the from-scratch substrates (vertex index,
//! dynamic graph, snapshot format) checked against `std` reference models
//! under arbitrary operation sequences.

use std::collections::{HashMap, HashSet};

use graphbig_framework::index::VertexIndex;
use graphbig_framework::prelude::*;
use graphbig_framework::snapshot;
use graphbig_framework::vertex::Vertex;
use proptest::prelude::*;

/// Operations on the vertex index.
#[derive(Debug, Clone)]
enum IndexOp {
    Insert(u64),
    Remove(u64),
    Lookup(u64),
}

fn index_ops() -> impl Strategy<Value = Vec<IndexOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..200).prop_map(IndexOp::Insert),
            (0u64..200).prop_map(IndexOp::Remove),
            (0u64..200).prop_map(IndexOp::Lookup),
        ],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vertex_index_behaves_like_a_hash_map(ops in index_ops()) {
        let mut idx = VertexIndex::new();
        let mut model: HashSet<u64> = HashSet::new();
        for op in ops {
            match op {
                IndexOp::Insert(id) => {
                    let ours = idx.insert(Box::new(Vertex::new(id))).is_ok();
                    let model_ok = model.insert(id);
                    prop_assert_eq!(ours, model_ok, "insert {}", id);
                }
                IndexOp::Remove(id) => {
                    let ours = idx.remove(id).is_some();
                    let model_ok = model.remove(&id);
                    prop_assert_eq!(ours, model_ok, "remove {}", id);
                }
                IndexOp::Lookup(id) => {
                    prop_assert_eq!(idx.get(id).is_some(), model.contains(&id), "lookup {}", id);
                }
            }
            prop_assert_eq!(idx.len(), model.len());
        }
        // final sweep: every model element is found, iteration matches
        for &id in &model {
            prop_assert!(idx.get(id).is_some());
        }
        let mut seen: Vec<u64> = idx.iter().map(|v| v.id).collect();
        seen.sort_unstable();
        let mut want: Vec<u64> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(seen, want);
    }
}

/// Operations on the dynamic graph.
#[derive(Debug, Clone)]
enum GraphOp {
    AddVertex(u64),
    DeleteVertex(u64),
    AddEdge(u64, u64),
    DeleteEdge(u64, u64),
}

fn graph_ops() -> impl Strategy<Value = Vec<GraphOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..60).prop_map(GraphOp::AddVertex),
            (0u64..60).prop_map(GraphOp::DeleteVertex),
            (0u64..60, 0u64..60).prop_map(|(a, b)| GraphOp::AddEdge(a, b)),
            (0u64..60, 0u64..60).prop_map(|(a, b)| GraphOp::DeleteEdge(a, b)),
        ],
        0..300,
    )
}

/// Reference model: adjacency as multiset of arcs.
#[derive(Default)]
struct ModelGraph {
    vertices: HashSet<u64>,
    arcs: Vec<(u64, u64)>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn property_graph_matches_reference_model(ops in graph_ops()) {
        let mut g = PropertyGraph::new();
        let mut m = ModelGraph::default();
        for op in ops {
            match op {
                GraphOp::AddVertex(id) => {
                    let ours = g.add_vertex_with_id(id).is_ok();
                    let model_ok = m.vertices.insert(id);
                    prop_assert_eq!(ours, model_ok);
                }
                GraphOp::DeleteVertex(id) => {
                    let ours = g.delete_vertex(id).is_ok();
                    let model_ok = m.vertices.remove(&id);
                    prop_assert_eq!(ours, model_ok);
                    if model_ok {
                        m.arcs.retain(|&(a, b)| a != id && b != id);
                    }
                }
                GraphOp::AddEdge(a, b) => {
                    let ours = g.add_edge(a, b, 1.0).is_ok();
                    let model_ok = m.vertices.contains(&a) && m.vertices.contains(&b);
                    prop_assert_eq!(ours, model_ok);
                    if model_ok {
                        m.arcs.push((a, b));
                    }
                }
                GraphOp::DeleteEdge(a, b) => {
                    let ours = g.delete_edge(a, b).is_ok();
                    let pos = m.arcs.iter().position(|&(x, y)| x == a && y == b);
                    prop_assert_eq!(ours, pos.is_some());
                    if let Some(p) = pos {
                        m.arcs.swap_remove(p);
                    }
                }
            }
            prop_assert_eq!(g.num_vertices(), m.vertices.len());
            prop_assert_eq!(g.num_arcs(), m.arcs.len());
        }
        // arc multiset equality
        let mut ours: Vec<(u64, u64)> = g.arcs().map(|(u, e)| (u, e.target)).collect();
        let mut want = m.arcs.clone();
        ours.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(ours, want);
        // parent lists mirror arcs exactly
        let mut parent_pairs: Vec<(u64, u64)> = Vec::new();
        for &id in g.vertex_ids() {
            for p in g.parents(id) {
                parent_pairs.push((p, id));
            }
        }
        parent_pairs.sort_unstable();
        let mut want2 = m.arcs;
        want2.sort_unstable();
        prop_assert_eq!(parent_pairs, want2);
    }

    #[test]
    fn snapshot_round_trips_arbitrary_graphs(ops in graph_ops(), labels in proptest::collection::vec("[a-z]{0,8}", 0..10)) {
        let mut g = PropertyGraph::new();
        for op in ops {
            match op {
                GraphOp::AddVertex(id) => { let _ = g.add_vertex_with_id(id); }
                GraphOp::DeleteVertex(id) => { let _ = g.delete_vertex(id); }
                GraphOp::AddEdge(a, b) => { let _ = g.add_edge(a, b, 1.5); }
                GraphOp::DeleteEdge(a, b) => { let _ = g.delete_edge(a, b); }
            }
        }
        for (i, label) in labels.iter().enumerate() {
            let ids: Vec<u64> = g.vertex_ids().to_vec();
            if let Some(&id) = ids.get(i) {
                g.set_vertex_prop(id, 9, Property::Text(label.clone())).unwrap();
                g.set_vertex_prop(id, 10, Property::Vector(vec![i as f64; 3])).unwrap();
            }
        }
        let bytes = snapshot::save(&g);
        let g2 = snapshot::load(&bytes).unwrap();
        prop_assert_eq!(g2.num_vertices(), g.num_vertices());
        prop_assert_eq!(g2.num_arcs(), g.num_arcs());
        let props = |gr: &PropertyGraph| -> HashMap<u64, Option<String>> {
            gr.vertex_ids()
                .iter()
                .map(|&id| {
                    (
                        id,
                        gr.get_vertex_prop(id, 9)
                            .and_then(|p| p.as_text())
                            .map(str::to_string),
                    )
                })
                .collect()
        };
        prop_assert_eq!(props(&g2), props(&g));
    }
}
