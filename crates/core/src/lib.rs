//! # graphbig
//!
//! GraphBIG-RS: a Rust reproduction of *GraphBIG: Understanding Graph
//! Computing in the Context of Industrial Solutions* (SC '15) — the
//! System-G-inspired benchmark suite plus the CPU/GPU architecture models
//! that regenerate the paper's characterization figures.
//!
//! This umbrella crate re-exports every subsystem:
//!
//! * [`framework`] — dynamic vertex-centric property graph, CSR/COO, tracing
//! * [`datagen`] — the five Table 5/7 datasets plus DAG/Bayesian inputs
//! * [`machine`] — CPU model (caches, DTLB, branch predictor, top-down cycles)
//! * [`simt`] — GPU model (warp divergence, coalescing, throughput)
//! * [`runtime`] — thread pool, parallel-for, barrier
//! * [`workloads`] — the 13 CPU workloads (Table 4)
//! * [`engine`] — sharded, admission-controlled concurrent query engine
//! * [`gpu`] — the 8 GPU workloads
//! * [`profile`] — reports and paper reference values
//! * [`telemetry`] — spans, metrics, run manifests (the `telemetry`
//!   feature compiles span recording into the runtime and workloads)
//! * [`chaos`] — deterministic fault-injection failpoints (the `chaos`
//!   feature compiles injection sites into the runtime and engine)
//!
//! ```
//! use graphbig::prelude::*;
//!
//! let g = Dataset::Ldbc.generate_with_vertices(1_000);
//! let csr = Csr::from_graph(&g);
//! assert_eq!(csr.num_vertices(), 1_000);
//! ```

#![warn(missing_docs)]

pub use graphbig_chaos as chaos;
pub use graphbig_datagen as datagen;
pub use graphbig_engine as engine;
pub use graphbig_framework as framework;
pub use graphbig_gpu as gpu;
pub use graphbig_machine as machine;
pub use graphbig_profile as profile;
pub use graphbig_runtime as runtime;
pub use graphbig_simt as simt;
pub use graphbig_telemetry as telemetry;
pub use graphbig_workloads as workloads;

/// One-stop import for applications and examples.
pub mod prelude {
    pub use graphbig_datagen::{Dataset, DatasetSpec};
    pub use graphbig_framework::prelude::*;
    pub use graphbig_machine::{CoreModel, CpuConfig, PerfCounters};
    pub use graphbig_runtime::ThreadPool;
    pub use graphbig_simt::{GpuConfig, GpuMetrics};
    pub use graphbig_workloads::prelude::*;
}
