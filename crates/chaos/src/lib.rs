//! Deterministic fault-injection failpoints for the GraphBIG serving stack.
//!
//! A *failpoint* is a named site in the engine or runtime where a fault can
//! be forced: a delay, a spurious admission rejection, a forced deadline
//! expiry or cancellation, a panic, or an epoch republish. Which faults fire
//! where is declared by a [`FaultPlan`] — a JSON document, like
//! `MixSpec` — and armed process-wide with [`arm`]. Every trigger decision
//! is a **pure function of the plan seed, the site name, and the request
//! key**, so a chaotic run is replayable bit-for-bit from one seed and is
//! independent of thread scheduling.
//!
//! Feature-gating mirrors the telemetry `spans` pattern: with the
//! `failpoints` feature off (the default), [`failpoint!`] expands to an
//! inlined `None` and none of the registry machinery is compiled — zero
//! cost in the hot path. With the feature on but no plan armed, each site
//! costs one relaxed atomic load.
//!
//! ```no_run
//! use graphbig_chaos::{self as chaos, FaultPlan};
//!
//! let plan: FaultPlan = graphbig_json::from_str(r#"{...}"#).unwrap();
//! chaos::arm(&plan);
//! // ... run the chaotic mix ...
//! chaos::disarm();
//! ```

#![warn(missing_docs)]

use graphbig_json::{json_enum, json_struct};

/// Key value meaning "this context has no chaos identity"; keyed failpoints
/// never fire for it. Used by untargeted cancel tokens (e.g. the sequential
/// oracle) so they stay immune even while a plan is armed.
pub const NO_KEY: u64 = u64::MAX;

/// Panic message used by chaos-injected panics. The quiet panic hook
/// ([`install_quiet_panic_hook`]) suppresses the default report for panics
/// whose payload starts with this marker.
pub const PANIC_MSG: &str = "chaos-injected panic";

/// What a firing failpoint does to its site.
///
/// Not every site honours every action; sites ignore actions they cannot
/// express (e.g. `RejectQueueFull` outside admission). `Delay` is honoured
/// at every site and is performed by [`fire`] itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep for the spec's `delay_us` microseconds at the site.
    Delay,
    /// Admission: report a spurious queue-full rejection (and roll back the
    /// already-reserved slot/cost).
    RejectQueueFull,
    /// Admission: report a spurious cost-budget rejection.
    RejectCostBudget,
    /// Force the query to be treated as past its deadline.
    DeadlineExpire,
    /// Force the query's cancel token to report cancellation.
    Cancel,
    /// Panic with [`PANIC_MSG`] (sites that are panic-safe only).
    Panic,
    /// Traffic driver: republish the current snapshot as a new epoch
    /// mid-mix.
    Republish,
    /// Engine result-cache insert path: store a corrupted output so a
    /// later cache hit serves a wrong answer. The sequential-oracle digest
    /// comparison must flag the run — proving the oracle actually guards
    /// the cache path, not just the compute path.
    CorruptCache,
    /// Engine resolve path: deliver the response twice, violating the
    /// resolved-once invariant on purpose (exercises the invariant sweep
    /// and the flight-recorder failure dump).
    DoubleResolve,
    /// Overlay read path: answer a point query from the base snapshot
    /// alone, ignoring the delta overlay — a stale read. The
    /// rebuild-from-scratch oracle must flag the run, proving it guards
    /// the overlay path and not just the base kernels.
    StaleRead,
}

json_enum!(FaultAction {
    Delay,
    RejectQueueFull,
    RejectCostBudget,
    DeadlineExpire,
    Cancel,
    Panic,
    Republish,
    DoubleResolve,
    CorruptCache,
    StaleRead
});

/// How a [`FaultSpec`] decides whether to fire for a given key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire with probability `p`, decided by hashing `(seed, site, key)` —
    /// deterministic per key, schedule-independent.
    Probability,
    /// Fire when `key % n == 0` (first attempt of every n-th request for
    /// keyed sites; every n-th hit for counted sites).
    EveryNth,
    /// Fire exactly for the keys listed in `schedule`.
    Schedule,
}

json_enum!(Trigger {
    Always,
    Probability,
    EveryNth,
    Schedule
});

/// One failpoint activation: a site, a trigger, and an action.
///
/// All fields are always present in the JSON form; `p`, `n`, and `schedule`
/// are read only by the matching [`Trigger`], and `delay_us` only by
/// [`FaultAction::Delay`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Failpoint site name, e.g. `"engine.admit"` (see DESIGN.md §9).
    pub site: String,
    /// Trigger kind.
    pub trigger: Trigger,
    /// Action taken when the trigger fires.
    pub action: FaultAction,
    /// Probability in `[0, 1]` for [`Trigger::Probability`].
    pub p: f64,
    /// Modulus for [`Trigger::EveryNth`] (0 never fires).
    pub n: u64,
    /// Explicit key list for [`Trigger::Schedule`].
    pub schedule: Vec<u64>,
    /// Sleep length in microseconds for [`FaultAction::Delay`].
    pub delay_us: u64,
}

json_struct!(FaultSpec {
    site,
    trigger,
    action,
    p,
    n,
    schedule,
    delay_us
});

/// A seeded, replayable fault-injection plan plus the client retry policy.
///
/// Declared as JSON (like `MixSpec`) and armed process-wide with [`arm`].
/// The same plan and seed always produce the same fault decisions for the
/// same request keys.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for probabilistic triggers and client backoff jitter.
    pub seed: u64,
    /// Client-side resubmission attempts after a rejection (0 = no retry).
    pub max_retries: u64,
    /// First retry backoff in microseconds (doubles per attempt).
    pub backoff_base_us: u64,
    /// Upper bound on the exponential backoff.
    pub backoff_cap_us: u64,
    /// The failpoint activations.
    pub faults: Vec<FaultSpec>,
}

json_struct!(FaultPlan {
    seed,
    max_retries,
    backoff_base_us,
    backoff_cap_us,
    faults
});

impl FaultPlan {
    /// A plan that injects nothing and never retries — `run_mix` semantics.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            max_retries: 0,
            backoff_base_us: 0,
            backoff_cap_us: 0,
            faults: Vec::new(),
        }
    }

    /// True when the plan has no faults to inject.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// A fault handed back to a call site: the action plus its delay parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What the site should do.
    pub action: FaultAction,
}

impl Fault {
    /// True when the site should panic with [`PANIC_MSG`].
    pub fn is_panic(&self) -> bool {
        self.action == FaultAction::Panic
    }
}

/// `splitmix64` finalizer — the same mixing function as `datagen::rng`,
/// inlined here so the crate stays dependency-free below `graphbig-json`.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site name, so trigger decisions depend on the site.
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Pure trigger decision: does `spec` fire at `site` for `key` under `seed`?
///
/// Exposed so tests (and the invariant checker) can predict exactly which
/// keys a plan hits without running anything.
pub fn decides(seed: u64, spec: &FaultSpec, key: u64) -> bool {
    match spec.trigger {
        Trigger::Always => true,
        Trigger::Probability => {
            let h = mix64(seed ^ site_hash(&spec.site) ^ mix64(key));
            // Map the top 53 bits to [0, 1) exactly like Rng::f64.
            let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            unit < spec.p
        }
        Trigger::EveryNth => spec.n != 0 && key.is_multiple_of(spec.n),
        Trigger::Schedule => spec.schedule.contains(&key),
    }
}

/// True when the failpoint machinery is compiled in at all.
pub fn compiled() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(feature = "failpoints")]
mod armed {
    use super::{decides, Fault, FaultAction, FaultPlan, NO_KEY};
    use graphbig_telemetry::recorder;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    /// Fast gate: one relaxed load decides "nothing armed, bail".
    static ARMED: AtomicBool = AtomicBool::new(false);
    static PLAN: Mutex<Option<ArmedPlan>> = Mutex::new(None);

    struct ArmedPlan {
        plan: FaultPlan,
        /// Hit counters for unkeyed (counted) sites, by site name.
        counters: BTreeMap<String, AtomicU64>,
        /// Fired counts per fault spec, aligned with `plan.faults`.
        fired: Vec<AtomicU64>,
    }

    pub fn arm(plan: &FaultPlan) {
        let mut slot = PLAN.lock().unwrap();
        let mut counters = BTreeMap::new();
        for f in &plan.faults {
            counters
                .entry(f.site.clone())
                .or_insert_with(|| AtomicU64::new(0));
        }
        let fired = plan.faults.iter().map(|_| AtomicU64::new(0)).collect();
        *slot = Some(ArmedPlan {
            plan: plan.clone(),
            counters,
            fired,
        });
        ARMED.store(!plan.faults.is_empty(), Ordering::Release);
    }

    pub fn disarm() {
        let mut slot = PLAN.lock().unwrap();
        ARMED.store(false, Ordering::Release);
        *slot = None;
    }

    pub fn is_armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    /// Fired counts since [`arm`], labelled `<site>.<action>`.
    pub fn fired_counts() -> Vec<(String, u64)> {
        let slot = PLAN.lock().unwrap();
        let Some(armed) = slot.as_ref() else {
            return Vec::new();
        };
        armed
            .plan
            .faults
            .iter()
            .zip(&armed.fired)
            .map(|(f, c)| {
                let action = graphbig_json::to_compact(&f.action);
                let action = action.trim_matches('"').to_string();
                (format!("{}.{}", f.site, action), c.load(Ordering::Relaxed))
            })
            .collect()
    }

    fn eval(site: &str, key: u64) -> Option<Fault> {
        let slot = PLAN.lock().unwrap();
        let armed = slot.as_ref()?;
        let mut hit: Option<Fault> = None;
        for (idx, spec) in armed.plan.faults.iter().enumerate() {
            if spec.site != site || !decides(armed.plan.seed, spec, key) {
                continue;
            }
            armed.fired[idx].fetch_add(1, Ordering::Relaxed);
            // Flight-record the fire with the triggering request key, so a
            // failure dump correlates injected faults with the requests
            // they hit. Off the hot path: only reached when a fault fires.
            recorder::record_full(
                recorder::EventKind::FaultFired,
                recorder::NO_LANE,
                recorder::intern(site),
                key,
                idx as u64,
            );
            if spec.action == FaultAction::Delay {
                let us = spec.delay_us;
                drop(slot);
                std::thread::sleep(Duration::from_micros(us));
                return hit;
            }
            if hit.is_none() {
                hit = Some(Fault {
                    action: spec.action,
                });
            }
        }
        hit
    }

    pub fn fire(site: &str, key: u64) -> Option<Fault> {
        if !is_armed() || key == NO_KEY {
            return None;
        }
        eval(site, key)
    }

    pub fn fire_counted(site: &str) -> Option<Fault> {
        if !is_armed() {
            return None;
        }
        let hit = {
            let slot = PLAN.lock().unwrap();
            let armed = slot.as_ref()?;
            armed
                .counters
                .get(site)
                .map(|c| c.fetch_add(1, Ordering::Relaxed))
        };
        eval(site, hit?)
    }
}

#[cfg(feature = "failpoints")]
pub use enabled_api::*;

#[cfg(feature = "failpoints")]
mod enabled_api {
    use super::{armed, Fault, FaultPlan};

    /// Arm `plan` process-wide; subsequent [`fire`](super::fire) calls
    /// consult it. Replaces any previously armed plan and resets fired
    /// counters. Chaos runs are process-serial: arm, run, [`disarm`].
    pub fn arm(plan: &FaultPlan) {
        armed::arm(plan);
    }

    /// Drop the armed plan; all failpoints become inert again.
    pub fn disarm() {
        armed::disarm();
    }

    /// True when a non-empty plan is armed.
    pub fn is_armed() -> bool {
        armed::is_armed()
    }

    /// Per-fault fired counts since the plan was armed, labelled
    /// `<site>.<action>` in plan order.
    pub fn fired_counts() -> Vec<(String, u64)> {
        armed::fired_counts()
    }

    /// Evaluate the failpoint `site` for request key `key`.
    ///
    /// `Delay` faults sleep here and return `None`; any other firing fault
    /// is returned for the site to interpret. Keys equal to
    /// [`NO_KEY`](super::NO_KEY) never fire.
    #[inline]
    pub fn fire(site: &str, key: u64) -> Option<Fault> {
        armed::fire(site, key)
    }

    /// Evaluate an unkeyed failpoint: the key is a per-site hit counter
    /// (0, 1, 2, ... since arming), so `EveryNth` means every n-th hit.
    #[inline]
    pub fn fire_counted(site: &str) -> Option<Fault> {
        armed::fire_counted(site)
    }
}

#[cfg(not(feature = "failpoints"))]
pub use disabled_api::*;

#[cfg(not(feature = "failpoints"))]
mod disabled_api {
    use super::{Fault, FaultPlan};

    /// No-op: the `failpoints` feature is off.
    pub fn arm(_plan: &FaultPlan) {}

    /// No-op: the `failpoints` feature is off.
    pub fn disarm() {}

    /// Always false: the `failpoints` feature is off.
    pub fn is_armed() -> bool {
        false
    }

    /// Always empty: the `failpoints` feature is off.
    pub fn fired_counts() -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Compiled out: always `None`, inlined away.
    #[inline(always)]
    pub fn fire(_site: &str, _key: u64) -> Option<Fault> {
        None
    }

    /// Compiled out: always `None`, inlined away.
    #[inline(always)]
    pub fn fire_counted(_site: &str) -> Option<Fault> {
        None
    }
}

/// Evaluate a failpoint site. `failpoint!("site", key)` for keyed sites,
/// `failpoint!("site")` for counted sites. Expands to an inlined `None`
/// when the `failpoints` feature is off.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        $crate::fire_counted($site)
    };
    ($site:expr, $key:expr) => {
        $crate::fire($site, $key)
    };
}

/// Install a panic hook that suppresses the default stderr report for
/// chaos-injected panics (payloads starting with [`PANIC_MSG`]) while
/// delegating everything else to the previous hook. Idempotent enough for
/// test use: installing twice just nests the delegation.
pub fn install_quiet_panic_hook() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.starts_with(PANIC_MSG))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.starts_with(PANIC_MSG))
            })
            .unwrap_or(false);
        if !injected {
            prev(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(site: &str, trigger: Trigger, action: FaultAction) -> FaultSpec {
        FaultSpec {
            site: site.to_string(),
            trigger,
            action,
            p: 0.5,
            n: 3,
            schedule: vec![2, 5],
            delay_us: 0,
        }
    }

    #[test]
    fn plan_json_round_trips() {
        let plan = FaultPlan {
            seed: 7,
            max_retries: 3,
            backoff_base_us: 100,
            backoff_cap_us: 5000,
            faults: vec![
                spec(
                    "engine.admit",
                    Trigger::Probability,
                    FaultAction::RejectQueueFull,
                ),
                spec("engine.run.pre", Trigger::Schedule, FaultAction::Panic),
            ],
        };
        let text = graphbig_json::to_pretty(&plan);
        let back: FaultPlan = graphbig_json::from_str(&text).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn trigger_decisions_are_deterministic_and_key_local() {
        let s = spec("engine.admit", Trigger::Probability, FaultAction::Delay);
        for key in 0..200 {
            assert_eq!(decides(9, &s, key), decides(9, &s, key));
        }
        // Not all-fire / none-fire at p = 0.5 over 200 keys.
        let hits = (0..200).filter(|k| decides(9, &s, *k)).count();
        assert!(hits > 50 && hits < 150, "p=0.5 hit {hits}/200");
        // Different seeds give different decisions somewhere.
        assert!((0..200).any(|k| decides(9, &s, k) != decides(10, &s, k)));
        // Different sites give different decisions somewhere.
        let other = spec("engine.dequeue", Trigger::Probability, FaultAction::Delay);
        assert!((0..200).any(|k| decides(9, &s, k) != decides(9, &other, k)));
    }

    #[test]
    fn probability_bounds_are_exact() {
        let mut zero = spec("s", Trigger::Probability, FaultAction::Delay);
        zero.p = 0.0;
        let mut one = spec("s", Trigger::Probability, FaultAction::Delay);
        one.p = 1.0;
        for key in 0..100 {
            assert!(!decides(1, &zero, key));
            assert!(decides(1, &one, key));
        }
    }

    #[test]
    fn every_nth_and_schedule_match_keys_exactly() {
        let nth = spec("s", Trigger::EveryNth, FaultAction::Delay);
        for key in 0..20 {
            assert_eq!(decides(0, &nth, key), key % 3 == 0);
        }
        let mut never = nth.clone();
        never.n = 0;
        assert!(!(0..20).any(|k| decides(0, &never, k)));
        let sched = spec("s", Trigger::Schedule, FaultAction::Delay);
        for key in 0..10 {
            assert_eq!(decides(0, &sched, key), key == 2 || key == 5);
        }
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn armed_registry_fires_and_counts() {
        // Process-global state: this test owns the armed plan for its
        // duration; other chaos-arming tests live in other test binaries.
        let plan = FaultPlan {
            seed: 1,
            max_retries: 0,
            backoff_base_us: 0,
            backoff_cap_us: 0,
            faults: vec![spec("unit.site", Trigger::Schedule, FaultAction::Cancel)],
        };
        arm(&plan);
        assert!(is_armed());
        assert_eq!(
            fire("unit.site", 2).map(|f| f.action),
            Some(FaultAction::Cancel)
        );
        assert_eq!(fire("unit.site", 3), None);
        assert_eq!(fire("other.site", 2), None);
        assert_eq!(fire("unit.site", NO_KEY), None);
        let counts = fired_counts();
        assert_eq!(counts, vec![("unit.site.Cancel".to_string(), 1)]);
        disarm();
        assert!(!is_armed());
        assert_eq!(fire("unit.site", 2), None);
    }
}
