//! The `nvprof`-style readout: everything the paper's GPU figures plot.

use graphbig_json::json_struct;

use crate::config::GpuConfig;
use crate::devmem::{timing, Timing};
use crate::warp::WarpStats;

/// Final metrics of a GPU workload run.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct GpuMetrics {
    /// Warp instructions issued.
    pub issued_instructions: u64,
    /// Replayed memory instructions.
    pub replayed_instructions: u64,
    /// Branch divergence rate in `[0, 1]` (Figures 10 and 13).
    pub bdr: f64,
    /// Memory divergence rate in `[0, 1]` (Figures 10 and 13).
    pub mdr: f64,
    /// Device-memory read throughput in GB/s (Figure 11).
    pub read_throughput_gbps: f64,
    /// Device-memory write throughput in GB/s (Figure 11).
    pub write_throughput_gbps: f64,
    /// Per-SM instructions per cycle (Figure 11).
    pub ipc: f64,
    /// Modeled kernel cycles.
    pub cycles: f64,
    /// Modeled kernel time in milliseconds (Figure 12's GPU side).
    pub time_ms: f64,
    /// Atomic operations executed.
    pub atomic_ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Warps executed.
    pub warps: u64,
}

json_struct!(GpuMetrics {
    issued_instructions,
    replayed_instructions,
    bdr,
    mdr,
    read_throughput_gbps,
    write_throughput_gbps,
    ipc,
    cycles,
    time_ms,
    atomic_ops,
    bytes_read,
    bytes_written,
    warps,
});

impl GpuMetrics {
    /// Derive the full readout from accumulated warp statistics.
    pub fn from_stats(cfg: &GpuConfig, s: &WarpStats) -> Self {
        let t: Timing = timing(cfg, s);
        GpuMetrics {
            issued_instructions: s.issued,
            replayed_instructions: s.replays,
            bdr: s.bdr(cfg.warp_size),
            mdr: s.mdr(),
            read_throughput_gbps: t.read_throughput_gbps(cfg, s),
            write_throughput_gbps: t.write_throughput_gbps(cfg, s),
            ipc: if t.total_cycles > 0.0 {
                s.issued as f64 / t.total_cycles / cfg.sms as f64
            } else {
                0.0
            },
            cycles: t.total_cycles,
            time_ms: t.time_ms(cfg),
            atomic_ops: s.atomic_ops,
            bytes_read: s.bytes_read,
            bytes_written: s.bytes_written,
            warps: s.warps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_bounded() {
        let s = WarpStats {
            issued: 100,
            inactive_slots: 1600,
            replays: 80,
            transactions: 180,
            bytes_read: 180 * 128,
            thread_instructions: 1600,
            warps: 10,
            ..Default::default()
        };
        let m = GpuMetrics::from_stats(&GpuConfig::tesla_k40(), &s);
        assert!((0.0..=1.0).contains(&m.bdr));
        assert!((0.0..=1.0).contains(&m.mdr));
        assert!(m.ipc <= GpuConfig::tesla_k40().issue_per_sm);
        assert!(m.read_throughput_gbps <= 288.0);
        assert!(m.time_ms > 0.0);
    }

    #[test]
    fn empty_stats_give_zero_metrics() {
        let m = GpuMetrics::from_stats(&GpuConfig::tesla_k40(), &WarpStats::default());
        assert_eq!(m.bdr, 0.0);
        assert_eq!(m.mdr, 0.0);
        assert_eq!(m.issued_instructions, 0);
    }

    #[test]
    fn bdr_matches_paper_definition() {
        // 50 issued instructions with half the lanes inactive
        let s = WarpStats {
            issued: 50,
            inactive_slots: 50 * 16,
            ..Default::default()
        };
        let m = GpuMetrics::from_stats(&GpuConfig::tesla_k40(), &s);
        assert!((m.bdr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mdr_matches_paper_definition() {
        let s = WarpStats {
            issued: 200,
            replays: 50,
            transactions: 250,
            ..Default::default()
        };
        let m = GpuMetrics::from_stats(&GpuConfig::tesla_k40(), &s);
        // replays / (issued + replays), the nvprof convention
        assert!((m.mdr - 0.2).abs() < 1e-12);
    }
}
