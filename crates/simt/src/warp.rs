//! Lockstep warp execution over recorded lane traces.
//!
//! The 32 lanes of a warp advance step-by-step. At step `s`, the lanes whose
//! traces still have an event are *candidates*; candidates are grouped by
//! event kind (and branch direction), and each distinct group issues as one
//! warp instruction — divergent groups serialize, exactly as post-branch
//! reconvergence serializes path bundles on hardware.
//!
//! Two paper metrics fall directly out of this replay:
//!
//! * **Branch divergence**: every issued instruction with fewer than 32
//!   active lanes contributes inactive slots; `BDR = inactive / (32 ×
//!   issued)`. Lanes whose traces ended early (degree imbalance!) count as
//!   inactive for the remainder of the warp — the dominant effect in
//!   thread-centric graph kernels.
//! * **Memory divergence**: each memory group is coalesced into 128-byte
//!   transactions; `replays = transactions − 1` per issued memory
//!   instruction; `MDR = replayed / issued`.

use crate::coalesce::transaction_blocks;
use crate::config::GpuConfig;
use crate::l2::DeviceL2;
use crate::lane::{Lane, LaneEvent};

/// Counters accumulated while replaying warps.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WarpStats {
    /// Warp instructions issued (divergent groups and replays included in
    /// their respective counters, not here).
    pub issued: u64,
    /// Inactive lane-slots across all issued instructions.
    pub inactive_slots: u64,
    /// Replayed memory instructions (extra transactions beyond the first).
    pub replays: u64,
    /// Total memory transactions (L2 hits included).
    pub transactions: u64,
    /// Transactions serviced by the device L2 (never reach DRAM).
    pub l2_hits: u64,
    /// Bytes read from DRAM (transaction-granular, L2 misses only).
    pub bytes_read: u64,
    /// Bytes written toward DRAM (transaction-granular, L2 misses only).
    pub bytes_written: u64,
    /// Atomic operations executed (lane-granular).
    pub atomic_ops: u64,
    /// Atomic operations that hit the same address as another lane in the
    /// same instruction (these serialize on hardware).
    pub atomic_conflicts: u64,
    /// Thread-level instructions retired (sum of lane trace lengths).
    pub thread_instructions: u64,
    /// Warps replayed.
    pub warps: u64,
}

impl WarpStats {
    /// Merge another stats block into this one.
    pub fn merge(&mut self, o: &WarpStats) {
        self.issued += o.issued;
        self.inactive_slots += o.inactive_slots;
        self.replays += o.replays;
        self.transactions += o.transactions;
        self.l2_hits += o.l2_hits;
        self.bytes_read += o.bytes_read;
        self.bytes_written += o.bytes_written;
        self.atomic_ops += o.atomic_ops;
        self.atomic_conflicts += o.atomic_conflicts;
        self.thread_instructions += o.thread_instructions;
        self.warps += o.warps;
    }

    /// Branch divergence rate: average inactive threads per warp / warp
    /// size (Section 5.1).
    pub fn bdr(&self, warp_size: usize) -> f64 {
        let slots = self.issued * warp_size as u64;
        if slots == 0 {
            0.0
        } else {
            self.inactive_slots as f64 / slots as f64
        }
    }

    /// Memory divergence rate: replayed / issued instructions (Section
    /// 5.1). As in `nvprof`, the issued count includes the replays
    /// themselves (a replay is an issue slot), so the rate is naturally
    /// bounded by 1.
    pub fn mdr(&self) -> f64 {
        let issued_with_replays = self.issued + self.replays;
        if issued_with_replays == 0 {
            0.0
        } else {
            self.replays as f64 / issued_with_replays as f64
        }
    }
}

/// DRAM transactions (total minus L2 hits).
impl WarpStats {
    /// Transactions that actually reached DRAM.
    pub fn dram_transactions(&self) -> u64 {
        self.transactions - self.l2_hits
    }
}

/// Replay one warp's worth of lanes (≤ 32) in lockstep and accumulate into
/// `stats`, filtering transactions through the device `l2`.
pub fn execute_warp(cfg: &GpuConfig, lanes: &[Lane], stats: &mut WarpStats, l2: &mut DeviceL2) {
    let ws = cfg.warp_size;
    debug_assert!(lanes.len() <= ws);
    if lanes.iter().all(|l| l.is_empty()) {
        return;
    }
    stats.warps += 1;
    let max_len = lanes.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut mem_group: Vec<(u64, u32)> = Vec::with_capacity(ws);

    for step in 0..max_len {
        // Distinct event-kind groups present at this step.
        let mut kinds: [bool; 6] = [false; 6];
        for lane in lanes {
            if let Some(ev) = lane.events().get(step) {
                kinds[ev.group_key() as usize] = true;
                stats.thread_instructions += 1;
            }
        }
        for key in 0..6u8 {
            if !kinds[key as usize] {
                continue;
            }
            // This group issues one warp instruction.
            stats.issued += 1;
            let mut active = 0u64;
            mem_group.clear();
            let mut is_atomic = false;
            let mut is_store = false;
            for lane in lanes {
                match lane.events().get(step) {
                    Some(ev) if ev.group_key() == key => {
                        active += 1;
                        match *ev {
                            LaneEvent::Load { addr, bytes } => mem_group.push((addr, bytes)),
                            LaneEvent::Store { addr, bytes } => {
                                is_store = true;
                                mem_group.push((addr, bytes));
                            }
                            LaneEvent::Atomic { addr, bytes } => {
                                is_atomic = true;
                                mem_group.push((addr, bytes));
                            }
                            _ => {}
                        }
                    }
                    _ => {}
                }
            }
            stats.inactive_slots += ws as u64 - active;
            if !mem_group.is_empty() {
                let blocks = transaction_blocks(&mem_group, cfg.transaction_bytes);
                let t = blocks.len() as u64;
                stats.transactions += t;
                stats.replays += t.saturating_sub(1);
                let mut dram_blocks = 0u64;
                for b in blocks {
                    if l2.access(b) {
                        stats.l2_hits += 1;
                    } else {
                        dram_blocks += 1;
                    }
                }
                let bytes = dram_blocks * cfg.transaction_bytes as u64;
                if is_store {
                    stats.bytes_written += bytes;
                } else {
                    stats.bytes_read += bytes;
                }
                if is_atomic {
                    stats.atomic_ops += active;
                    // conflicting lanes (same target address) serialize
                    let mut addrs: Vec<u64> = mem_group.iter().map(|&(a, _)| a).collect();
                    addrs.sort_unstable();
                    addrs.dedup();
                    stats.atomic_conflicts += active - addrs.len() as u64;
                    // Kepler-class atomics are read-modify-WRITE at the L2
                    // atomic units: the write-back doubles the transactions,
                    // and lanes serialize per address.
                    stats.transactions += t;
                    stats.replays += active;
                    // atomics also write their block back
                    stats.bytes_written += bytes;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    fn l2() -> DeviceL2 {
        let c = cfg();
        DeviceL2::new(c.l2_bytes, c.l2_ways, c.transaction_bytes)
    }

    fn full_warp(trip: impl Fn(usize) -> usize) -> Vec<Lane> {
        (0..32)
            .map(|tid| {
                let mut l = Lane::new();
                for i in 0..trip(tid) {
                    l.alu(1);
                    l.load_addr((tid * 4 + i * 128) as u64, 4);
                }
                l
            })
            .collect()
    }

    #[test]
    fn uniform_warp_has_zero_bdr() {
        let lanes = full_warp(|_| 5);
        let mut s = WarpStats::default();
        execute_warp(&cfg(), &lanes, &mut s, &mut l2());
        assert_eq!(s.bdr(32), 0.0);
        assert_eq!(s.warps, 1);
        // 5 iterations × (1 alu + [addr-alu + load]) = 15 issued
        assert_eq!(s.issued, 15);
    }

    #[test]
    fn degree_imbalance_creates_bdr() {
        // lane 0 runs 32 iterations, everyone else 1 — thread-centric
        // kernel over a hub vertex
        let lanes = full_warp(|tid| if tid == 0 { 32 } else { 1 });
        let mut s = WarpStats::default();
        execute_warp(&cfg(), &lanes, &mut s, &mut l2());
        let bdr = s.bdr(32);
        assert!(
            bdr > 0.8,
            "hub-dominated warp should be mostly inactive: {bdr}"
        );
    }

    #[test]
    fn coalesced_loads_have_zero_mdr() {
        let lanes: Vec<Lane> = (0..32)
            .map(|tid| {
                let mut l = Lane::new();
                l.load_addr(tid as u64 * 4, 4); // consecutive words
                l
            })
            .collect();
        let mut s = WarpStats::default();
        execute_warp(&cfg(), &lanes, &mut s, &mut l2());
        assert_eq!(s.transactions, 1);
        assert_eq!(s.replays, 0);
        assert_eq!(s.mdr(), 0.0);
    }

    #[test]
    fn scattered_loads_have_high_mdr() {
        // NB: MDR denominator includes the replays themselves (nvprof
        // convention), so 31 replays over (2 issued + 31) ~ 0.94.
        let lanes: Vec<Lane> = (0..32)
            .map(|tid| {
                let mut l = Lane::new();
                l.load_addr(tid as u64 * 4096, 4); // one block per lane
                l
            })
            .collect();
        let mut s = WarpStats::default();
        execute_warp(&cfg(), &lanes, &mut s, &mut l2());
        assert_eq!(s.transactions, 32);
        assert_eq!(s.replays, 31);
        // address-arithmetic alu + the load itself
        assert_eq!(s.issued, 2);
        assert!((s.mdr() - 31.0 / 33.0).abs() < 1e-12);
    }

    #[test]
    fn divergent_branches_serialize() {
        let lanes: Vec<Lane> = (0..32)
            .map(|tid| {
                let mut l = Lane::new();
                l.branch(tid % 2 == 0);
                l
            })
            .collect();
        let mut s = WarpStats::default();
        execute_warp(&cfg(), &lanes, &mut s, &mut l2());
        // two direction groups, each issuing separately with 16 active
        assert_eq!(s.issued, 2);
        assert_eq!(s.inactive_slots, 32);
        assert_eq!(s.bdr(32), 0.5);
    }

    #[test]
    fn atomics_count_per_lane_and_write_back() {
        let lanes: Vec<Lane> = (0..4)
            .map(|_| {
                let mut l = Lane::new();
                l.atomic(&0u32, 4);
                l
            })
            .collect();
        let mut s = WarpStats::default();
        execute_warp(&cfg(), &lanes, &mut s, &mut l2());
        assert_eq!(s.atomic_ops, 4);
        assert!(s.bytes_written > 0);
    }

    #[test]
    fn empty_warp_is_skipped() {
        let lanes: Vec<Lane> = (0..32).map(|_| Lane::new()).collect();
        let mut s = WarpStats::default();
        execute_warp(&cfg(), &lanes, &mut s, &mut l2());
        assert_eq!(s, WarpStats::default());
    }

    #[test]
    fn merge_adds_counters() {
        let lanes = full_warp(|_| 2);
        let mut a = WarpStats::default();
        execute_warp(&cfg(), &lanes, &mut a, &mut l2());
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.issued, 2 * a.issued);
        assert_eq!(b.transactions, 2 * a.transactions);
        assert_eq!(b.bdr(32), a.bdr(32));
    }

    #[test]
    fn thread_instructions_sum_lane_lengths() {
        let lanes = full_warp(|tid| tid % 3);
        let expect: u64 = lanes.iter().map(|l| l.len() as u64).sum();
        let mut s = WarpStats::default();
        execute_warp(&cfg(), &lanes, &mut s, &mut l2());
        assert_eq!(s.thread_instructions, expect);
    }
}
