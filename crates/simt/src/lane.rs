//! Per-thread event recording.
//!
//! A GPU kernel in this suite is plain Rust executed once per thread; the
//! thread body records what it *would* issue — ALU ops, loads/stores/atomics
//! with real buffer addresses, conditional branches — into a [`Lane`]. The
//! warp layer then replays 32 lanes in lockstep.

/// One dynamic instruction of a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneEvent {
    /// A non-memory, non-branch instruction.
    Alu,
    /// A conditional branch with its direction.
    Branch(bool),
    /// A global-memory load.
    Load {
        /// Byte address.
        addr: u64,
        /// Access width in bytes.
        bytes: u32,
    },
    /// A global-memory store.
    Store {
        /// Byte address.
        addr: u64,
        /// Access width in bytes.
        bytes: u32,
    },
    /// An atomic read-modify-write.
    Atomic {
        /// Byte address.
        addr: u64,
        /// Access width in bytes.
        bytes: u32,
    },
}

impl LaneEvent {
    /// Discriminant used for lockstep grouping: events of different kinds
    /// (or branch directions) at the same step cannot issue together.
    #[inline]
    pub fn group_key(&self) -> u8 {
        match self {
            LaneEvent::Alu => 0,
            LaneEvent::Branch(false) => 1,
            LaneEvent::Branch(true) => 2,
            LaneEvent::Load { .. } => 3,
            LaneEvent::Store { .. } => 4,
            LaneEvent::Atomic { .. } => 5,
        }
    }

    /// Whether the event touches global memory.
    #[inline]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            LaneEvent::Load { .. } | LaneEvent::Store { .. } | LaneEvent::Atomic { .. }
        )
    }
}

/// The per-thread recorder handed to kernel bodies.
#[derive(Debug, Default)]
pub struct Lane {
    events: Vec<LaneEvent>,
}

impl Lane {
    /// Fresh empty lane.
    pub fn new() -> Self {
        Lane { events: Vec::new() }
    }

    /// Record `n` ALU instructions.
    #[inline]
    pub fn alu(&mut self, n: u32) {
        for _ in 0..n {
            self.events.push(LaneEvent::Alu);
        }
    }

    /// Record a conditional branch.
    #[inline]
    pub fn branch(&mut self, taken: bool) {
        self.events.push(LaneEvent::Branch(taken));
    }

    /// Record a global load of `bytes` at the address of `r`.
    ///
    /// Every global access is preceded by one address-arithmetic
    /// instruction (`IMAD`/`IADD` on real hardware) — this keeps the
    /// issued-instruction denominator of MDR honest.
    #[inline]
    pub fn load<T: ?Sized>(&mut self, r: &T, bytes: u32) {
        self.load_addr(r as *const T as *const u8 as u64, bytes);
    }

    /// Record a global load at a raw address.
    #[inline]
    pub fn load_addr(&mut self, addr: u64, bytes: u32) {
        self.events.push(LaneEvent::Alu);
        self.events.push(LaneEvent::Load { addr, bytes });
    }

    /// Record a global store at the address of `r`.
    #[inline]
    pub fn store<T: ?Sized>(&mut self, r: &T, bytes: u32) {
        self.store_addr(r as *const T as *const u8 as u64, bytes);
    }

    /// Record a global store at a raw address.
    #[inline]
    pub fn store_addr(&mut self, addr: u64, bytes: u32) {
        self.events.push(LaneEvent::Alu);
        self.events.push(LaneEvent::Store { addr, bytes });
    }

    /// Record an atomic RMW at the address of `r`.
    #[inline]
    pub fn atomic<T: ?Sized>(&mut self, r: &T, bytes: u32) {
        self.events.push(LaneEvent::Alu);
        self.events.push(LaneEvent::Atomic {
            addr: r as *const T as *const u8 as u64,
            bytes,
        });
    }

    /// Number of recorded instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the lane recorded nothing (thread was idle).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded event stream.
    #[inline]
    pub fn events(&self) -> &[LaneEvent] {
        &self.events
    }

    /// Clear for reuse by the next thread (keeps the allocation).
    #[inline]
    pub fn reset(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut l = Lane::new();
        l.alu(2);
        l.branch(true);
        l.load_addr(0x100, 4);
        l.store_addr(0x200, 4);
        // loads/stores carry an implicit address-arithmetic Alu each
        assert_eq!(l.len(), 7);
        assert_eq!(l.events()[0], LaneEvent::Alu);
        assert_eq!(l.events()[2], LaneEvent::Branch(true));
        assert_eq!(l.events()[3], LaneEvent::Alu);
        assert!(matches!(
            l.events()[4],
            LaneEvent::Load {
                addr: 0x100,
                bytes: 4
            }
        ));
    }

    #[test]
    fn load_of_reference_captures_its_address() {
        let x = 7u32;
        let mut l = Lane::new();
        l.load(&x, 4);
        match l.events()[1] {
            LaneEvent::Load { addr, bytes } => {
                assert_eq!(addr, &x as *const u32 as u64);
                assert_eq!(bytes, 4);
            }
            _ => panic!("expected load"),
        }
    }

    #[test]
    fn group_keys_separate_kinds_and_directions() {
        let a = LaneEvent::Branch(true).group_key();
        let b = LaneEvent::Branch(false).group_key();
        let c = LaneEvent::Alu.group_key();
        let d = LaneEvent::Load { addr: 0, bytes: 4 }.group_key();
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut l = Lane::new();
        l.alu(100);
        let cap = l.events.capacity();
        l.reset();
        assert!(l.is_empty());
        assert_eq!(l.events.capacity(), cap);
    }

    #[test]
    fn is_memory_classifies() {
        assert!(LaneEvent::Load { addr: 0, bytes: 1 }.is_memory());
        assert!(LaneEvent::Atomic { addr: 0, bytes: 1 }.is_memory());
        assert!(!LaneEvent::Alu.is_memory());
        assert!(!LaneEvent::Branch(true).is_memory());
    }
}
