//! The modeled GPU device.

use graphbig_json::json_struct;

/// GPU device description used by the SIMT model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Device display name.
    pub name: String,
    /// Threads per warp.
    pub warp_size: usize,
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Warp instructions an SM can issue per cycle.
    pub issue_per_sm: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Memory-transaction granularity in bytes (the paper's "128-byte
    /// block" replay rule).
    pub transaction_bytes: usize,
    /// Peak device-memory bandwidth in GB/s.
    pub peak_bandwidth_gbps: f64,
    /// Effective issue cost (in cycles) of one DRAM transaction — one per
    /// cycle is the irregular-access ceiling, which puts the achievable
    /// random-access bandwidth near the ~90 GB/s the paper's best kernel
    /// reaches on the K40.
    pub transaction_cycles: f64,
    /// Device L2 capacity in bytes (K40: 1.5 MB).
    pub l2_bytes: usize,
    /// Device L2 associativity.
    pub l2_ways: usize,
    /// Effective issue cost of a transaction that hits in L2 (K40 kernels
    /// route reused read-only data through the per-SM texture/read-only
    /// caches, so cached transactions are close to free).
    pub l2_hit_cycles: f64,
    /// Extra serialization cycles per atomic operation (atomics on the K40
    /// serialize conflicting lanes).
    pub atomic_cycles: f64,
}

json_struct!(GpuConfig {
    name,
    warp_size,
    sms,
    issue_per_sm,
    clock_ghz,
    transaction_bytes,
    peak_bandwidth_gbps,
    transaction_cycles,
    l2_bytes,
    l2_ways,
    l2_hit_cycles,
    atomic_cycles,
});

impl GpuConfig {
    /// The paper's Tesla K40: 15 SMs, 288 GB/s, 128-byte transactions.
    pub fn tesla_k40() -> Self {
        GpuConfig {
            name: "Nvidia Tesla K40 (modeled)".into(),
            warp_size: 32,
            sms: 15,
            issue_per_sm: 2.0,
            clock_ghz: 0.745,
            transaction_bytes: 128,
            peak_bandwidth_gbps: 288.0,
            transaction_cycles: 1.0,
            l2_bytes: 1_536 * 1024,
            l2_ways: 16,
            l2_hit_cycles: 0.05,
            atomic_cycles: 4.0,
        }
    }

    /// The K40 with its L2 scaled by `scale`, for experiments on scaled-down
    /// datasets: working sets shrink with the dataset, so an unscaled L2
    /// would cache state arrays that exceed it at the paper's sizes and
    /// erase the memory-bound behavior being measured.
    pub fn tesla_k40_scaled(scale: f64) -> Self {
        let mut cfg = Self::tesla_k40();
        cfg.l2_bytes = ((cfg.l2_bytes as f64 * scale) as usize).max(64 * 1024);
        cfg.name = format!("Nvidia Tesla K40 (modeled, L2 x{scale})");
        cfg
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::tesla_k40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_matches_paper_specs() {
        let g = GpuConfig::tesla_k40();
        assert_eq!(g.warp_size, 32);
        assert_eq!(g.transaction_bytes, 128);
        assert_eq!(g.peak_bandwidth_gbps, 288.0);
        assert_eq!(g.sms, 15);
    }

    #[test]
    fn default_is_k40() {
        assert_eq!(GpuConfig::default(), GpuConfig::tesla_k40());
    }
}
