//! Device L2 cache.
//!
//! The K40 puts a 1.5 MB L2 between the SMs and GDDR5; transactions that
//! hit it never reach DRAM. This is what separates reuse-heavy kernels
//! (TC's repeated reads of hot adjacency lists → ~2 GB/s of DRAM reads in
//! Figure 11) from streaming ones (CComp's label sweeps → ~90 GB/s).
//!
//! Set-associative over transaction-sized blocks with LRU replacement,
//! like the CPU-side caches.

/// Set-associative LRU cache over block addresses.
#[derive(Debug, Clone)]
pub struct DeviceL2 {
    /// `sets × ways` block tags; `u64::MAX` = invalid.
    tags: Vec<u64>,
    ways: usize,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl DeviceL2 {
    /// Build an L2 of `size_bytes` capacity with `ways` associativity over
    /// `block_bytes` blocks.
    pub fn new(size_bytes: usize, ways: usize, block_bytes: usize) -> Self {
        let ways = ways.max(1);
        let sets = (size_bytes / (block_bytes * ways))
            .max(1)
            .next_power_of_two();
        DeviceL2 {
            tags: vec![u64::MAX; sets * ways],
            ways,
            set_mask: sets as u64 - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Access one block; returns `true` on hit.
    pub fn access(&mut self, block: u64) -> bool {
        let set = (block & self.set_mask) as usize;
        let base = set * self.ways;
        let slot = &mut self.tags[base..base + self.ways];
        if let Some(pos) = slot.iter().position(|&t| t == block) {
            slot[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            slot.rotate_right(1);
            slot[0] = block;
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_block_hits() {
        let mut l2 = DeviceL2::new(1024, 4, 128);
        assert!(!l2.access(5));
        assert!(l2.access(5));
        assert_eq!(l2.hits(), 1);
        assert_eq!(l2.misses(), 1);
    }

    #[test]
    fn capacity_eviction() {
        let mut l2 = DeviceL2::new(512, 1, 128); // 4 sets, direct mapped
        l2.access(0);
        l2.access(4); // same set, evicts 0
        assert!(!l2.access(0));
    }

    #[test]
    fn streaming_never_hits() {
        let mut l2 = DeviceL2::new(4096, 8, 128);
        for round in 0..3 {
            for b in 0..1000u64 {
                let hit = l2.access(b);
                if round > 0 {
                    assert!(!hit, "cyclic stream over 30x capacity");
                }
            }
        }
    }

    #[test]
    fn hot_set_survives_stream() {
        // high-associativity cache keeps a small hot set while other sets
        // stream
        let mut l2 = DeviceL2::new(16 * 1024, 16, 128); // 8 sets x 16 ways
        for _ in 0..100 {
            l2.access(0);
            l2.access(8);
        }
        let hits_before = l2.hits();
        assert!(hits_before > 150);
    }
}
