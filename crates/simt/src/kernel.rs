//! Grid launch machinery.
//!
//! A [`Kernel`] is a per-thread body; [`launch`] runs it over `n` threads,
//! packing consecutive thread ids into warps of 32 (the CUDA convention the
//! paper's kernels follow) and replaying each warp through the lockstep
//! model. [`launch_iterative`] repeats launches until the kernel reports a
//! fixpoint — the host-side loop of level-synchronous GPU algorithms.

use crate::config::GpuConfig;
use crate::l2::DeviceL2;
use crate::lane::Lane;
use crate::metrics::GpuMetrics;
use crate::warp::{execute_warp, WarpStats};

/// A GPU kernel: the per-thread body records its instruction stream into
/// the lane.
pub trait Kernel {
    /// Execute thread `tid`, recording events.
    fn thread(&self, tid: usize, lane: &mut Lane);
}

impl<F: Fn(usize, &mut Lane)> Kernel for F {
    fn thread(&self, tid: usize, lane: &mut Lane) {
        self(tid, lane)
    }
}

/// A device context: configuration, L2 state and accumulated statistics.
///
/// One `Device` spans one workload run, so the L2 stays warm across the
/// host loop's successive launches — as it does on hardware.
pub struct Device {
    cfg: GpuConfig,
    l2: DeviceL2,
    lanes: Vec<Lane>,
    stats: WarpStats,
}

impl Device {
    /// Fresh device with a cold L2.
    pub fn new(cfg: GpuConfig) -> Self {
        let l2 = DeviceL2::new(cfg.l2_bytes, cfg.l2_ways, cfg.transaction_bytes);
        let lanes = (0..cfg.warp_size.max(1)).map(|_| Lane::new()).collect();
        Device {
            cfg,
            l2,
            lanes,
            stats: WarpStats::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Launch `k` over `num_threads` threads, accumulating statistics.
    pub fn launch<K: Kernel>(&mut self, num_threads: usize, k: &K) {
        let ws = self.cfg.warp_size.max(1);
        let mut base = 0usize;
        while base < num_threads {
            let width = ws.min(num_threads - base);
            for (i, lane) in self.lanes.iter_mut().enumerate().take(width) {
                lane.reset();
                k.thread(base + i, lane);
            }
            execute_warp(
                &self.cfg,
                &self.lanes[..width],
                &mut self.stats,
                &mut self.l2,
            );
            base += width;
        }
    }

    /// Accumulated warp statistics.
    pub fn stats(&self) -> &WarpStats {
        &self.stats
    }

    /// The `nvprof`-style readout over everything launched so far.
    pub fn metrics(&self) -> GpuMetrics {
        GpuMetrics::from_stats(&self.cfg, &self.stats)
    }
}

/// One-shot launch on a fresh (cold-L2) device; returns the warp
/// statistics. Convenience for tests and single-kernel workloads.
pub fn launch<K: Kernel>(cfg: &GpuConfig, num_threads: usize, k: &K) -> WarpStats {
    let mut dev = Device::new(cfg.clone());
    dev.launch(num_threads, k);
    dev.stats
}

/// Repeatedly launch `k` over `num_threads` until `converged` returns true
/// (checked after every launch) or `max_iterations` is hit. Returns the
/// merged metrics and the number of launches.
pub fn launch_iterative<K: Kernel>(
    cfg: &GpuConfig,
    num_threads: usize,
    max_iterations: usize,
    k: &K,
    mut converged: impl FnMut() -> bool,
) -> (GpuMetrics, usize) {
    let mut dev = Device::new(cfg.clone());
    let mut iters = 0usize;
    while iters < max_iterations {
        dev.launch(num_threads, k);
        iters += 1;
        if converged() {
            break;
        }
    }
    (dev.metrics(), iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    #[test]
    fn launch_covers_all_threads() {
        let seen: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        let kernel = |tid: usize, lane: &mut Lane| {
            seen[tid].fetch_add(1, Ordering::Relaxed);
            lane.alu(1);
        };
        let s = launch(&cfg(), 100, &kernel);
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
        assert_eq!(s.thread_instructions, 100);
        // 100 threads = 3 full warps + 1 warp of 4
        assert_eq!(s.warps, 4);
    }

    #[test]
    fn partial_last_warp_counts_inactive_slots() {
        let kernel = |_tid: usize, lane: &mut Lane| lane.alu(1);
        let s = launch(&cfg(), 33, &kernel);
        // warp 2 has 1 active lane out of 32
        assert_eq!(s.issued, 2);
        assert_eq!(s.inactive_slots, 31);
    }

    #[test]
    fn zero_threads_is_a_noop() {
        let kernel = |_tid: usize, lane: &mut Lane| lane.alu(1);
        let s = launch(&cfg(), 0, &kernel);
        assert_eq!(s, WarpStats::default());
    }

    #[test]
    fn iterative_launch_stops_at_fixpoint() {
        let counter = AtomicU32::new(0);
        let kernel = |_tid: usize, lane: &mut Lane| {
            lane.alu(1);
        };
        let (metrics, iters) = launch_iterative(&cfg(), 32, 100, &kernel, || {
            counter.fetch_add(1, Ordering::Relaxed) + 1 >= 5
        });
        assert_eq!(iters, 5);
        assert!(metrics.issued_instructions > 0);
    }

    #[test]
    fn iterative_launch_respects_max_iterations() {
        let kernel = |_tid: usize, lane: &mut Lane| lane.alu(1);
        let (_, iters) = launch_iterative(&cfg(), 32, 7, &kernel, || false);
        assert_eq!(iters, 7);
    }

    #[test]
    fn closure_kernels_capture_buffers() {
        let data: Vec<u32> = (0..64).collect();
        let out: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let kernel = |tid: usize, lane: &mut Lane| {
            lane.load(&data[tid], 4);
            out[tid].store(data[tid] * 2, Ordering::Relaxed);
            lane.store(&out[tid], 4);
        };
        launch(&cfg(), 64, &kernel);
        assert_eq!(out[10].load(Ordering::Relaxed), 20);
    }
}
