//! # graphbig-simt
//!
//! A GPU SIMT execution model standing in for the paper's Tesla K40 +
//! `nvprof` measurements. GPU kernels (in `graphbig-gpu`) are ordinary Rust
//! functions executed once per thread against a [`lane::Lane`] recorder;
//! this crate groups 32 lanes into warps and replays them in lockstep:
//!
//! * [`warp`] — per-step active masks over the lane traces → **branch
//!   divergence rate** (BDR), the paper's "inactive threads per warp /
//!   warp size";
//! * [`coalesce`] — 128-byte transaction coalescing per memory instruction →
//!   instruction replays → **memory divergence rate** (MDR), the paper's
//!   "replayed instructions / issued instructions";
//! * [`devmem`] — device-memory traffic and achieved throughput
//!   (Figure 11);
//! * [`kernel`] — grid launch machinery: run a kernel over N threads,
//!   collect warp metrics, iterate to fixpoint;
//! * [`metrics`] — the `nvprof`-style readout (BDR, MDR, throughput, IPC,
//!   modeled cycles);
//! * [`config`] — the modeled device ([`config::GpuConfig::tesla_k40`]).
//!
//! The divergence metrics are *defined arithmetically* in the paper
//! (Section 5.1); this model executes real kernel code and applies those
//! definitions, so thread-centric vs edge-centric kernel designs produce
//! the same divergence contrasts they produce on silicon.

#![warn(missing_docs)]

pub mod coalesce;
pub mod config;
pub mod devmem;
pub mod kernel;
pub mod l2;
pub mod lane;
pub mod metrics;
pub mod warp;

pub use config::GpuConfig;
pub use kernel::{launch, launch_iterative, Device, Kernel};
pub use lane::{Lane, LaneEvent};
pub use metrics::GpuMetrics;
