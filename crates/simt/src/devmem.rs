//! Device-memory timing: turns transaction/issue counts into modeled
//! cycles, achieved bandwidth, and kernel time.
//!
//! The device is modeled as a throughput machine: compute issue and the
//! memory pipeline proceed concurrently, so kernel cycles are the maximum
//! of the two, plus atomic serialization. One transaction per cycle is the
//! effective ceiling for irregular (non-streaming) access — which is why
//! the paper's best-achieving kernel (CComp) reads ≈90 GB/s of the K40's
//! 288 GB/s peak.

use graphbig_json::json_struct;

use crate::config::GpuConfig;
use crate::warp::WarpStats;

/// Modeled timing of one kernel (or a sequence of launches).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Cycles the compute pipelines need.
    pub compute_cycles: f64,
    /// Cycles the memory pipeline needs.
    pub memory_cycles: f64,
    /// Additional serialization cycles from atomics.
    pub atomic_cycles: f64,
    /// Modeled total kernel cycles.
    pub total_cycles: f64,
}

json_struct!(Timing {
    compute_cycles,
    memory_cycles,
    atomic_cycles,
    total_cycles,
});

/// Evaluate the timing model for accumulated warp statistics.
pub fn timing(cfg: &GpuConfig, s: &WarpStats) -> Timing {
    // Replays occupy the memory pipeline (accounted as transactions), not
    // the ALU issue slots.
    let compute = s.issued as f64 / (cfg.issue_per_sm * cfg.sms as f64);
    let memory = s.dram_transactions() as f64 * cfg.transaction_cycles
        + s.l2_hits as f64 * cfg.l2_hit_cycles;
    // Non-conflicting atomics pipeline like stores; conflicting ones
    // serialize at full cost.
    let atomic = (s.atomic_conflicts as f64 * cfg.atomic_cycles + s.atomic_ops as f64 * 0.5)
        / cfg.sms as f64;
    let total = compute.max(memory + atomic).max(1.0);
    Timing {
        compute_cycles: compute,
        memory_cycles: memory,
        atomic_cycles: atomic,
        total_cycles: total,
    }
}

impl Timing {
    /// Kernel time in milliseconds at the configured clock.
    pub fn time_ms(&self, cfg: &GpuConfig) -> f64 {
        self.total_cycles / (cfg.clock_ghz * 1e9) * 1e3
    }

    /// Achieved read throughput in GB/s.
    pub fn read_throughput_gbps(&self, cfg: &GpuConfig, s: &WarpStats) -> f64 {
        throughput_gbps(cfg, self.total_cycles, s.bytes_read)
    }

    /// Achieved write throughput in GB/s.
    pub fn write_throughput_gbps(&self, cfg: &GpuConfig, s: &WarpStats) -> f64 {
        throughput_gbps(cfg, self.total_cycles, s.bytes_written)
    }
}

fn throughput_gbps(cfg: &GpuConfig, cycles: f64, bytes: u64) -> f64 {
    if cycles == 0.0 {
        return 0.0;
    }
    let seconds = cycles / (cfg.clock_ghz * 1e9);
    bytes as f64 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_k40()
    }

    #[test]
    fn memory_bound_kernel_is_limited_by_transactions() {
        let s = WarpStats {
            issued: 1000,
            transactions: 100_000,
            bytes_read: 100_000 * 128,
            ..Default::default()
        };
        let t = timing(&cfg(), &s);
        assert!(t.memory_cycles > t.compute_cycles);
        assert_eq!(t.total_cycles, t.memory_cycles);
        // at 1 transaction/cycle the ceiling is 128 B/cycle ≈ 95 GB/s
        let bw = t.read_throughput_gbps(&cfg(), &s);
        assert!((bw - 95.36).abs() < 1.0, "bw {bw}");
    }

    #[test]
    fn compute_bound_kernel_has_low_throughput() {
        let s = WarpStats {
            issued: 10_000_000,
            transactions: 1_000,
            bytes_read: 1_000 * 128,
            ..Default::default()
        };
        let t = timing(&cfg(), &s);
        assert_eq!(t.total_cycles, t.compute_cycles);
        let bw = t.read_throughput_gbps(&cfg(), &s);
        assert!(bw < 1.0, "bw {bw}");
    }

    #[test]
    fn atomics_extend_memory_time() {
        let base = WarpStats {
            issued: 100,
            transactions: 1000,
            ..Default::default()
        };
        let with_atomics = WarpStats {
            atomic_ops: 100_000,
            ..base
        };
        let t0 = timing(&cfg(), &base);
        let t1 = timing(&cfg(), &with_atomics);
        assert!(t1.total_cycles > t0.total_cycles);
    }

    #[test]
    fn achieved_bandwidth_never_exceeds_model_ceiling() {
        let s = WarpStats {
            issued: 10,
            transactions: 123_456,
            bytes_read: 123_456 * 128,
            ..Default::default()
        };
        let t = timing(&cfg(), &s);
        let bw = t.read_throughput_gbps(&cfg(), &s);
        assert!(bw <= cfg().peak_bandwidth_gbps);
    }

    #[test]
    fn empty_stats_have_minimal_cycles() {
        let t = timing(&cfg(), &WarpStats::default());
        assert_eq!(t.total_cycles, 1.0);
        assert_eq!(t.read_throughput_gbps(&cfg(), &WarpStats::default()), 0.0);
    }

    #[test]
    fn time_ms_scales_with_clock() {
        let s = WarpStats {
            issued: 1,
            transactions: 745_000,
            ..Default::default()
        };
        let t = timing(&cfg(), &s);
        // 745k cycles at 0.745 GHz = 1 ms
        assert!((t.time_ms(&cfg()) - 1.0).abs() < 1e-9);
    }
}
