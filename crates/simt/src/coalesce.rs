//! Memory-transaction coalescing.
//!
//! On the modeled K40, one warp memory instruction is serviced by one
//! 128-byte transaction *if* every active lane's access falls in the same
//! 128-byte block; otherwise the instruction is **replayed** once per extra
//! block (the paper: "a load or store instruction would be replayed if
//! there is a bank conflict or the warp accesses more than one 128-byte
//! block"). MDR counts those replays.

/// The distinct transaction blocks needed to service the given accesses,
/// where each access covers `[addr, addr + bytes)`. Sorted ascending.
pub fn transaction_blocks(accesses: &[(u64, u32)], transaction_bytes: usize) -> Vec<u64> {
    debug_assert!(transaction_bytes.is_power_of_two());
    let shift = transaction_bytes.trailing_zeros();
    let mut blocks: Vec<u64> = Vec::with_capacity(accesses.len() * 2);
    for &(addr, bytes) in accesses {
        let first = addr >> shift;
        let last = (addr + bytes.saturating_sub(1) as u64) >> shift;
        for b in first..=last {
            blocks.push(b);
        }
    }
    blocks.sort_unstable();
    blocks.dedup();
    blocks
}

/// Count the distinct transactions needed to service the given accesses.
pub fn transactions(accesses: &[(u64, u32)], transaction_bytes: usize) -> usize {
    transaction_blocks(accesses, transaction_bytes).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp_needs_one_transaction() {
        // 32 lanes × 4-byte accesses, consecutive: one 128-byte block
        let accesses: Vec<(u64, u32)> = (0..32).map(|i| (i * 4, 4)).collect();
        assert_eq!(transactions(&accesses, 128), 1);
    }

    #[test]
    fn strided_warp_needs_many_transactions() {
        // stride 128: every lane its own block
        let accesses: Vec<(u64, u32)> = (0..32).map(|i| (i * 128, 4)).collect();
        assert_eq!(transactions(&accesses, 128), 32);
    }

    #[test]
    fn duplicate_addresses_coalesce() {
        let accesses = vec![(0u64, 4u32); 32];
        assert_eq!(transactions(&accesses, 128), 1);
    }

    #[test]
    fn straddling_access_touches_two_blocks() {
        let accesses = vec![(120u64, 16u32)]; // crosses the 128 boundary
        assert_eq!(transactions(&accesses, 128), 2);
    }

    #[test]
    fn empty_access_list_needs_none() {
        assert_eq!(transactions(&[], 128), 0);
    }

    #[test]
    fn transaction_count_is_bounded_by_lane_count_times_span() {
        // each 4-byte access touches 1 block, or 2 when straddling a
        // boundary: 1 <= t <= 2 * lanes
        let accesses: Vec<(u64, u32)> = (0..32).map(|i| (i * 977, 4)).collect();
        let t = transactions(&accesses, 128);
        assert!((1..=64).contains(&t), "t = {t}");
    }
}
