//! Property tests over the SIMT model: coalescing against a reference,
//! divergence-metric bounds under arbitrary kernels, and timing-model
//! monotonicity — on the in-tree harness (`graphbig_datagen::prop`),
//! preserving the old proptest invariants and 128-case budget.

use graphbig_datagen::prop::{check, vec_of, Config};
use graphbig_datagen::rng::Rng;
use graphbig_simt::coalesce::{transaction_blocks, transactions};
use graphbig_simt::kernel::{launch, Device};
use graphbig_simt::{GpuConfig, GpuMetrics, Lane};

fn access_lists(rng: &mut Rng) -> Vec<(u64, u32)> {
    vec_of(rng, 1..32, |r| {
        (r.gen_range(0u64..(1 << 20)), r.gen_range(1u32..64))
    })
}

#[test]
fn coalescing_matches_reference_set() {
    check(
        "coalescing_matches_reference_set",
        Config::with_cases(128),
        access_lists,
        |accesses| {
            // reference: the set of 128-byte blocks touched
            let mut reference: Vec<u64> = accesses
                .iter()
                .flat_map(|&(addr, bytes)| {
                    let first = addr / 128;
                    let last = (addr + bytes as u64 - 1) / 128;
                    first..=last
                })
                .collect();
            reference.sort_unstable();
            reference.dedup();
            assert_eq!(transaction_blocks(accesses, 128), reference);
            assert_eq!(transactions(accesses, 128), reference.len());
        },
    );
}

#[test]
fn transactions_shrink_with_bigger_blocks() {
    check(
        "transactions_shrink_with_bigger_blocks",
        Config::with_cases(128),
        access_lists,
        |accesses| {
            let t128 = transactions(accesses, 128);
            let t32 = transactions(accesses, 32);
            assert!(t128 <= t32, "bigger blocks cannot need more transactions");
        },
    );
}

#[test]
fn metrics_bounded_for_arbitrary_kernels() {
    check(
        "metrics_bounded_for_arbitrary_kernels",
        Config::with_cases(128),
        |rng| {
            (
                vec_of(rng, 1..128, |r| r.gen_range(0usize..20)),
                rng.gen_range(1u64..4096),
            )
        },
        |(trips, stride)| {
            let cfg = GpuConfig::tesla_k40();
            let kernel = |tid: usize, lane: &mut Lane| {
                for i in 0..trips[tid % trips.len()] {
                    lane.alu(1);
                    lane.load_addr(tid as u64 * stride + i as u64 * 4, 4);
                    lane.branch(i % 2 == 0);
                }
            };
            let stats = launch(&cfg, trips.len(), &kernel);
            let m = GpuMetrics::from_stats(&cfg, &stats);
            assert!((0.0..=1.0).contains(&m.bdr));
            assert!((0.0..=1.0).contains(&m.mdr));
            assert!(m.ipc <= cfg.issue_per_sm + 1e-12);
            assert!(m.read_throughput_gbps <= cfg.peak_bandwidth_gbps);
            assert!(stats.l2_hits <= stats.transactions);
            assert!(stats.warps as usize <= trips.len().div_ceil(32).max(1));
        },
    );
}

#[test]
fn uniform_kernels_never_diverge() {
    check(
        "uniform_kernels_never_diverge",
        Config::with_cases(128),
        |rng| (rng.gen_range(1usize..16), rng.gen_range(32usize..256)),
        |&(trip, threads)| {
            let threads = (threads / 32) * 32; // full warps only
            let cfg = GpuConfig::tesla_k40();
            let kernel = |_tid: usize, lane: &mut Lane| {
                for _ in 0..trip {
                    lane.alu(2);
                }
            };
            let stats = launch(&cfg, threads, &kernel);
            assert_eq!(stats.bdr(32), 0.0);
            assert_eq!(stats.mdr(), 0.0);
        },
    );
}

#[test]
fn warm_l2_never_increases_dram_traffic() {
    check(
        "warm_l2_never_increases_dram_traffic",
        Config::with_cases(128),
        |rng| rng.gen_range(1usize..4),
        |&reps| {
            // replaying the same access stream on a warm device can only hit
            // more: dram per launch is non-increasing
            let cfg = GpuConfig::tesla_k40();
            let data = vec![0u8; 64 * 1024];
            let kernel = |tid: usize, lane: &mut Lane| {
                lane.load(&data[(tid * 128) % data.len()], 4);
            };
            let mut dev = Device::new(cfg);
            let mut last_dram = u64::MAX;
            let mut prev_total = 0;
            for _ in 0..reps {
                dev.launch(256, &kernel);
                let dram_now = dev.stats().dram_transactions() - prev_total;
                assert!(dram_now <= last_dram);
                last_dram = dram_now;
                prev_total = dev.stats().dram_transactions();
            }
        },
    );
}
