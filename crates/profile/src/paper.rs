//! The paper's published numbers, for paper-vs-measured comparison in the
//! figure binaries and EXPERIMENTS.md.
//!
//! Only values stated numerically in the text are recorded; figure-only
//! values are represented as qualitative expectations
//! ([`ShapeExpectation`]) that the harness checks instead.

/// A numeric claim made in the paper's text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperValue {
    /// Which figure/table the value belongs to.
    pub figure: &'static str,
    /// What is measured.
    pub metric: &'static str,
    /// Workload (or "avg").
    pub workload: &'static str,
    /// The published value.
    pub value: f64,
}

/// Numeric values stated in Section 5's prose.
pub const PAPER_VALUES: &[PaperValue] = &[
    PaperValue {
        figure: "Fig1",
        metric: "in-framework time fraction",
        workload: "avg",
        value: 0.76,
    },
    PaperValue {
        figure: "Fig6",
        metric: "DTLB penalty fraction",
        workload: "avg",
        value: 0.124,
    },
    PaperValue {
        figure: "Fig6",
        metric: "DTLB penalty fraction",
        workload: "CComp",
        value: 0.211,
    },
    PaperValue {
        figure: "Fig6",
        metric: "DTLB penalty fraction",
        workload: "TC",
        value: 0.039,
    },
    PaperValue {
        figure: "Fig6",
        metric: "DTLB penalty fraction",
        workload: "Gibbs",
        value: 0.01,
    },
    PaperValue {
        figure: "Fig6",
        metric: "ICache MPKI ceiling",
        workload: "all",
        value: 0.7,
    },
    PaperValue {
        figure: "Fig6",
        metric: "branch miss rate",
        workload: "TC",
        value: 0.107,
    },
    PaperValue {
        figure: "Fig6",
        metric: "branch miss rate ceiling",
        workload: "others",
        value: 0.05,
    },
    PaperValue {
        figure: "Fig7",
        metric: "L3 MPKI",
        workload: "avg",
        value: 48.77,
    },
    PaperValue {
        figure: "Fig7",
        metric: "L3 MPKI",
        workload: "DCentr",
        value: 145.9,
    },
    PaperValue {
        figure: "Fig7",
        metric: "L3 MPKI",
        workload: "CComp",
        value: 101.3,
    },
    PaperValue {
        figure: "Fig7",
        metric: "L3 MPKI CompDyn low",
        workload: "CompDyn",
        value: 6.3,
    },
    PaperValue {
        figure: "Fig7",
        metric: "L3 MPKI CompDyn high",
        workload: "CompDyn",
        value: 27.5,
    },
    PaperValue {
        figure: "Fig10",
        metric: "MDR",
        workload: "kCore",
        value: 0.25,
    },
    PaperValue {
        figure: "Fig10",
        metric: "MDR",
        workload: "DCentr",
        value: 0.87,
    },
    PaperValue {
        figure: "Fig11",
        metric: "read throughput GB/s",
        workload: "CComp",
        value: 89.9,
    },
    PaperValue {
        figure: "Fig11",
        metric: "read throughput GB/s",
        workload: "DCentr",
        value: 75.2,
    },
    PaperValue {
        figure: "Fig11",
        metric: "read throughput GB/s",
        workload: "TC",
        value: 2.0,
    },
    PaperValue {
        figure: "Fig12",
        metric: "GPU speedup",
        workload: "CComp",
        value: 121.0,
    },
    PaperValue {
        figure: "Fig12",
        metric: "GPU speedup typical",
        workload: "many",
        value: 20.0,
    },
];

/// Look up a paper value.
pub fn paper_value(figure: &str, workload: &str) -> Option<f64> {
    PAPER_VALUES
        .iter()
        .find(|v| v.figure == figure && v.workload == workload)
        .map(|v| v.value)
}

/// A qualitative expectation about a figure's shape.
#[derive(Debug, Clone, Copy)]
pub struct ShapeExpectation {
    /// Which figure.
    pub figure: &'static str,
    /// The expected ordering/threshold, in words (checked by tests and
    /// recorded in EXPERIMENTS.md).
    pub expectation: &'static str,
}

/// Shape claims the reproduction must preserve.
pub const SHAPE_EXPECTATIONS: &[ShapeExpectation] = &[
    ShapeExpectation {
        figure: "Fig5",
        expectation: "backend stall dominates CompStruct (kCore/GUp > 90%); CompProp ~50%",
    },
    ShapeExpectation {
        figure: "Fig7",
        expectation: "CompStruct MPKI high; CompProp lowest; CompDyn in between; GCons < GUp",
    },
    ShapeExpectation {
        figure: "Fig8",
        expectation: "IPC: CompProp > CompDyn > CompStruct",
    },
    ShapeExpectation {
        figure: "Fig9",
        expectation: "L1D hit rate high for all datasets except DCentr; data sensitivity visible",
    },
    ShapeExpectation {
        figure: "Fig10",
        expectation:
            "kCore lower-left; DCentr upper-right; GColor/BCentr branch-heavy; CComp/TC memory-only",
    },
    ShapeExpectation {
        figure: "Fig11",
        expectation: "CComp highest read throughput; TC lowest throughput but highest IPC",
    },
    ShapeExpectation {
        figure: "Fig12",
        expectation: "GPU wins broadly; CComp largest; TC/BFS/SPath smallest",
    },
    ShapeExpectation {
        figure: "Fig13",
        expectation: "CComp/TC stable BDR across datasets; road lowest BDR; LDBC highest MDR",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_stated_values() {
        assert_eq!(paper_value("Fig7", "DCentr"), Some(145.9));
        assert_eq!(paper_value("Fig1", "avg"), Some(0.76));
        assert_eq!(paper_value("Fig7", "nope"), None);
    }

    #[test]
    fn values_are_positive_and_rates_bounded() {
        for v in PAPER_VALUES {
            assert!(v.value > 0.0);
            if v.metric.contains("fraction") || v.metric.contains("rate") || v.metric == "MDR" {
                assert!(v.value <= 1.0, "{}: {}", v.metric, v.value);
            }
        }
    }

    #[test]
    fn every_gpu_figure_has_an_expectation() {
        for fig in ["Fig10", "Fig11", "Fig12", "Fig13"] {
            assert!(SHAPE_EXPECTATIONS.iter().any(|s| s.figure == fig));
        }
    }
}
