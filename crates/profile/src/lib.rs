//! # graphbig-profile
//!
//! Report plumbing for the characterization harness: ASCII/CSV tables,
//! JSON export, and the paper's reference values for side-by-side
//! comparison in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod paper;
pub mod report;

pub use report::Table;
