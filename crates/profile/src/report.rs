//! Fixed-width ASCII tables and CSV/JSON export for figure regeneration.

use graphbig_json::json_struct;

/// A simple column-oriented table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title printed above the header.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

json_struct!(Table {
    title,
    headers,
    rows
});

impl Table {
    /// New table with a title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Format a float cell with 2 decimals.
    pub fn f(x: f64) -> String {
        format!("{x:.2}")
    }

    /// Format a float cell with 3 decimals (rates).
    pub fn f3(x: f64) -> String {
        format!("{x:.3}")
    }

    /// Format a percentage cell.
    pub fn pct(x: f64) -> String {
        format!("{:.1}%", x * 100.0)
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let hdr: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        out.push_str(&hdr.join("  "));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        graphbig_json::codec::to_pretty(self)
    }

    /// Convert into the run-manifest table payload.
    pub fn to_data(&self) -> graphbig_telemetry::TableData {
        graphbig_telemetry::TableData {
            title: self.title.clone(),
            headers: self.headers.clone(),
            rows: self.rows.clone(),
        }
    }

    /// Rebuild a renderable table from manifest table data
    /// (`graphbig-report --show` renders tables straight from a manifest).
    pub fn from_data(data: &graphbig_telemetry::TableData) -> Table {
        Table {
            title: data.title.clone(),
            headers: data.headers.clone(),
            rows: data.rows.clone(),
        }
    }
}

/// Render labeled points as an ASCII scatter plot (the Figure 10/13
/// presentation): x and y in `[0, 1]`, one letter per point placed on a
/// `width × height` grid, with a legend below.
pub fn scatter_plot(points: &[(f64, f64, &str)], width: usize, height: usize) -> String {
    let width = width.max(10);
    let height = height.max(5);
    let mut grid = vec![vec![' '; width]; height];
    let mut legend = String::new();
    for (i, &(x, y, label)) in points.iter().enumerate() {
        let marker = (b'A' + (i % 26) as u8) as char;
        let cx = ((x.clamp(0.0, 1.0)) * (width - 1) as f64).round() as usize;
        let cy = ((1.0 - y.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
        // collisions: keep the first marker, note both in the legend
        if grid[cy][cx] == ' ' {
            grid[cy][cx] = marker;
        }
        legend.push_str(&format!("  {marker} = {label} ({x:.2}, {y:.2})\n"));
    }
    let mut out = String::new();
    out.push_str("BDR\n1.0 ┤\n");
    for (row_idx, row) in grid.iter().enumerate() {
        let prefix = if row_idx == height - 1 {
            "0.0 └"
        } else {
            "    │"
        };
        let line: String = row.iter().collect();
        out.push_str(&format!("{prefix}{line}\n"));
    }
    out.push_str(&format!(
        "     0.0{}1.0  MDR\n",
        "-".repeat(width.saturating_sub(6))
    ));
    out.push_str(&legend);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["workload", "mpki"]);
        t.row(vec!["BFS".into(), Table::f(48.773)]);
        t.row(vec!["DCentr".into(), Table::f(145.9)]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("workload"));
        let lines: Vec<&str> = text.lines().collect();
        // all data lines end aligned at the same width
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "workload,mpki");
        assert_eq!(lines[1], "BFS,48.77");
    }

    #[test]
    fn json_round_trips_shape() {
        let json = sample().to_json();
        let v = graphbig_json::parse(&json).unwrap();
        assert_eq!(
            v.get("headers").unwrap().as_arr().unwrap()[1].as_str(),
            Some("mpki")
        );
        assert_eq!(
            v.get("rows").unwrap().as_arr().unwrap()[1]
                .as_arr()
                .unwrap()[0]
                .as_str(),
            Some("DCentr")
        );
        let back: Table = graphbig_json::from_str(&json).unwrap();
        assert_eq!(back.headers, sample().headers);
        assert_eq!(back.rows, sample().rows);
    }

    #[test]
    fn table_data_round_trips() {
        let t = sample();
        let data = t.to_data();
        assert_eq!(data.title, "Demo");
        assert_eq!(data.headers, vec!["workload", "mpki"]);
        let back = Table::from_data(&data);
        assert_eq!(back.render(), t.render());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("t", &["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(Table::f(1.005), "1.00");
        assert_eq!(Table::f3(0.1234), "0.123");
        assert_eq!(Table::pct(0.211), "21.1%");
    }

    #[test]
    fn scatter_places_extremes_in_corners() {
        let plot = scatter_plot(&[(0.0, 0.0, "low"), (1.0, 1.0, "high")], 20, 8);
        let lines: Vec<&str> = plot.lines().collect();
        // grid rows are lines[2..2+height]; top row (y=1.0) ends with 'B'
        assert!(lines[2].trim_end().ends_with('B'), "{plot}");
        // bottom grid row carries the 'A' marker
        assert!(lines[9].contains('A'), "{plot}");
        assert!(plot.contains("A = low"));
        assert!(plot.contains("B = high"));
    }

    #[test]
    fn scatter_clamps_out_of_range_points() {
        let plot = scatter_plot(&[(-5.0, 7.0, "wild")], 12, 6);
        assert!(plot.contains("A = wild"));
    }
}
