//! Parallel CPU variants of key workloads, mirroring the paper's 16-thread
//! runs (Section 5.1 pins one thread per core).
//!
//! These run on the static [`Csr`] snapshot with atomic per-vertex state —
//! the standard shared-memory formulations — and are validated against the
//! sequential framework implementations in tests. They power the Criterion
//! wall-clock benches and the CPU side of the Figure 12 speedup comparison.

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

use graphbig_framework::csr::Csr;
use graphbig_runtime::{parfor, ThreadPool};

/// Level-synchronous parallel BFS over a CSR; returns per-vertex levels
/// (`-1` = unreached) and the number of visited vertices.
pub fn bfs(pool: &ThreadPool, csr: &Csr, source: u32) -> (Vec<i64>, u64) {
    let n = csr.num_vertices();
    if n == 0 || source as usize >= n {
        return (Vec::new(), 0);
    }
    let levels: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    levels[source as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![source];
    let mut level = 0i64;
    let visited = AtomicU64::new(1);

    while !frontier.is_empty() {
        let next: Vec<std::sync::Mutex<Vec<u32>>> = (0..pool.threads())
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        let frontier_ref = &frontier;
        let levels_ref = &levels;
        let next_ref = &next;
        let visited_ref = &visited;
        let cursor = AtomicUsize::new(0);
        pool.broadcast(|worker| {
            let mut local = Vec::new();
            loop {
                let lo = cursor.fetch_add(64, Ordering::Relaxed);
                if lo >= frontier_ref.len() {
                    break;
                }
                let hi = (lo + 64).min(frontier_ref.len());
                for &u in &frontier_ref[lo..hi] {
                    for &v in csr.neighbors(u) {
                        if levels_ref[v as usize]
                            .compare_exchange(-1, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            local.push(v);
                            visited_ref.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            next_ref[worker].lock().unwrap().append(&mut local);
        });
        frontier = next.into_iter().flat_map(|m| m.into_inner().unwrap()).collect();
        frontier.sort_unstable(); // deterministic order across thread counts
        level += 1;
    }
    (
        levels.into_iter().map(|a| a.into_inner()).collect(),
        visited.into_inner(),
    )
}

/// Parallel degree centrality over a CSR (using out-degree + in-degree via
/// the transpose); returns normalized scores.
pub fn dcentr(pool: &ThreadPool, csr: &Csr) -> Vec<f64> {
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let transpose = csr.transpose();
    let scores: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let denom = (n.saturating_sub(1)).max(1) as f64;
    parfor::parallel_for(pool, 0..n, 256, |u| {
        let d = csr.degree(u as u32) + transpose.degree(u as u32);
        let c = d as f64 / denom;
        scores[u].store(c.to_bits(), Ordering::Relaxed);
    });
    scores
        .into_iter()
        .map(|a| f64::from_bits(a.into_inner()))
        .collect()
}

/// Parallel connected components via min-label propagation (undirected
/// view; symmetrize the CSR first for directed graphs). Returns per-vertex
/// labels.
pub fn ccomp(pool: &ThreadPool, csr: &Csr) -> Vec<u32> {
    let n = csr.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    if n == 0 {
        return Vec::new();
    }
    loop {
        let changed = AtomicU64::new(0);
        parfor::parallel_for(pool, 0..n, 256, |u| {
            let mut best = labels[u].load(Ordering::Relaxed);
            for &v in csr.neighbors(u as u32) {
                let lv = labels[v as usize].load(Ordering::Relaxed);
                if lv < best {
                    best = lv;
                }
            }
            let prev = labels[u].load(Ordering::Relaxed);
            if best < prev {
                labels[u].store(best, Ordering::Relaxed);
                changed.fetch_add(1, Ordering::Relaxed);
            }
        });
        if changed.load(Ordering::Relaxed) == 0 {
            break;
        }
    }
    // Pointer-jump to the root label so every member carries its
    // component's minimum id.
    let raw: Vec<u32> = labels.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let mut out = raw.clone();
    for u in 0..n {
        let mut l = out[u];
        while out[l as usize] != l {
            l = out[l as usize];
        }
        out[u] = l;
    }
    out
}

/// Parallel SSSP via round-synchronous Bellman-Ford relaxation (the
/// shared-memory analogue of the GPU kernel); returns per-vertex distances
/// (`f32::INFINITY` = unreached).
pub fn spath(pool: &ThreadPool, csr: &Csr, source: u32) -> Vec<f32> {
    let n = csr.num_vertices();
    if n == 0 || source as usize >= n {
        return Vec::new();
    }
    let dist: Vec<AtomicU32> = (0..n)
        .map(|_| AtomicU32::new(f32::INFINITY.to_bits()))
        .collect();
    dist[source as usize].store(0f32.to_bits(), Ordering::Relaxed);
    for _round in 0..n {
        let changed = AtomicU64::new(0);
        parfor::parallel_for(pool, 0..n, 128, |u| {
            let du = f32::from_bits(dist[u].load(Ordering::Relaxed));
            if !du.is_finite() {
                return;
            }
            let ws = csr.edge_weights(u as u32);
            for (i, &v) in csr.neighbors(u as u32).iter().enumerate() {
                let cand = (du + ws[i]).to_bits();
                // non-negative f32 bits compare like the floats themselves
                if dist[v as usize].fetch_min(cand, Ordering::Relaxed) > cand {
                    changed.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        if changed.load(Ordering::Relaxed) == 0 {
            break;
        }
    }
    dist.into_iter()
        .map(|a| f32::from_bits(a.into_inner()))
        .collect()
}

/// Parallel Luby–Jones coloring over a (symmetrized) CSR; identical colors
/// to the sequential and GPU implementations (same `hash_id` priorities).
/// Returns per-vertex colors.
pub fn gcolor(pool: &ThreadPool, csr: &Csr) -> Vec<i64> {
    use graphbig_framework::index::hash_id;
    let n = csr.num_vertices();
    let color: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    let mut remaining = n;
    while remaining > 0 {
        let colored_this_round = AtomicU64::new(0);
        parfor::parallel_for(pool, 0..n, 128, |u| {
            if color[u].load(Ordering::Relaxed) >= 0 {
                return;
            }
            let my_id = csr.id_of(u as u32);
            let my_pri = hash_id(my_id);
            let mut is_max = true;
            for &v in csr.neighbors(u as u32) {
                if v as usize == u || color[v as usize].load(Ordering::Relaxed) >= 0 {
                    continue;
                }
                let vid = csr.id_of(v);
                let vp = hash_id(vid);
                if vp > my_pri || (vp == my_pri && vid > my_id) {
                    is_max = false;
                    break;
                }
            }
            if is_max {
                let mut used: Vec<i64> = csr
                    .neighbors(u as u32)
                    .iter()
                    .filter_map(|&v| {
                        let c = color[v as usize].load(Ordering::Relaxed);
                        (c >= 0).then_some(c)
                    })
                    .collect();
                used.sort_unstable();
                used.dedup();
                let mut pick = 0i64;
                for c in used {
                    if c == pick {
                        pick += 1;
                    } else if c > pick {
                        break;
                    }
                }
                color[u].store(pick, Ordering::Relaxed);
                colored_this_round.fetch_add(1, Ordering::Relaxed);
            }
        });
        let done = colored_this_round.load(Ordering::Relaxed) as usize;
        assert!(done > 0, "Luby-Jones always makes progress");
        remaining -= done;
    }
    color.into_iter().map(|c| c.into_inner()).collect()
}

/// Parallel triangle count over a symmetrized, adjacency-sorted CSR.
pub fn tc(pool: &ThreadPool, csr: &Csr) -> u64 {
    let n = csr.num_vertices();
    parfor::parallel_reduce(
        pool,
        0..n,
        64,
        0u64,
        |u| {
            let u = u as u32;
            let mut count = 0u64;
            for &v in csr.neighbors(u) {
                if v <= u {
                    continue;
                }
                // merge-intersect N(u) and N(v) above v
                let (a, b) = (csr.neighbors(u), csr.neighbors(v));
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            if a[i] > v {
                                count += 1;
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            count
        },
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_datagen::Dataset;
    use graphbig_framework::PropertyGraph;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn ldbc(n: usize) -> (PropertyGraph, Csr) {
        let g = Dataset::Ldbc.generate_with_vertices(n);
        let csr = Csr::from_graph(&g);
        (g, csr)
    }

    #[test]
    fn parallel_bfs_matches_sequential_levels() {
        let (mut g, csr) = ldbc(400);
        let (levels, visited) = bfs(&pool(), &csr, 0);
        let root = g.vertex_ids()[0];
        let seq = crate::bfs::run(&mut g, root);
        assert_eq!(visited, seq.visited);
        for (dense, &l) in levels.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            let seq_level = crate::bfs::level_of(&g, id).map(|x| x as i64).unwrap_or(-1);
            assert_eq!(l, seq_level, "vertex {id}");
        }
    }

    #[test]
    fn parallel_dcentr_matches_sequential() {
        let (mut g, csr) = ldbc(300);
        let scores = dcentr(&pool(), &csr);
        crate::dcentr::run(&mut g);
        for (dense, &s) in scores.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            let want = crate::dcentr::centrality_of(&g, id).unwrap();
            assert!((s - want).abs() < 1e-12, "vertex {id}: {s} vs {want}");
        }
    }

    #[test]
    fn parallel_ccomp_matches_sequential_count() {
        let (mut g, csr) = ldbc(300);
        let sym = csr.symmetrize();
        let labels = ccomp(&pool(), &sym);
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let seq = crate::ccomp::run(&mut g);
        assert_eq!(distinct.len() as u64, seq.components);
    }

    #[test]
    fn parallel_tc_matches_sequential() {
        let (mut g, csr) = ldbc(200);
        let mut sym = csr.symmetrize();
        sym.sort_adjacency();
        let par = tc(&pool(), &sym);
        let seq = crate::tc::run(&mut g);
        assert_eq!(par, seq.triangles);
    }

    #[test]
    fn parallel_spath_matches_sequential_dijkstra() {
        let (mut g, csr) = ldbc(250);
        let dist = spath(&pool(), &csr, 0);
        let root = csr.id_of(0);
        crate::spath::run(&mut g, root);
        for (dense, &d) in dist.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            match crate::spath::distance_of(&g, id) {
                Some(want) => assert!((d as f64 - want).abs() < 1e-4, "vertex {id}"),
                None => assert!(d.is_infinite(), "vertex {id}"),
            }
        }
    }

    #[test]
    fn parallel_gcolor_matches_sequential_colors() {
        let g = Dataset::WatsonGene.generate_with_vertices(300);
        let csr = Csr::from_graph(&g);
        let colors = gcolor(&pool(), &csr);
        let mut g2 = Dataset::WatsonGene.generate_with_vertices(300);
        crate::gcolor::run(&mut g2);
        for (dense, &c) in colors.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            assert_eq!(Some(c), crate::gcolor::color_of(&g2, id), "vertex {id}");
        }
    }

    #[test]
    fn results_independent_of_thread_count() {
        let (_, csr) = ldbc(250);
        let one = ThreadPool::new(1);
        let eight = ThreadPool::new(8);
        assert_eq!(bfs(&one, &csr, 0).0, bfs(&eight, &csr, 0).0);
        let sym = csr.symmetrize();
        assert_eq!(ccomp(&one, &sym), ccomp(&eight, &sym));
    }

    #[test]
    fn empty_csr_is_handled() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(bfs(&pool(), &csr, 0).1, 0);
        assert!(dcentr(&pool(), &csr).is_empty());
        assert!(ccomp(&pool(), &csr).is_empty());
        assert_eq!(tc(&pool(), &csr), 0);
    }
}
