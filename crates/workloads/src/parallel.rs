//! Parallel CPU variants of key workloads, mirroring the paper's 16-thread
//! runs (Section 5.1 pins one thread per core).
//!
//! These run on the static [`Csr`] snapshot with atomic per-vertex state —
//! the standard shared-memory formulations — and are validated against the
//! sequential framework implementations in tests. They power the Criterion
//! wall-clock benches and the CPU side of the Figure 12 speedup comparison.
//!
//! The traversal kernels ([`bfs`], [`bfs_dir_opt`], [`ccomp`], [`kcore`])
//! run on the runtime's frontier engine: degree-weighted chunks feed a
//! dynamic scheduler, workers emit discoveries into chunk-tagged buffers
//! ([`ChunkedSink`]), and the merge is a prefix-sum compaction in chunk
//! order — schedule-independent, so results are bit-identical for any
//! thread count without sorting the frontier.
//! [`bfs_dir_opt`] additionally switches between top-down and bottom-up
//! traversal with the GAP alpha/beta heuristic (see DESIGN.md).

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};

use graphbig_framework::bitmap::AtomicBitmap;
use graphbig_framework::csr::{BiCsr, Csr};
use graphbig_runtime::frontier::{should_be_dense, ChunkedSink, Frontier};
use graphbig_runtime::{parfor, CancelToken, Cancelled, ThreadPool};

/// Target edge weight per scheduling chunk: large enough to amortize the
/// cursor fetch_add, small enough that a hub vertex doesn't serialize a
/// level.
const CHUNK_WEIGHT: u64 = 2048;

/// Switch top-down -> bottom-up when the frontier's out-edges exceed
/// 1/ALPHA of the unexplored edges (GAP's tuned default).
const ALPHA: u64 = 15;

/// Switch bottom-up -> top-down when the frontier shrinks below 1/BETA of
/// the vertices (GAP's tuned default).
const BETA: usize = 18;

/// Traversal direction chosen for one level of [`bfs_dir_opt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelDir {
    /// Out-edges of frontier vertices relaxed (queue frontier).
    TopDown,
    /// Unreached vertices scanned their in-edges for parents (bitmap frontier).
    BottomUp,
}

/// One executed level of a direction-optimized traversal, with the
/// heuristic's trigger values as they stood when the direction was chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelRecord {
    /// Depth of the frontier entering this step.
    pub depth: i64,
    /// Direction the step executed in.
    pub dir: LevelDir,
    /// Vertices in the frontier entering the step.
    pub frontier_len: usize,
    /// Out-edge scout count (the alpha trigger's left side). During a
    /// bottom-up phase this carries the value that triggered the switch —
    /// the heuristic does not recompute it until the phase exits.
    pub scout: u64,
    /// Remaining unexplored-edge estimate (the alpha trigger's right side).
    pub edges_to_check: u64,
}

/// Execution trajectory of one [`bfs_dir_opt`] run: every level with its
/// direction and trigger values, plus the direction-switch counts. The
/// trajectory is a pure function of the graph and source (the heuristic
/// inputs are schedule-independent), so tests can check it against a
/// reference simulation driven by sequential BFS level data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirOptReport {
    /// Per-level records in execution order.
    pub levels: Vec<LevelRecord>,
    /// Top-down -> bottom-up transitions (alpha trigger firings).
    pub switches_to_bottom_up: u64,
    /// Bottom-up -> top-down transitions (beta trigger firings) that
    /// resumed traversal; a bottom-up phase that drains the frontier ends
    /// the run and is not counted.
    pub switches_to_top_down: u64,
}

impl DirOptReport {
    /// Publish the trajectory into `reg` under the `bfs.*` metric schema:
    /// per-level frontier occupancy as a log₂ histogram, level and
    /// direction-switch counters.
    pub fn publish(&self, reg: &graphbig_telemetry::Registry) {
        let occupancy = reg.histogram("bfs.frontier.occupancy");
        for record in &self.levels {
            occupancy.record(record.frontier_len as u64);
        }
        reg.counter("bfs.levels").add(self.levels.len() as u64);
        reg.counter("bfs.switches.to_bottom_up")
            .add(self.switches_to_bottom_up);
        reg.counter("bfs.switches.to_top_down")
            .add(self.switches_to_top_down);
    }
}

/// Reusable per-traversal state: one atomic level array sized once and
/// reset between runs, so repeated traversals (benches, betweenness-style
/// multi-source loops) allocate nothing after the first.
pub struct BfsState {
    levels: Vec<AtomicI64>,
}

impl BfsState {
    /// State for an `n`-vertex graph, all levels unreached.
    pub fn new(n: usize) -> Self {
        BfsState {
            levels: (0..n).map(|_| AtomicI64::new(-1)).collect(),
        }
    }

    /// Reset every level to unreached (parallel, cheap relative to a level).
    fn reset(&mut self, pool: &ThreadPool) {
        let levels = &self.levels;
        parfor::parallel_for(pool, 0..levels.len(), 4096, |i| {
            levels[i].store(-1, Ordering::Relaxed);
        });
    }

    /// Extract the level array, consuming the state.
    fn into_levels(self) -> Vec<i64> {
        self.levels.into_iter().map(|a| a.into_inner()).collect()
    }
}

/// One top-down expansion: relax out-edges of `frontier` (a queue), CAS
/// unreached vertices to `level + 1`, and gather discoveries in
/// deterministic chunk order into `next`. Returns the sum of out-degrees of
/// the discovered vertices (the scout count for the direction heuristic).
fn top_down_step(
    pool: &ThreadPool,
    csr: &Csr,
    levels: &[AtomicI64],
    frontier: &[u32],
    level: i64,
    sink: &ChunkedSink,
    next: &mut Vec<u32>,
) -> u64 {
    // Serial fast path: one worker, or a frontier small enough for a single
    // chunk. Emits in frontier order — exactly what the chunk-ordered merge
    // would produce — while skipping the chunking and sink bookkeeping.
    let serial = pool.threads() == 1;
    let chunks = if serial {
        Vec::new()
    } else {
        parfor::weighted_chunks(frontier.len(), CHUNK_WEIGHT, |i| {
            csr.degree(frontier[i]) as u64 + 1
        })
    };
    if serial || chunks.len() == 1 {
        next.clear();
        let mut scout = 0u64;
        for &u in frontier {
            for &v in csr.neighbors(u) {
                if levels[v as usize]
                    .compare_exchange(-1, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    next.push(v);
                    scout += csr.degree(v) as u64;
                }
            }
        }
        return scout;
    }
    let scout = AtomicU64::new(0);
    parfor::parallel_for_chunk_list(pool, &chunks, |worker, chunk, range| {
        let mut buf = sink.take_buffer(worker);
        let mut local_scout = 0u64;
        for i in range {
            let u = frontier[i];
            for &v in csr.neighbors(u) {
                if levels[v as usize]
                    .compare_exchange(-1, level + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    buf.push(v);
                    local_scout += csr.degree(v) as u64;
                }
            }
        }
        scout.fetch_add(local_scout, Ordering::Relaxed);
        sink.commit(worker, chunk, buf);
    });
    next.clear();
    sink.drain_into(next);
    scout.into_inner()
}

/// Level-synchronous parallel BFS over a CSR (always top-down); returns
/// per-vertex levels (`-1` = unreached) and the number of visited vertices.
///
/// Per-level output is merged from chunk-tagged worker buffers by prefix-sum
/// compaction, so the merge is schedule-independent (frontier order depends
/// only on which chunk discovered each vertex, never on worker timing) and
/// the level array is bit-identical for every thread count — with no
/// per-level sort.
pub fn bfs(pool: &ThreadPool, csr: &Csr, source: u32) -> (Vec<i64>, u64) {
    let n = csr.num_vertices();
    if n == 0 || source as usize >= n {
        return (Vec::new(), 0);
    }
    let mut state = BfsState::new(n);
    let visited = bfs_with_state(pool, csr, source, &mut state);
    (state.into_levels(), visited)
}

/// [`bfs`] against caller-owned [`BfsState`]; reuses the level allocation
/// across calls. Returns the visited count; levels stay in `state`.
pub fn bfs_with_state(pool: &ThreadPool, csr: &Csr, source: u32, state: &mut BfsState) -> u64 {
    bfs_with_state_cancellable(pool, csr, source, state, &CancelToken::never())
        .expect("never token cannot cancel")
}

/// [`bfs_with_state`] with cooperative cancellation: the token is polled
/// once per frontier level, so a fired token abandons at most one level of
/// work. `state` is left partially written on cancellation and must be
/// reset by the next run (which [`bfs_with_state`] does unconditionally).
pub fn bfs_with_state_cancellable(
    pool: &ThreadPool,
    csr: &Csr,
    source: u32,
    state: &mut BfsState,
    cancel: &CancelToken,
) -> Result<u64, Cancelled> {
    state.reset(pool);
    let levels = &state.levels;
    levels[source as usize].store(0, Ordering::Relaxed);
    let sink = ChunkedSink::new(pool.threads());
    let mut frontier = vec![source];
    let mut next: Vec<u32> = Vec::new();
    let mut level = 0i64;
    let mut visited = 1u64;
    while !frontier.is_empty() {
        cancel.check()?;
        let _lvl = graphbig_telemetry::span!("bfs.level", depth = level, frontier = frontier.len());
        top_down_step(pool, csr, levels, &frontier, level, &sink, &mut next);
        visited += next.len() as u64;
        std::mem::swap(&mut frontier, &mut next);
        level += 1;
    }
    Ok(visited)
}

/// One bottom-up step: every unreached vertex scans its *in*-edges for a
/// parent in the (dense) frontier and adopts `level + 1` on the first hit.
/// Returns (next-frontier bitmap, awake count).
fn bottom_up_step(
    pool: &ThreadPool,
    bi: &BiCsr,
    levels: &[AtomicI64],
    frontier: &AtomicBitmap,
    level: i64,
) -> (AtomicBitmap, usize) {
    let n = levels.len();
    let inc = bi.inc();
    let next = AtomicBitmap::new(n);
    let awake = AtomicU64::new(0);
    let chunks = parfor::weighted_chunks(n, CHUNK_WEIGHT, |v| inc.degree(v as u32) as u64 + 1);
    parfor::parallel_for_chunk_list(pool, &chunks, |_worker, _chunk, range| {
        let mut local_awake = 0u64;
        for v in range {
            if levels[v].load(Ordering::Relaxed) != -1 {
                continue;
            }
            for &u in inc.neighbors(v as u32) {
                if frontier.get(u as usize) {
                    levels[v].store(level + 1, Ordering::Relaxed);
                    next.set(v);
                    local_awake += 1;
                    break;
                }
            }
        }
        awake.fetch_add(local_awake, Ordering::Relaxed);
    });
    (next, awake.into_inner() as usize)
}

/// Direction-optimizing parallel BFS (Beamer's hybrid as tuned in the GAP
/// benchmark suite): top-down while the frontier is small, bottom-up once
/// the frontier's out-edges dominate the unexplored edges, back to top-down
/// when the frontier collapses. Returns per-vertex levels (`-1` =
/// unreached) and the visited count — identical output to [`bfs`].
pub fn bfs_dir_opt(pool: &ThreadPool, bi: &BiCsr, source: u32) -> (Vec<i64>, u64) {
    let (levels, visited, report) = bfs_dir_opt_reported(pool, bi, source);
    report.publish(graphbig_telemetry::metrics::global());
    (levels, visited)
}

/// [`bfs_dir_opt`] returning the full [`DirOptReport`] trajectory alongside
/// the result, without touching the global metric registry — the variant
/// tests and diagnostics use to inspect the heuristic in isolation.
pub fn bfs_dir_opt_reported(
    pool: &ThreadPool,
    bi: &BiCsr,
    source: u32,
) -> (Vec<i64>, u64, DirOptReport) {
    bfs_dir_opt_cancellable(pool, bi, source, &CancelToken::never())
        .expect("never token cannot cancel")
}

/// [`bfs_dir_opt_reported`] with cooperative cancellation, polled at every
/// level boundary in both traversal directions.
pub fn bfs_dir_opt_cancellable(
    pool: &ThreadPool,
    bi: &BiCsr,
    source: u32,
    cancel: &CancelToken,
) -> Result<(Vec<i64>, u64, DirOptReport), Cancelled> {
    let mut report = DirOptReport::default();
    let n = bi.num_vertices();
    if n == 0 || source as usize >= n {
        return Ok((Vec::new(), 0, report));
    }
    let m = bi.num_edges() as u64;
    let out = bi.out();
    let levels: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    levels[source as usize].store(0, Ordering::Relaxed);
    let sink = ChunkedSink::new(pool.threads());
    let mut frontier = Frontier::singleton(source);
    let mut scout = out.degree(source) as u64;
    let mut edges_to_check = m;
    let mut level = 0i64;
    let mut next_queue: Vec<u32> = Vec::new();

    while !frontier.is_empty() {
        cancel.check()?;
        if scout > edges_to_check / ALPHA {
            report.switches_to_bottom_up += 1;
            graphbig_telemetry::instant(
                "bfs.switch",
                &[
                    ("to_bottom_up", 1.0),
                    ("scout", scout as f64),
                    ("edges_to_check", edges_to_check as f64),
                ],
            );
            // Bottom-up phase: stay here while the frontier is still growing
            // or still a large fraction of the graph.
            frontier.ensure_dense(n);
            loop {
                cancel.check()?;
                let before = frontier.len();
                report.levels.push(LevelRecord {
                    depth: level,
                    dir: LevelDir::BottomUp,
                    frontier_len: before,
                    scout,
                    edges_to_check,
                });
                let _lvl = graphbig_telemetry::span!(
                    "bfs.level",
                    depth = level,
                    frontier = before,
                    dense = 1
                );
                let (bits, awake) = bottom_up_step(
                    pool,
                    bi,
                    &levels,
                    frontier.as_dense().expect("ensured dense"),
                    level,
                );
                level += 1;
                frontier = Frontier::Dense { bits, count: awake };
                if awake == 0 || (awake < before && awake * BETA < n) {
                    break;
                }
            }
            // Back to top-down: recompute the scout count for the (possibly
            // sparse) surviving frontier.
            let mut s = 0u64;
            frontier.for_each(|v| s += out.degree(v) as u64);
            scout = s;
            if let Frontier::Dense { bits, count } = frontier {
                frontier = Frontier::from_bitmap(bits, count);
            }
            if !frontier.is_empty() {
                report.switches_to_top_down += 1;
                graphbig_telemetry::instant(
                    "bfs.switch",
                    &[
                        ("to_top_down", 1.0),
                        ("frontier", frontier.len() as f64),
                        ("beta_threshold", (n / BETA) as f64),
                    ],
                );
            }
        } else {
            report.levels.push(LevelRecord {
                depth: level,
                dir: LevelDir::TopDown,
                frontier_len: frontier.len(),
                scout,
                edges_to_check,
            });
            edges_to_check = edges_to_check.saturating_sub(scout);
            let _lvl = graphbig_telemetry::span!(
                "bfs.level",
                depth = level,
                frontier = frontier.len(),
                dense = 0
            );
            // The frontier may still be occupancy-dense even when the
            // heuristic picks top-down; materialize a queue in that case.
            let materialized;
            let queue: &[u32] = match &frontier {
                Frontier::Sparse(q) => q,
                Frontier::Dense { bits, .. } => {
                    materialized = bits.to_vec();
                    &materialized
                }
            };
            scout = top_down_step(pool, out, &levels, queue, level, &sink, &mut next_queue);
            level += 1;
            let produced = std::mem::take(&mut next_queue);
            frontier = Frontier::from_queue(produced, n);
        }
    }
    let visited = levels
        .iter()
        .filter(|l| l.load(Ordering::Relaxed) >= 0)
        .count() as u64;
    Ok((
        levels.into_iter().map(|a| a.into_inner()).collect(),
        visited,
        report,
    ))
}

/// Parallel degree centrality over a CSR (using out-degree + in-degree via
/// the transpose); returns normalized scores.
pub fn dcentr(pool: &ThreadPool, csr: &Csr) -> Vec<f64> {
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let transpose = csr.transpose();
    let scores: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let denom = (n.saturating_sub(1)).max(1) as f64;
    parfor::parallel_for(pool, 0..n, 256, |u| {
        let d = csr.degree(u as u32) + transpose.degree(u as u32);
        let c = d as f64 / denom;
        scores[u].store(c.to_bits(), Ordering::Relaxed);
    });
    scores
        .into_iter()
        .map(|a| f64::from_bits(a.into_inner()))
        .collect()
}

/// Parallel connected components via frontier-driven min-label propagation
/// (undirected view; symmetrize the CSR first for directed graphs).
/// Returns per-vertex labels — the minimum dense id in each component.
///
/// Unlike the earlier whole-graph pull sweep repeated until fixpoint, only
/// vertices whose label just improved push to their neighbors, so late
/// rounds touch a shrinking active set instead of all `n` vertices. Labels
/// converge to the per-component minimum — a unique fixed point, hence
/// deterministic for any schedule.
pub fn ccomp(pool: &ThreadPool, csr: &Csr) -> Vec<u32> {
    ccomp_cancellable(pool, csr, &CancelToken::never()).expect("never token cannot cancel")
}

/// [`ccomp`] with cooperative cancellation, polled once per propagation
/// round. Round bitmaps cycle through a one-deep spare pool ([`AtomicBitmap::reset`]),
/// so steady-state rounds allocate nothing.
pub fn ccomp_cancellable(
    pool: &ThreadPool,
    csr: &Csr,
    cancel: &CancelToken,
) -> Result<Vec<u32>, Cancelled> {
    let n = csr.num_vertices();
    if n == 0 {
        return Ok(Vec::new());
    }
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    // Round 0: every vertex is active.
    let mut frontier = Frontier::from_queue((0..n as u32).collect(), n);
    let mut spare: Option<AtomicBitmap> = None;
    while !frontier.is_empty() {
        cancel.check()?;
        let next = match spare.take() {
            Some(mut b) => {
                b.reset();
                b
            }
            None => AtomicBitmap::new(n),
        };
        let awake = AtomicU64::new(0);
        let relax = |u: u32, local_awake: &mut u64| {
            let lu = labels[u as usize].load(Ordering::Relaxed);
            for &v in csr.neighbors(u) {
                if labels[v as usize].fetch_min(lu, Ordering::Relaxed) > lu && next.set(v as usize)
                {
                    *local_awake += 1;
                }
            }
        };
        match &frontier {
            Frontier::Sparse(q) => {
                let chunks =
                    parfor::weighted_chunks(q.len(), CHUNK_WEIGHT, |i| csr.degree(q[i]) as u64 + 1);
                parfor::parallel_for_chunk_list(pool, &chunks, |_w, _c, range| {
                    let mut local = 0u64;
                    for i in range {
                        relax(q[i], &mut local);
                    }
                    awake.fetch_add(local, Ordering::Relaxed);
                });
            }
            Frontier::Dense { bits, .. } => {
                let chunks =
                    parfor::weighted_chunks(n, CHUNK_WEIGHT, |v| csr.degree(v as u32) as u64 + 1);
                parfor::parallel_for_chunk_list(pool, &chunks, |_w, _c, range| {
                    let mut local = 0u64;
                    for v in range {
                        if bits.get(v) {
                            relax(v as u32, &mut local);
                        }
                    }
                    awake.fetch_add(local, Ordering::Relaxed);
                });
            }
        }
        // Build the next frontier the way `Frontier::from_bitmap` would,
        // but recycle whichever bitmap falls out of use (the one dropped by
        // a dense->sparse conversion, or the previous round's dense one).
        let count = awake.into_inner() as usize;
        let produced = if should_be_dense(count, n) {
            Frontier::Dense { bits: next, count }
        } else {
            let queue = next.to_vec();
            spare = Some(next);
            Frontier::Sparse(queue)
        };
        if let Frontier::Dense { bits, .. } = std::mem::replace(&mut frontier, produced) {
            spare.get_or_insert(bits);
        }
    }
    Ok(labels.into_iter().map(|a| a.into_inner()).collect())
}

/// Parallel k-core decomposition over a **symmetrized, deduplicated** CSR
/// (build with [`Csr::symmetrize`], which also drops self-loops — the same
/// undirected view the sequential Matula–Beck peeler uses). Returns each
/// vertex's core number.
///
/// ParK-style level-synchronous peeling: all vertices of the current
/// minimum degree `k` peel together; each removal decrements neighbor
/// degrees with a clamp at `k` (`fetch_update`), and exactly the thread
/// that observes the `k + 1 -> k` transition enqueues the neighbor for this
/// level's next wave. Core numbers are a graph invariant, so the output is
/// deterministic for any schedule.
pub fn kcore(pool: &ThreadPool, csr: &Csr) -> Vec<u32> {
    kcore_cancellable(pool, csr, &CancelToken::never()).expect("never token cannot cancel")
}

/// [`kcore`] with cooperative cancellation, polled once per peel level and
/// once per wave inside a level.
pub fn kcore_cancellable(
    pool: &ThreadPool,
    csr: &Csr,
    cancel: &CancelToken,
) -> Result<Vec<u32>, Cancelled> {
    let n = csr.num_vertices();
    if n == 0 {
        return Ok(Vec::new());
    }
    const UNPEELED: u32 = u32::MAX;
    let deg: Vec<AtomicU32> = (0..n)
        .map(|v| AtomicU32::new(csr.degree(v as u32)))
        .collect();
    let core: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNPEELED)).collect();
    let sink = ChunkedSink::new(pool.threads());
    let mut remaining = n;
    let mut k = 0u32;
    let mut frontier: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();
    while remaining > 0 {
        cancel.check()?;
        // Seed this level: alive vertices whose degree has reached k.
        // (Alive vertices always have degree >= k here, see the clamp.)
        let chunks = parfor::weighted_chunks(n, CHUNK_WEIGHT, |_| 1);
        parfor::parallel_for_chunk_list(pool, &chunks, |worker, chunk, range| {
            let mut buf = sink.take_buffer(worker);
            for v in range {
                if core[v].load(Ordering::Relaxed) == UNPEELED
                    && deg[v].load(Ordering::Relaxed) <= k
                {
                    buf.push(v as u32);
                }
            }
            sink.commit(worker, chunk, buf);
        });
        frontier.clear();
        sink.drain_into(&mut frontier);
        if frontier.is_empty() {
            // Nothing at this k: jump straight to the smallest alive degree.
            k = parfor::parallel_reduce(
                pool,
                0..n,
                4096,
                u32::MAX,
                |v| {
                    if core[v].load(Ordering::Relaxed) == UNPEELED {
                        deg[v].load(Ordering::Relaxed)
                    } else {
                        u32::MAX
                    }
                },
                |a, b| a.min(b),
            );
            continue;
        }
        // Peel waves at this k until no more degrees collapse to k.
        while !frontier.is_empty() {
            cancel.check()?;
            remaining -= frontier.len();
            let chunks = parfor::weighted_chunks(frontier.len(), CHUNK_WEIGHT, |i| {
                csr.degree(frontier[i]) as u64 + 1
            });
            let f = &frontier;
            parfor::parallel_for_chunk_list(pool, &chunks, |worker, chunk, range| {
                let mut buf = sink.take_buffer(worker);
                for i in range {
                    let v = f[i];
                    core[v as usize].store(k, Ordering::Relaxed);
                    for &u in csr.neighbors(v) {
                        // Decrement, clamped at k: peeled/at-k neighbors stay
                        // untouched, and exactly one decrementer sees k+1.
                        let prev = deg[u as usize].fetch_update(
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                            |d| if d > k { Some(d - 1) } else { None },
                        );
                        if prev == Ok(k + 1) {
                            buf.push(u);
                        }
                    }
                }
                sink.commit(worker, chunk, buf);
            });
            next.clear();
            sink.drain_into(&mut next);
            std::mem::swap(&mut frontier, &mut next);
        }
        k += 1;
    }
    Ok(core.into_iter().map(|a| a.into_inner()).collect())
}

/// Parallel SSSP via round-synchronous Bellman-Ford relaxation (the
/// shared-memory analogue of the GPU kernel); returns per-vertex distances
/// (`f32::INFINITY` = unreached).
pub fn spath(pool: &ThreadPool, csr: &Csr, source: u32) -> Vec<f32> {
    spath_cancellable(pool, csr, source, &CancelToken::never()).expect("never token cannot cancel")
}

/// [`spath`] with cooperative cancellation, polled once per relaxation
/// round.
pub fn spath_cancellable(
    pool: &ThreadPool,
    csr: &Csr,
    source: u32,
    cancel: &CancelToken,
) -> Result<Vec<f32>, Cancelled> {
    let n = csr.num_vertices();
    if n == 0 || source as usize >= n {
        return Ok(Vec::new());
    }
    let dist: Vec<AtomicU32> = (0..n)
        .map(|_| AtomicU32::new(f32::INFINITY.to_bits()))
        .collect();
    dist[source as usize].store(0f32.to_bits(), Ordering::Relaxed);
    for _round in 0..n {
        cancel.check()?;
        let changed = AtomicU64::new(0);
        parfor::parallel_for(pool, 0..n, 128, |u| {
            let du = f32::from_bits(dist[u].load(Ordering::Relaxed));
            if !du.is_finite() {
                return;
            }
            let ws = csr.edge_weights(u as u32);
            for (i, &v) in csr.neighbors(u as u32).iter().enumerate() {
                let cand = (du + ws[i]).to_bits();
                // non-negative f32 bits compare like the floats themselves
                if dist[v as usize].fetch_min(cand, Ordering::Relaxed) > cand {
                    changed.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        if changed.load(Ordering::Relaxed) == 0 {
            break;
        }
    }
    Ok(dist
        .into_iter()
        .map(|a| f32::from_bits(a.into_inner()))
        .collect())
}

/// Parallel Luby–Jones coloring over a (symmetrized) CSR; identical colors
/// to the sequential and GPU implementations (same `hash_id` priorities).
/// Returns per-vertex colors.
pub fn gcolor(pool: &ThreadPool, csr: &Csr) -> Vec<i64> {
    use graphbig_framework::index::hash_id;
    let n = csr.num_vertices();
    let color: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    let mut remaining = n;
    while remaining > 0 {
        let colored_this_round = AtomicU64::new(0);
        parfor::parallel_for(pool, 0..n, 128, |u| {
            if color[u].load(Ordering::Relaxed) >= 0 {
                return;
            }
            let my_id = csr.id_of(u as u32);
            let my_pri = hash_id(my_id);
            let mut is_max = true;
            for &v in csr.neighbors(u as u32) {
                if v as usize == u || color[v as usize].load(Ordering::Relaxed) >= 0 {
                    continue;
                }
                let vid = csr.id_of(v);
                let vp = hash_id(vid);
                if vp > my_pri || (vp == my_pri && vid > my_id) {
                    is_max = false;
                    break;
                }
            }
            if is_max {
                let mut used: Vec<i64> = csr
                    .neighbors(u as u32)
                    .iter()
                    .filter_map(|&v| {
                        let c = color[v as usize].load(Ordering::Relaxed);
                        (c >= 0).then_some(c)
                    })
                    .collect();
                used.sort_unstable();
                used.dedup();
                let mut pick = 0i64;
                for c in used {
                    if c == pick {
                        pick += 1;
                    } else if c > pick {
                        break;
                    }
                }
                color[u].store(pick, Ordering::Relaxed);
                colored_this_round.fetch_add(1, Ordering::Relaxed);
            }
        });
        let done = colored_this_round.load(Ordering::Relaxed) as usize;
        assert!(done > 0, "Luby-Jones always makes progress");
        remaining -= done;
    }
    color.into_iter().map(|c| c.into_inner()).collect()
}

/// Parallel triangle count over a symmetrized, adjacency-sorted CSR.
pub fn tc(pool: &ThreadPool, csr: &Csr) -> u64 {
    let n = csr.num_vertices();
    parfor::parallel_reduce(
        pool,
        0..n,
        64,
        0u64,
        |u| {
            let u = u as u32;
            let mut count = 0u64;
            for &v in csr.neighbors(u) {
                if v <= u {
                    continue;
                }
                // merge-intersect N(u) and N(v) above v
                let (a, b) = (csr.neighbors(u), csr.neighbors(v));
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            if a[i] > v {
                                count += 1;
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            count
        },
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbig_datagen::Dataset;
    use graphbig_framework::PropertyGraph;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn ldbc(n: usize) -> (PropertyGraph, Csr) {
        let g = Dataset::Ldbc.generate_with_vertices(n);
        let csr = Csr::from_graph(&g);
        (g, csr)
    }

    #[test]
    fn parallel_bfs_matches_sequential_levels() {
        let (mut g, csr) = ldbc(400);
        let (levels, visited) = bfs(&pool(), &csr, 0);
        let root = g.vertex_ids()[0];
        let seq = crate::bfs::run(&mut g, root);
        assert_eq!(visited, seq.visited);
        for (dense, &l) in levels.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            let seq_level = crate::bfs::level_of(&g, id).map(|x| x as i64).unwrap_or(-1);
            assert_eq!(l, seq_level, "vertex {id}");
        }
    }

    #[test]
    fn parallel_dcentr_matches_sequential() {
        let (mut g, csr) = ldbc(300);
        let scores = dcentr(&pool(), &csr);
        crate::dcentr::run(&mut g);
        for (dense, &s) in scores.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            let want = crate::dcentr::centrality_of(&g, id).unwrap();
            assert!((s - want).abs() < 1e-12, "vertex {id}: {s} vs {want}");
        }
    }

    #[test]
    fn parallel_ccomp_matches_sequential_count() {
        let (mut g, csr) = ldbc(300);
        let sym = csr.symmetrize();
        let labels = ccomp(&pool(), &sym);
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let seq = crate::ccomp::run(&mut g);
        assert_eq!(distinct.len() as u64, seq.components);
    }

    #[test]
    fn parallel_tc_matches_sequential() {
        let (mut g, csr) = ldbc(200);
        let mut sym = csr.symmetrize();
        sym.sort_adjacency();
        let par = tc(&pool(), &sym);
        let seq = crate::tc::run(&mut g);
        assert_eq!(par, seq.triangles);
    }

    #[test]
    fn parallel_spath_matches_sequential_dijkstra() {
        let (mut g, csr) = ldbc(250);
        let dist = spath(&pool(), &csr, 0);
        let root = csr.id_of(0);
        crate::spath::run(&mut g, root);
        for (dense, &d) in dist.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            match crate::spath::distance_of(&g, id) {
                Some(want) => assert!((d as f64 - want).abs() < 1e-4, "vertex {id}"),
                None => assert!(d.is_infinite(), "vertex {id}"),
            }
        }
    }

    #[test]
    fn parallel_gcolor_matches_sequential_colors() {
        let g = Dataset::WatsonGene.generate_with_vertices(300);
        let csr = Csr::from_graph(&g);
        let colors = gcolor(&pool(), &csr);
        let mut g2 = Dataset::WatsonGene.generate_with_vertices(300);
        crate::gcolor::run(&mut g2);
        for (dense, &c) in colors.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            assert_eq!(Some(c), crate::gcolor::color_of(&g2, id), "vertex {id}");
        }
    }

    #[test]
    fn dir_opt_bfs_matches_sequential_levels() {
        let (mut g, csr) = ldbc(400);
        let bi = BiCsr::directed(csr.clone());
        let (levels, visited) = bfs_dir_opt(&pool(), &bi, 0);
        let root = g.vertex_ids()[0];
        let seq = crate::bfs::run(&mut g, root);
        assert_eq!(visited, seq.visited);
        for (dense, &l) in levels.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            let seq_level = crate::bfs::level_of(&g, id).map(|x| x as i64).unwrap_or(-1);
            assert_eq!(l, seq_level, "vertex {id}");
        }
    }

    #[test]
    fn dir_opt_bfs_matches_top_down_everywhere() {
        // Dense enough that the heuristic actually goes bottom-up.
        for n in [64usize, 300, 900] {
            let (_, csr) = ldbc(n);
            let bi = BiCsr::directed(csr.clone());
            let (td, tv) = bfs(&pool(), &csr, 0);
            let (opt, ov) = bfs_dir_opt(&pool(), &bi, 0);
            assert_eq!(td, opt, "n={n}");
            assert_eq!(tv, ov, "n={n}");
        }
    }

    #[test]
    fn dir_opt_bfs_on_symmetric_view() {
        let (_, csr) = ldbc(300);
        let sym = csr.symmetrize();
        let (td, _) = bfs(&pool(), &sym, 0);
        let bi = BiCsr::symmetric(sym);
        let (opt, _) = bfs_dir_opt(&pool(), &bi, 0);
        assert_eq!(td, opt);
    }

    #[test]
    fn bfs_state_reuse_matches_fresh_runs() {
        let (_, csr) = ldbc(200);
        let p = pool();
        let mut state = BfsState::new(csr.num_vertices());
        let v0 = bfs_with_state(&p, &csr, 0, &mut state);
        let first: Vec<i64> = state
            .levels
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        // Run from another source, then back: state must fully reset.
        bfs_with_state(&p, &csr, 5, &mut state);
        let v2 = bfs_with_state(&p, &csr, 0, &mut state);
        let again: Vec<i64> = state
            .levels
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        assert_eq!(v0, v2);
        assert_eq!(first, again);
        assert_eq!((first, v0), bfs(&p, &csr, 0));
    }

    #[test]
    fn repeated_queries_reuse_allocations() {
        let (_, csr) = ldbc(200);
        let p = pool();
        let mut state = BfsState::new(csr.num_vertices());
        bfs_with_state(&p, &csr, 0, &mut state);
        let levels_ptr = state.levels.as_ptr();
        for source in [3u32, 7, 0, 11] {
            bfs_with_state(&p, &csr, source, &mut state);
            assert_eq!(
                state.levels.as_ptr(),
                levels_ptr,
                "BfsState must reuse its level array across queries"
            );
        }
    }

    #[test]
    fn cancellable_kernels_bail_on_fired_token() {
        let (_, csr) = ldbc(200);
        let p = pool();
        let token = CancelToken::new();
        token.cancel();
        let mut state = BfsState::new(csr.num_vertices());
        assert_eq!(
            bfs_with_state_cancellable(&p, &csr, 0, &mut state, &token),
            Err(Cancelled)
        );
        let bi = BiCsr::directed(csr.clone());
        assert!(bfs_dir_opt_cancellable(&p, &bi, 0, &token).is_err());
        let sym = csr.symmetrize();
        assert_eq!(ccomp_cancellable(&p, &sym, &token), Err(Cancelled));
        assert_eq!(kcore_cancellable(&p, &sym, &token), Err(Cancelled));
        assert_eq!(spath_cancellable(&p, &csr, 0, &token), Err(Cancelled));
    }

    #[test]
    fn cancellable_kernels_match_plain_with_live_token() {
        let (_, csr) = ldbc(250);
        let p = pool();
        let live = CancelToken::new();
        let sym = csr.symmetrize();
        assert_eq!(ccomp_cancellable(&p, &sym, &live).unwrap(), ccomp(&p, &sym));
        assert_eq!(kcore_cancellable(&p, &sym, &live).unwrap(), kcore(&p, &sym));
        assert_eq!(
            spath_cancellable(&p, &csr, 0, &live).unwrap(),
            spath(&p, &csr, 0)
        );
        let bi = BiCsr::directed(csr.clone());
        let (levels, visited, _) = bfs_dir_opt_cancellable(&p, &bi, 0, &live).unwrap();
        let (want_levels, want_visited) = bfs(&p, &csr, 0);
        assert_eq!(levels, want_levels);
        assert_eq!(visited, want_visited);
    }

    #[test]
    fn parallel_kcore_matches_sequential() {
        let (mut g, csr) = ldbc(300);
        let sym = csr.symmetrize();
        let cores = kcore(&pool(), &sym);
        crate::kcore::run(&mut g);
        for (dense, &c) in cores.iter().enumerate() {
            let id = csr.id_of(dense as u32);
            let want = crate::kcore::core_of(&g, id).expect("vertex exists");
            assert_eq!(c, want, "vertex {id}");
        }
    }

    #[test]
    fn kcore_handles_disconnected_and_isolated() {
        // Two triangles joined by a bridge, plus an isolated vertex.
        let edges = [
            (0u32, 1u32, 1.0f32),
            (1, 2, 1.0),
            (2, 0, 1.0),
            (3, 4, 1.0),
            (4, 5, 1.0),
            (5, 3, 1.0),
            (0, 3, 1.0),
        ];
        let sym = Csr::from_edges(7, &edges).symmetrize();
        let cores = kcore(&pool(), &sym);
        assert_eq!(cores, vec![2, 2, 2, 2, 2, 2, 0]);
    }

    #[test]
    fn results_independent_of_thread_count() {
        let (_, csr) = ldbc(250);
        let one = ThreadPool::new(1);
        let eight = ThreadPool::new(8);
        assert_eq!(bfs(&one, &csr, 0).0, bfs(&eight, &csr, 0).0);
        let bi = BiCsr::directed(csr.clone());
        assert_eq!(bfs_dir_opt(&one, &bi, 0), bfs_dir_opt(&eight, &bi, 0));
        let sym = csr.symmetrize();
        assert_eq!(ccomp(&one, &sym), ccomp(&eight, &sym));
        assert_eq!(kcore(&one, &sym), kcore(&eight, &sym));
    }

    #[test]
    fn empty_csr_is_handled() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(bfs(&pool(), &csr, 0).1, 0);
        assert_eq!(bfs_dir_opt(&pool(), &BiCsr::directed(csr.clone()), 0).1, 0);
        assert!(dcentr(&pool(), &csr).is_empty());
        assert!(ccomp(&pool(), &csr).is_empty());
        assert!(kcore(&pool(), &csr).is_empty());
        assert_eq!(tc(&pool(), &csr), 0);
    }

    /// Replay the alpha/beta heuristic over per-depth frontier sizes and
    /// scout counts taken from a sequential (one-thread, level-synchronous)
    /// traversal — the schedule-free reference trajectory the parallel
    /// direction-optimizer must reproduce exactly.
    fn simulate_trajectory(bi: &BiCsr, seq_levels: &[i64]) -> DirOptReport {
        let n = bi.num_vertices();
        let out = bi.out();
        let max_depth = seq_levels.iter().copied().max().unwrap_or(-1);
        let mut report = DirOptReport::default();
        if max_depth < 0 {
            return report;
        }
        // size[d] / scout_at[d]: frontier occupancy and out-edge scout count
        // of the depth-d frontier; one trailing empty slot for lookahead.
        let depths = max_depth as usize + 2;
        let mut size = vec![0usize; depths];
        let mut scout_at = vec![0u64; depths];
        for (v, &l) in seq_levels.iter().enumerate() {
            if l >= 0 {
                size[l as usize] += 1;
                scout_at[l as usize] += out.degree(v as u32) as u64;
            }
        }
        let mut edges_to_check = bi.num_edges() as u64;
        let mut d = 0usize;
        while size[d] > 0 {
            let scout = scout_at[d];
            if scout > edges_to_check / ALPHA {
                report.switches_to_bottom_up += 1;
                loop {
                    let before = size[d];
                    report.levels.push(LevelRecord {
                        depth: d as i64,
                        dir: LevelDir::BottomUp,
                        frontier_len: before,
                        scout,
                        edges_to_check,
                    });
                    let awake = size[d + 1];
                    d += 1;
                    if awake == 0 || (awake < before && awake * BETA < n) {
                        break;
                    }
                }
                if size[d] > 0 {
                    report.switches_to_top_down += 1;
                }
            } else {
                report.levels.push(LevelRecord {
                    depth: d as i64,
                    dir: LevelDir::TopDown,
                    frontier_len: size[d],
                    scout,
                    edges_to_check,
                });
                edges_to_check = edges_to_check.saturating_sub(scout);
                d += 1;
            }
        }
        report
    }

    #[test]
    fn dir_opt_report_trivial_inputs_are_empty() {
        let empty = BiCsr::directed(Csr::from_edges(0, &[]));
        let (_, visited, report) = bfs_dir_opt_reported(&pool(), &empty, 0);
        assert_eq!(visited, 0);
        assert_eq!(report, DirOptReport::default());
        // Out-of-range source: no traversal, no trajectory.
        let (_, csr) = ldbc(50);
        let bi = BiCsr::directed(csr);
        let (_, visited, report) = bfs_dir_opt_reported(&pool(), &bi, 9999);
        assert_eq!(visited, 0);
        assert!(report.levels.is_empty());
    }

    #[test]
    fn dir_opt_report_single_vertex_graph() {
        // One vertex, no edges: exactly one top-down level, no switches.
        let bi = BiCsr::directed(Csr::from_edges(1, &[]));
        let (levels, visited, report) = bfs_dir_opt_reported(&pool(), &bi, 0);
        assert_eq!(levels, vec![0]);
        assert_eq!(visited, 1);
        assert_eq!(report.levels.len(), 1);
        assert_eq!(report.levels[0].dir, LevelDir::TopDown);
        assert_eq!(report.levels[0].frontier_len, 1);
        assert_eq!(report.levels[0].scout, 0);
        assert_eq!(report.switches_to_bottom_up, 0);
        assert_eq!(report.switches_to_top_down, 0);
    }

    #[test]
    fn dir_opt_report_source_without_out_edges() {
        // Edges exist elsewhere, but the source produces an empty frontier
        // at level 0: the run records that single level and stops.
        let edges = [(1u32, 2u32, 1.0f32), (2, 3, 1.0), (3, 1, 1.0)];
        let bi = BiCsr::directed(Csr::from_edges(4, &edges));
        let (levels, visited, report) = bfs_dir_opt_reported(&pool(), &bi, 0);
        assert_eq!(visited, 1);
        assert_eq!(levels, vec![0, -1, -1, -1]);
        assert_eq!(report.levels.len(), 1);
        assert_eq!(report.levels[0].dir, LevelDir::TopDown);
        assert_eq!(report.switches_to_bottom_up, 0);
        assert_eq!(report.switches_to_top_down, 0);
    }

    #[test]
    fn dir_opt_trajectory_matches_reference_simulation() {
        // The executed trajectory (directions, occupancy, trigger values,
        // switch counters) must equal the alpha/beta rules replayed over
        // sequential per-level data — including the dense->sparse switch
        // back to top-down near the final levels.
        let one = ThreadPool::new(1);
        let mut saw_bottom_up = false;
        let mut saw_switch_back = false;
        for n in [64usize, 300, 900] {
            let (_, csr) = ldbc(n);
            let sym = csr.symmetrize();
            for bi in [BiCsr::directed(csr), BiCsr::symmetric(sym)] {
                let (seq_levels, _) = bfs(&one, bi.out(), 0);
                let expected = simulate_trajectory(&bi, &seq_levels);
                let (_, _, report) = bfs_dir_opt_reported(&pool(), &bi, 0);
                assert_eq!(report, expected, "n={n}");
                saw_bottom_up |= report.switches_to_bottom_up > 0;
                saw_switch_back |= report.switches_to_top_down > 0;
                // A switch back means a top-down level follows a bottom-up
                // one in execution order.
                if report.switches_to_top_down > 0 {
                    let resumed = report
                        .levels
                        .windows(2)
                        .any(|w| w[0].dir == LevelDir::BottomUp && w[1].dir == LevelDir::TopDown);
                    assert!(resumed, "n={n}: counted a switch back but never resumed");
                }
            }
        }
        assert!(saw_bottom_up, "no graph ever triggered bottom-up");
        assert!(saw_switch_back, "no graph ever switched back to top-down");
    }

    #[test]
    fn dir_opt_report_is_thread_count_independent() {
        let (_, csr) = ldbc(300);
        let bi = BiCsr::directed(csr);
        let one = ThreadPool::new(1);
        let eight = ThreadPool::new(8);
        let (_, _, a) = bfs_dir_opt_reported(&one, &bi, 0);
        let (_, _, b) = bfs_dir_opt_reported(&eight, &bi, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn dir_opt_publish_exports_bfs_schema() {
        let (_, csr) = ldbc(300);
        let bi = BiCsr::directed(csr);
        let (_, _, report) = bfs_dir_opt_reported(&pool(), &bi, 0);
        let reg = graphbig_telemetry::Registry::new();
        report.publish(&reg);
        let snap = reg.snapshot();
        use graphbig_telemetry::MetricValue;
        assert_eq!(
            snap["bfs.levels"],
            MetricValue::Counter(report.levels.len() as u64)
        );
        assert_eq!(
            snap["bfs.switches.to_bottom_up"],
            MetricValue::Counter(report.switches_to_bottom_up)
        );
        assert_eq!(
            snap["bfs.switches.to_top_down"],
            MetricValue::Counter(report.switches_to_top_down)
        );
        match &snap["bfs.frontier.occupancy"] {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, report.levels.len() as u64);
                let occupancy_sum: u64 = report.levels.iter().map(|l| l.frontier_len as u64).sum();
                assert_eq!(h.sum, occupancy_sum);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
