//! Multi-source BFS: up to 64 traversals share one pass over the graph.
//!
//! The MS-BFS trick (Then et al., "The More the Merrier") packs one bit
//! per concurrent source into a `u64` word per vertex. One level-
//! synchronous sweep advances *all* lanes at once: a frontier vertex
//! carries the mask of lanes that reached it last level, and relaxing an
//! edge ORs that mask into the neighbor's `seen` word — the 64-lane
//! generalization of the dense-bitmap frontier the single-source kernel
//! already uses. Shared edge scans are what the serving engine's batcher
//! amortizes: 64 coalesced BFS queries traverse each adjacency list once
//! instead of 64 times.
//!
//! Per-lane output is bit-identical to [`crate::parallel::bfs`] /
//! [`crate::parallel::bfs_dir_opt`] for the same source (BFS levels are
//! shortest hop distances, a pure function of graph and source, and every
//! discovery writes the schedule-independent value `level + 1`), so the
//! engine can fan batched results back to tickets whose digests match the
//! sequential per-source oracle exactly.
//!
//! Lanes are independent failure domains: a lane whose frontier empties
//! retires early, and a lane whose [`CancelToken`] fires is masked out of
//! the propagation at the next level boundary — in both cases without
//! perturbing any other lane's levels.

use std::sync::atomic::{AtomicI32, AtomicU16, AtomicU64, Ordering};

use graphbig_framework::csr::{BiCsr, Csr};
use graphbig_runtime::frontier::ChunkedSink;
use graphbig_runtime::{parfor, CancelToken, Cancelled, ThreadPool};

use crate::parallel;

/// Maximum sources one shared pass can carry (bits in the per-vertex word).
pub const MSBFS_LANES: usize = 64;

/// Target edge weight per scheduling chunk (same constant as the
/// single-source kernels in [`crate::parallel`]).
const CHUNK_WEIGHT: u64 = 2048;

/// Switch to the bottom-up step when the frontier's out-edges exceed
/// 1/ALPHA of all edges. Deliberately *more conservative* than the
/// single-source kernel's GAP-tuned 15: the bottom-up early break stops a
/// vertex's in-edge scan once every lane still missing is covered, and
/// with a 64-wide `missing` mask that almost never fires in early levels
/// — the scan degrades to the full in-edge sweep. Measured on LDBC-64k,
/// pulling at the single-source threshold makes level 1 ~4x slower than
/// pushing it; by level 2 the union frontier saturates the graph and the
/// pull phase wins regardless, which is where the batch speedup over 64
/// separate direction-optimized traversals comes from.
const ALPHA: u64 = 4;

/// Below this many lanes the direction-optimized shared pass falls back to
/// per-source [`crate::parallel::bfs_dir_opt_cancellable`] runs: the pull
/// step costs roughly one full in-edge sweep per level *regardless* of
/// lane count, so a thin batch pays nearly the 64-lane price to answer a
/// handful of requests. Measured on LDBC-16k the shared pass overtakes
/// per-source runs somewhere around a dozen lanes; 16 keeps a margin.
const MIN_SHARED_LANES: usize = 16;

/// One shared top-down expansion over all live lanes. For each frontier
/// vertex `u` with visit mask `m`, each out-neighbor `v` adopts the lanes
/// in `m` it has not seen (`fetch_or` arbitration makes the newly-set bits
/// exclusive to one thread, which then owns the level writes for those
/// `(lane, v)` cells). Returns the OR of all newly-discovered lane masks —
/// a zero bit means that lane's next frontier is empty and it retires.
#[allow(clippy::too_many_arguments)]
fn ms_step<C: LevelCell>(
    pool: &ThreadPool,
    csr: &Csr,
    live: u64,
    seen: &[AtomicU64],
    visit: &[AtomicU64],
    visit_next: &[AtomicU64],
    levels: &[C],
    lanes: usize,
    frontier: &[u32],
    level: i64,
    sink: &ChunkedSink,
    next: &mut Vec<u32>,
) -> u64 {
    // Discoveries at depth `level + 1` store `depth + 1` (see `drive`).
    let mark = level + 2;
    let expand = |u: u32, buf: &mut Vec<u32>| -> u64 {
        let mask = visit[u as usize].load(Ordering::Relaxed) & live;
        if mask == 0 {
            return 0;
        }
        let mut produced = 0u64;
        for &v in csr.neighbors(u) {
            let vi = v as usize;
            let cand = mask & !seen[vi].load(Ordering::Relaxed);
            if cand == 0 {
                continue;
            }
            let newly = cand & !seen[vi].fetch_or(cand, Ordering::Relaxed);
            if newly == 0 {
                continue;
            }
            let mut bits = newly;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                levels[vi * lanes + l].store_mark(mark);
                bits &= bits - 1;
            }
            produced |= newly;
            if visit_next[vi].fetch_or(newly, Ordering::Relaxed) == 0 {
                buf.push(v);
            }
        }
        produced
    };
    // Serial fast path mirrors `top_down_step`: one worker or one chunk
    // skips the sink bookkeeping.
    let serial = pool.threads() == 1;
    let chunks = if serial {
        Vec::new()
    } else {
        parfor::weighted_chunks(frontier.len(), CHUNK_WEIGHT, |i| {
            csr.degree(frontier[i]) as u64 + 1
        })
    };
    if serial || chunks.len() == 1 {
        next.clear();
        let mut produced = 0u64;
        for &u in frontier {
            produced |= expand(u, next);
        }
        return produced;
    }
    let produced = AtomicU64::new(0);
    parfor::parallel_for_chunk_list(pool, &chunks, |worker, chunk, range| {
        let mut buf = sink.take_buffer(worker);
        let mut local = 0u64;
        for i in range {
            local |= expand(frontier[i], &mut buf);
        }
        produced.fetch_or(local, Ordering::Relaxed);
        sink.commit(worker, chunk, buf);
    });
    next.clear();
    sink.drain_into(next);
    produced.into_inner()
}

/// One shared bottom-up expansion: every vertex still missing live lanes
/// scans its *in*-neighbors and adopts their frontier masks, stopping as
/// soon as its missing set is covered. Each vertex is owned by exactly one
/// chunk, so discoveries need no arbitration — the owner writes the level
/// cells and the `visit_next` word directly. Returns the OR of all
/// newly-discovered lane masks, exactly like [`ms_step`]; the caller
/// rebuilds the sparse frontier from the non-zero `visit_next` words.
#[allow(clippy::too_many_arguments)]
fn ms_pull_step<C: LevelCell>(
    pool: &ThreadPool,
    inc: &Csr,
    live: u64,
    seen: &[AtomicU64],
    visit: &[AtomicU64],
    visit_next: &[AtomicU64],
    levels: &[C],
    n: usize,
    lanes: usize,
    level: i64,
) -> u64 {
    // Discoveries at depth `level + 1` store `depth + 1` (see `drive`).
    let mark = level + 2;
    let produced = AtomicU64::new(0);
    parfor::parallel_for(pool, 0..n, 4096, |vi| {
        let missing = live & !seen[vi].load(Ordering::Relaxed);
        if missing == 0 {
            return;
        }
        let mut gathered = 0u64;
        for &u in inc.neighbors(vi as u32) {
            gathered |= visit[u as usize].load(Ordering::Relaxed);
            if gathered & missing == missing {
                break; // every missing lane found a parent: stop scanning
            }
        }
        let newly = gathered & missing;
        if newly == 0 {
            return;
        }
        seen[vi].fetch_or(newly, Ordering::Relaxed);
        let mut bits = newly;
        while bits != 0 {
            let l = bits.trailing_zeros() as usize;
            levels[vi * lanes + l].store_mark(mark);
            bits &= bits - 1;
        }
        visit_next[vi].store(newly, Ordering::Relaxed);
        produced.fetch_or(newly, Ordering::Relaxed);
    });
    produced.into_inner()
}

/// Batched BFS from up to [`MSBFS_LANES`] sources in one shared pass, with
/// per-lane cooperative cancellation.
///
/// Returns one result per source, index-aligned: `Ok(levels)` with `-1`
/// for unreached vertices, `Ok(Vec::new())` for an out-of-range source
/// (matching [`crate::parallel::bfs`]), or `Err(Cancelled)` when that
/// lane's token fired. Tokens are polled once per level; a fired lane is
/// masked out of further propagation while every other lane continues
/// undisturbed. Duplicate sources ride independent lanes and produce
/// identical outputs.
///
/// # Panics
/// If `sources.len() > MSBFS_LANES` or `cancels.len() != sources.len()`.
pub fn msbfs_cancellable(
    pool: &ThreadPool,
    csr: &Csr,
    sources: &[u32],
    cancels: &[&CancelToken],
) -> Vec<Result<Vec<i64>, Cancelled>> {
    drive(pool, csr, None, sources, cancels)
}

/// Direction-optimized [`msbfs_cancellable`]: level by level the pass
/// picks the top-down step or — once the union frontier's out-edges pass
/// the ALPHA threshold — the bottom-up step over `bi`'s in-edges. Levels
/// are shortest hop distances either way, so per-lane output is still
/// bit-identical to the single-source oracle; the pull phase only changes
/// how fast the pass gets there. This is the variant the engine's batcher
/// runs, because its sequential comparator is itself direction-optimized.
pub fn msbfs_dir_opt_cancellable(
    pool: &ThreadPool,
    bi: &BiCsr,
    sources: &[u32],
    cancels: &[&CancelToken],
) -> Vec<Result<Vec<i64>, Cancelled>> {
    assert_eq!(sources.len(), cancels.len(), "one token per lane");
    // The bottom-up step's cost is graph-sized, not frontier-sized: it
    // scans every unreached vertex's in-edges no matter how few lanes
    // ride the pass. A near-empty batch would pay a full pull pass to
    // serve two requests, which loses to just running them one by one
    // with the single-source direction-optimized kernel. Below the
    // crossover, do exactly that — output is bit-identical either way.
    if sources.len() < MIN_SHARED_LANES {
        return sources
            .iter()
            .zip(cancels)
            .map(|(&s, cancel)| {
                parallel::bfs_dir_opt_cancellable(pool, bi, s, cancel).map(|(levels, _, _)| levels)
            })
            .collect();
    }
    drive(pool, bi.out(), Some(bi.inc()), sources, cancels)
}

fn drive(
    pool: &ThreadPool,
    csr: &Csr,
    inc: Option<&Csr>,
    sources: &[u32],
    cancels: &[&CancelToken],
) -> Vec<Result<Vec<i64>, Cancelled>> {
    let lanes = sources.len();
    assert!(lanes <= MSBFS_LANES, "at most {MSBFS_LANES} lanes per pass");
    assert_eq!(lanes, cancels.len(), "one token per lane");
    let n = csr.num_vertices();
    let mut active = 0u64;
    for (l, &s) in sources.iter().enumerate() {
        if (s as usize) < n {
            active |= 1u64 << l;
        }
    }
    // Working arrays come from a per-thread scratch reused across passes:
    // a 64-lane pass on a large graph touches tens of MB of level and mask
    // state, and allocating it fresh each time pays a page fault per 4 KiB
    // on first touch — a fixed multi-ms tax per batch that the kernel
    // proper never sees. Re-zeroing warm pages with plain stores is far
    // cheaper. The executor thread that serves batch after batch is
    // exactly the caller this wins for.
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        // Optimistic narrow pass first: 16-bit level cells halve the
        // traffic through the pass's dominant array. Only a graph whose
        // BFS actually runs past ~65k levels overflows them; the pass
        // detects that at the level boundary and reruns wide from scratch
        // — a 2x cost paid only on path-shaped graphs no serving mix
        // resembles.
        if let Some(results) =
            drive_in::<AtomicU16>(scratch, pool, csr, inc, sources, cancels, lanes, n, active)
        {
            return results;
        }
        drive_in::<AtomicI32>(scratch, pool, csr, inc, sources, cancels, lanes, n, active)
            .expect("i32 marks outlast any BFS depth")
    })
}

/// Storage cell for the per-`(vertex, lane)` level matrix. The pass writes
/// each cell at most once (`depth + 1`, 0 = unreached) under `fetch_or`
/// arbitration, then the collect transpose reads every cell back with
/// exclusive access. Two widths implement it: `AtomicU16` is the working
/// default (the matrix is the pass's dominant memory traffic, and halving
/// it is worth ~15% of the whole pass at 64 lanes), `AtomicI32` is the
/// overflow fallback for BFS depths past [`LevelCell::MAX_MARK`].
trait LevelCell: Default + Send + Sync {
    /// Largest `depth + 1` mark the cell can represent.
    const MAX_MARK: i64;
    /// Relaxed store of a mark; the caller guarantees `mark <= MAX_MARK`.
    fn store_mark(&self, mark: i64);
    /// Plain exclusive read of the raw mark, zeroing the cell behind the
    /// read (the line is already in cache, and the zero is what lets the
    /// next pass skip its dedicated sweep — see [`Scratch`]).
    fn take(&mut self) -> i64;
    /// Plain zeroing store.
    fn zero(&mut self);
    /// This width's level buffer and clean flag out of the scratch, along
    /// with the shared mask buffers (disjoint field borrows).
    fn parts(scratch: &mut Scratch) -> ScratchParts<'_, Self>
    where
        Self: Sized;
}

impl LevelCell for AtomicU16 {
    const MAX_MARK: i64 = u16::MAX as i64;
    fn store_mark(&self, mark: i64) {
        self.store(mark as u16, Ordering::Relaxed);
    }
    fn take(&mut self) -> i64 {
        let v = i64::from(*self.get_mut());
        *self.get_mut() = 0;
        v
    }
    fn zero(&mut self) {
        *self.get_mut() = 0;
    }
    fn parts(scratch: &mut Scratch) -> ScratchParts<'_, Self> {
        ScratchParts {
            levels: &mut scratch.levels16,
            clean: &mut scratch.clean16,
            seen: &mut scratch.seen,
            visit: &mut scratch.visit,
            visit_next: &mut scratch.visit_next,
        }
    }
}

impl LevelCell for AtomicI32 {
    const MAX_MARK: i64 = i32::MAX as i64;
    fn store_mark(&self, mark: i64) {
        self.store(mark as i32, Ordering::Relaxed);
    }
    fn take(&mut self) -> i64 {
        let v = i64::from(*self.get_mut());
        *self.get_mut() = 0;
        v
    }
    fn zero(&mut self) {
        *self.get_mut() = 0;
    }
    fn parts(scratch: &mut Scratch) -> ScratchParts<'_, Self> {
        ScratchParts {
            levels: &mut scratch.levels32,
            clean: &mut scratch.clean32,
            seen: &mut scratch.seen,
            visit: &mut scratch.visit,
            visit_next: &mut scratch.visit_next,
        }
    }
}

/// Per-thread reusable working set for [`drive`] (see the comment at its
/// use). Buffers only ever grow, to the largest `(lanes * n, n)` a thread
/// has driven. The two level buffers back the two [`LevelCell`] widths; in
/// practice only the u16 one ever grows.
#[derive(Default)]
struct Scratch {
    levels16: Vec<AtomicU16>,
    levels32: Vec<AtomicI32>,
    seen: Vec<AtomicU64>,
    visit: Vec<AtomicU64>,
    visit_next: Vec<AtomicU64>,
    /// True iff every cell of the matching level buffer is zero. The
    /// collect transpose at the end of a pass restores the zeros as it
    /// reads each cell out, so the next pass can skip the separate
    /// multi-MB zeroing sweep. A pass that dies mid-flight (including the
    /// u16 overflow rerun) leaves the flag false and the next reset pays
    /// the full sweep.
    clean16: bool,
    clean32: bool,
}

/// One width's view of the [`Scratch`]: the level buffer for the chosen
/// [`LevelCell`] plus the width-independent mask buffers.
struct ScratchParts<'a, C> {
    levels: &'a mut Vec<C>,
    clean: &'a mut bool,
    seen: &'a mut Vec<AtomicU64>,
    visit: &'a mut Vec<AtomicU64>,
    visit_next: &'a mut Vec<AtomicU64>,
}

impl<C: LevelCell> ScratchParts<'_, C> {
    fn reset(&mut self, level_len: usize, n: usize) {
        // `get_mut`-style plain zeroing stores the compiler can vectorize;
        // exclusive access makes that sound.
        if self.levels.len() < level_len {
            self.levels.resize_with(level_len, C::default);
        }
        if !*self.clean {
            self.levels.iter_mut().for_each(C::zero);
        }
        *self.clean = false;
        for buf in [&mut *self.seen, &mut *self.visit, &mut *self.visit_next] {
            if buf.len() < n {
                buf.resize_with(n, || AtomicU64::new(0));
            }
            buf[..n].iter_mut().for_each(|a| *a.get_mut() = 0);
        }
    }
}

thread_local! {
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
}

#[allow(clippy::too_many_arguments)]
fn drive_in<C: LevelCell>(
    scratch: &mut Scratch,
    pool: &ThreadPool,
    csr: &Csr,
    inc: Option<&Csr>,
    sources: &[u32],
    cancels: &[&CancelToken],
    lanes: usize,
    n: usize,
    mut active: u64,
) -> Option<Vec<Result<Vec<i64>, Cancelled>>> {
    let mut cancelled = 0u64;
    let mut parts = C::parts(scratch);
    parts.reset(lanes * n, n);
    // Levels are stored vertex-major (`levels[v * lanes + l]`) as
    // `depth + 1` (0 = unreached): a discovery's per-bit writes land in
    // the same cache lines as its vertex, the zero init doubles as the
    // "unreached" fill, and the cells are narrow — on a 64-lane pass the
    // `lanes * n` level traffic, not the shared edge scan, is what
    // dominates the pass cost.
    {
        let levels = &parts.levels[..lanes * n];
        let seen = &parts.seen[..n];
        let mut visit = &parts.visit[..n];
        let mut visit_next = &parts.visit_next[..n];
        let mut frontier: Vec<u32> = Vec::new();
        for (l, &s) in sources.iter().enumerate() {
            if active & (1u64 << l) == 0 {
                continue;
            }
            let vi = s as usize;
            levels[vi * lanes + l].store_mark(1);
            seen[vi].fetch_or(1u64 << l, Ordering::Relaxed);
            if visit[vi].fetch_or(1u64 << l, Ordering::Relaxed) == 0 {
                frontier.push(s);
            }
        }
        let sink = ChunkedSink::new(pool.threads());
        let mut next: Vec<u32> = Vec::new();
        let mut level = 0i64;
        while !frontier.is_empty() && active != 0 {
            // The next discoveries would store `level + 2`; if that no longer
            // fits the cell, abandon the pass (masks stay dirty, the clean
            // flag stays false) and let the caller rerun with a wider cell.
            if level + 2 > C::MAX_MARK {
                return None;
            }
            // Per-lane cancellation poll at the level boundary: retire fired
            // lanes here, exactly where the single-source kernel polls.
            for (l, cancel) in cancels.iter().enumerate() {
                let bit = 1u64 << l;
                if active & bit != 0 && cancel.check().is_err() {
                    cancelled |= bit;
                    active &= !bit;
                }
            }
            if active == 0 {
                break;
            }
            let _lvl = graphbig_telemetry::span!(
                "msbfs.level",
                depth = level,
                frontier = frontier.len(),
                lanes = active.count_ones() as usize
            );
            // Direction choice, per level: pull once the union frontier's
            // out-edges pass the ALPHA fraction of all edges.
            let pull = inc.filter(|_| {
                let scout: u64 = frontier.iter().map(|&u| csr.degree(u) as u64).sum();
                scout > csr.num_edges() as u64 / ALPHA
            });
            let produced = match pull {
                Some(inc) => ms_pull_step(
                    pool, inc, active, seen, visit, visit_next, levels, n, lanes, level,
                ),
                None => ms_step(
                    pool, csr, active, seen, visit, visit_next, levels, lanes, &frontier, level,
                    &sink, &mut next,
                ),
            };
            // Lanes with no discoveries this level have drained: early exit.
            active &= produced;
            let old = &frontier;
            parfor::parallel_for(pool, 0..old.len(), 4096, |i| {
                visit[old[i] as usize].store(0, Ordering::Relaxed);
            });
            if pull.is_some() {
                // The pull step discovers by owner, not by frontier scan:
                // rebuild the sparse frontier from the non-zero visit words.
                next.clear();
                for (vi, w) in visit_next.iter().enumerate() {
                    if w.load(Ordering::Relaxed) != 0 {
                        next.push(vi as u32);
                    }
                }
            }
            std::mem::swap(&mut visit, &mut visit_next);
            std::mem::swap(&mut frontier, &mut next);
            level += 1;
        }
    } // shared borrows of the scratch end here; collect takes it exclusively
      // Blocked transpose out of the vertex-major array: a block of vertex
      // rows stays cache-resident while every lane's slice of it is copied
      // out, so each level cell is read exactly once per pass. At 64 lanes a
      // 64-vertex block is at most 16KB of level rows — inside L1, where a
      // larger block would re-fetch every row from L2 for each lane's
      // strided scan. The pass is over, so `take` turns the cell reads into
      // plain loads, and each cell is zeroed behind the read — that store
      // hits the same cache line and replaces the next pass's dedicated
      // zeroing sweep (the clean flag in [`Scratch`]).
    const BLOCK: usize = 64;
    let levels = &mut parts.levels[..lanes * n];
    let mut outs: Vec<Vec<i64>> = (0..lanes).map(|_| Vec::with_capacity(n)).collect();
    for b in (0..n).step_by(BLOCK) {
        let end = (b + BLOCK).min(n);
        for (l, out) in outs.iter_mut().enumerate() {
            let wanted = cancelled & (1u64 << l) == 0 && (sources[l] as usize) < n;
            let base = out.as_mut_ptr();
            for v in b..end {
                let x = levels[v * lanes + l].take();
                if wanted {
                    // SAFETY: `base` points at `n` reserved (uninitialized)
                    // elements and each `v < n` is written exactly once
                    // across the blocked sweep; `set_len(n)` below only
                    // runs for lanes where every index was filled. The
                    // streaming store bypasses the cache on x86-64: these
                    // 8 MB-per-lane output rows are written once and read
                    // next by another thread entirely, so pulling each
                    // line in just to overwrite it (the read-for-ownership
                    // a normal store pays) is pure wasted bandwidth — and
                    // this loop is measurably bandwidth-bound.
                    unsafe {
                        let dst = base.add(v);
                        #[cfg(target_arch = "x86_64")]
                        std::arch::x86_64::_mm_stream_si64(dst, x - 1);
                        #[cfg(not(target_arch = "x86_64"))]
                        dst.write(x - 1);
                    }
                }
            }
        }
    }
    for (l, out) in outs.iter_mut().enumerate() {
        if cancelled & (1u64 << l) == 0 && (sources[l] as usize) < n {
            // SAFETY: the sweep above wrote all `n` elements of this lane.
            unsafe { out.set_len(n) };
        }
    }
    // Streaming stores are weakly ordered; fence before the rows can be
    // handed to whichever thread resolves the tickets.
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_sfence` has no memory-safety preconditions.
    unsafe {
        std::arch::x86_64::_mm_sfence()
    };
    *parts.clean = true;
    Some(
        sources
            .iter()
            .enumerate()
            .zip(outs)
            .map(|((l, &s), out)| {
                if cancelled & (1u64 << l) != 0 {
                    Err(Cancelled)
                } else if (s as usize) >= n {
                    Ok(Vec::new())
                } else {
                    Ok(out)
                }
            })
            .collect(),
    )
}

/// Batched BFS over any number of sources: chunks into passes of
/// [`MSBFS_LANES`] lanes, no cancellation. Returns per-source levels,
/// index-aligned with `sources`.
pub fn msbfs(pool: &ThreadPool, csr: &Csr, sources: &[u32]) -> Vec<Vec<i64>> {
    let never = CancelToken::never();
    sources
        .chunks(MSBFS_LANES)
        .flat_map(|chunk| {
            let cancels: Vec<&CancelToken> = chunk.iter().map(|_| &never).collect();
            msbfs_cancellable(pool, csr, chunk, &cancels)
                .into_iter()
                .map(|r| r.expect("never token cannot cancel"))
        })
        .collect()
}

/// Direction-optimized [`msbfs`]: any number of sources, chunked into
/// 64-lane passes over a [`BiCsr`], no cancellation.
pub fn msbfs_dir_opt(pool: &ThreadPool, bi: &BiCsr, sources: &[u32]) -> Vec<Vec<i64>> {
    let never = CancelToken::never();
    sources
        .chunks(MSBFS_LANES)
        .flat_map(|chunk| {
            let cancels: Vec<&CancelToken> = chunk.iter().map(|_| &never).collect();
            msbfs_dir_opt_cancellable(pool, bi, chunk, &cancels)
                .into_iter()
                .map(|r| r.expect("never token cannot cancel"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel;
    use graphbig_datagen::Dataset;

    fn csr(n: usize) -> Csr {
        Csr::from_graph(&Dataset::Ldbc.generate_with_vertices(n))
    }

    #[test]
    fn every_lane_matches_single_source_bfs() {
        let g = csr(300);
        let pool = ThreadPool::new(4);
        // Duplicates and an unreachable-ish high vertex included.
        let sources: Vec<u32> = (0..70u32).map(|i| (i * 13) % 300).collect();
        let batched = msbfs(&pool, &g, &sources);
        assert_eq!(batched.len(), sources.len());
        for (l, &s) in sources.iter().enumerate() {
            let (solo, _) = parallel::bfs(&pool, &g, s);
            assert_eq!(batched[l], solo, "lane {l} (source {s}) diverged");
        }
    }

    #[test]
    fn duplicate_sources_produce_identical_lanes() {
        let g = csr(120);
        let pool = ThreadPool::new(2);
        let out = msbfs(&pool, &g, &[7, 7, 7]);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[1], out[2]);
    }

    #[test]
    fn out_of_range_sources_return_empty_like_single_source() {
        let g = csr(50);
        let pool = ThreadPool::new(2);
        let out = msbfs(&pool, &g, &[0, 999, 3]);
        assert_eq!(out[0], parallel::bfs(&pool, &g, 0).0);
        assert!(out[1].is_empty(), "matches parallel::bfs's contract");
        assert_eq!(out[2], parallel::bfs(&pool, &g, 3).0);
    }

    #[test]
    fn cancelling_one_lane_leaves_the_others_bit_identical() {
        let g = csr(400);
        let pool = ThreadPool::new(2);
        let live = CancelToken::new();
        let dead = CancelToken::new();
        dead.cancel();
        let out = msbfs_cancellable(&pool, &g, &[1, 2, 3], &[&live, &dead, &live]);
        assert!(out[1].is_err(), "fired lane retires with Cancelled");
        assert_eq!(out[0].as_ref().unwrap(), &parallel::bfs(&pool, &g, 1).0);
        assert_eq!(out[2].as_ref().unwrap(), &parallel::bfs(&pool, &g, 3).0);
    }

    #[test]
    fn lane_results_are_thread_count_independent() {
        let g = csr(250);
        let sources: Vec<u32> = (0..64u32).map(|i| i * 3 % 250).collect();
        let one = msbfs(&ThreadPool::new(1), &g, &sources);
        let four = msbfs(&ThreadPool::new(4), &g, &sources);
        assert_eq!(one, four);
    }

    #[test]
    fn direction_optimized_lanes_match_the_push_only_pass_exactly() {
        let g = csr(400);
        let bi = BiCsr::directed(g.clone());
        let pool = ThreadPool::new(4);
        // 64 dense lanes force the ALPHA switch into the pull phase.
        let sources: Vec<u32> = (0..64u32).map(|i| (i * 7) % 400).collect();
        let push = msbfs(&pool, &g, &sources);
        let pull = msbfs_dir_opt(&pool, &bi, &sources);
        assert_eq!(push, pull, "pull phase changed a lane's levels");
        for (l, &s) in sources.iter().enumerate() {
            let (solo, _) = parallel::bfs_dir_opt(&pool, &bi, s);
            assert_eq!(pull[l], solo, "lane {l} (source {s}) diverged");
        }
    }

    #[test]
    fn depth_past_u16_marks_reruns_wide_and_stays_exact() {
        // A directed chain deeper than a u16 mark can hold: the optimistic
        // narrow pass must abandon at the overflow boundary and the wide
        // rerun must still produce exact levels end to end.
        let n = (u16::MAX as usize) + 70;
        let edges: Vec<(u32, u32, f32)> = (0..n as u32 - 1).map(|i| (i, i + 1, 1.0)).collect();
        let g = Csr::from_edges(n, &edges);
        let pool = ThreadPool::new(1);
        let out = msbfs(&pool, &g, &[0, 40]);
        for (lane, s) in [(0usize, 0i64), (1, 40)] {
            let expect: Vec<i64> = (0..n as i64)
                .map(|v| if v < s { -1 } else { v - s })
                .collect();
            assert_eq!(out[lane], expect, "lane {lane} diverged after rerun");
        }
    }

    #[test]
    fn direction_optimized_pass_cancels_and_skips_like_the_push_pass() {
        let g = csr(300);
        let bi = BiCsr::directed(g.clone());
        let pool = ThreadPool::new(2);
        let live = CancelToken::new();
        let dead = CancelToken::new();
        dead.cancel();
        let out = msbfs_dir_opt_cancellable(&pool, &bi, &[5, 900, 8], &[&live, &live, &dead]);
        assert!(out[1].as_ref().unwrap().is_empty(), "out-of-range lane");
        assert!(out[2].is_err(), "fired lane retires with Cancelled");
        assert_eq!(out[0].as_ref().unwrap(), &parallel::bfs(&pool, &g, 5).0);
    }
}
