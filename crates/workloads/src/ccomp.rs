//! Connected components — "implemented with BFS traversals on the CPU side"
//! (Section 4.2). Components are *weak*: edges are followed in both
//! directions (out-neighbors and parents), so a directed dataset yields its
//! undirected component structure.
//!
//! One of the paper's most memory-hostile workloads (L3 MPKI 101.3,
//! DTLB penalty 21.1%): it touches every vertex structure exactly once with
//! no reuse.

use std::collections::VecDeque;

use graphbig_framework::property::{keys, Property};
use graphbig_framework::trace::{addr_of, NullTracer, Tracer};
use graphbig_framework::{PropertyGraph, VertexId};

/// Outcome of a components run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CCompResult {
    /// Number of weakly connected components.
    pub components: u64,
    /// Size of the largest component.
    pub largest: u64,
}

/// Untraced convenience wrapper.
pub fn run(g: &mut PropertyGraph) -> CCompResult {
    run_t(g, &mut NullTracer)
}

/// Traced BFS labeling; the component id of each vertex lands in the
/// `COMPONENT` property.
pub fn run_t<T: Tracer>(g: &mut PropertyGraph, t: &mut T) -> CCompResult {
    let ids: Vec<VertexId> = g.vertex_ids().to_vec();
    let mut components = 0u64;
    let mut largest = 0u64;
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut scratch: Vec<VertexId> = Vec::new();

    for &root in &ids {
        t.alu(1);
        let labeled = g.get_vertex_prop_t(root, keys::COMPONENT, t).is_some();
        t.branch(line!() as usize, labeled);
        if labeled {
            continue;
        }
        let label = components as i64;
        components += 1;
        let mut size = 0u64;
        g.set_vertex_prop_t(root, keys::COMPONENT, Property::Int(label), t)
            .expect("root exists");
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            t.load(addr_of(&u), 8);
            t.branch(line!() as usize, true);
            size += 1;
            scratch.clear();
            g.visit_neighbors_t(u, t, |e, _| scratch.push(e.target));
            g.visit_parents_t(u, t, |p, _| scratch.push(p));
            for &v in &scratch {
                let seen = g.get_vertex_prop_t(v, keys::COMPONENT, t).is_some();
                t.branch(line!() as usize, seen);
                if !seen {
                    g.set_vertex_prop_t(v, keys::COMPONENT, Property::Int(label), t)
                        .expect("neighbor exists");
                    queue.push_back(v);
                    t.store(addr_of(&v), 8);
                }
            }
        }
        largest = largest.max(size);
    }
    CCompResult {
        components,
        largest,
    }
}

/// Component label of a vertex after a run.
pub fn component_of(g: &PropertyGraph, v: VertexId) -> Option<i64> {
    g.get_vertex_prop(v, keys::COMPONENT)
        .and_then(|p| p.as_int())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_disjoint_components() {
        let mut g = PropertyGraph::new();
        for _ in 0..6 {
            g.add_vertex();
        }
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        let r = run(&mut g);
        assert_eq!(r.components, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(r.largest, 3);
        assert_eq!(component_of(&g, 0), component_of(&g, 2));
        assert_ne!(component_of(&g, 0), component_of(&g, 3));
        assert_ne!(component_of(&g, 3), component_of(&g, 5));
    }

    #[test]
    fn weak_connectivity_crosses_edge_direction() {
        // 0 -> 1 <- 2: one weak component even though 2 is unreachable from 0
        let mut g = PropertyGraph::new();
        for _ in 0..3 {
            g.add_vertex();
        }
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 1, 1.0).unwrap();
        let r = run(&mut g);
        assert_eq!(r.components, 1);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let mut g = PropertyGraph::new();
        let r = run(&mut g);
        assert_eq!(r.components, 0);
        assert_eq!(r.largest, 0);
    }

    #[test]
    fn labels_partition_the_vertex_set() {
        let g0 = graphbig_datagen::road::generate(
            &graphbig_datagen::road::RoadConfig::with_vertices(400),
        );
        let mut g = g0;
        let r = run(&mut g);
        let mut sizes = std::collections::HashMap::new();
        for &id in g.vertex_ids() {
            let c = component_of(&g, id).expect("every vertex labeled");
            *sizes.entry(c).or_insert(0u64) += 1;
        }
        assert_eq!(sizes.len() as u64, r.components);
        assert_eq!(sizes.values().sum::<u64>(), g.num_vertices() as u64);
        assert_eq!(*sizes.values().max().unwrap(), r.largest);
        // every edge joins same-labeled endpoints
        for (u, e) in g.arcs() {
            assert_eq!(component_of(&g, u), component_of(&g, e.target));
        }
    }

    #[test]
    fn social_graph_has_one_giant_component() {
        let mut g = graphbig_datagen::ldbc::generate(
            &graphbig_datagen::ldbc::LdbcConfig::with_vertices(2_000),
        );
        let r = run(&mut g);
        assert!(
            r.largest as f64 > 0.9 * g.num_vertices() as f64,
            "social graphs have a giant WCC: largest {} of {}",
            r.largest,
            g.num_vertices()
        );
    }
}
